"""Extension E13 — EX vs distilled test-suite accuracy.

The paper could not run the test-suite evaluation (its parser rejects
FootballDB queries); this repo implements it natively.  The bench
quantifies how many of EX's "correct" verdicts are coincidental: wrong
queries whose result happens to match on the single evaluation
database but diverges on event-perturbed variants.
"""

from repro.evaluation import TestSuiteEvaluator, render_table
from repro.systems import GoldOracle, T5PicardKeys

from conftest import print_artifact


def test_execution_accuracy_vs_test_suite(benchmark, universe, football, dataset, harness):
    def run():
        version = "v1"
        suite = TestSuiteEvaluator.build(
            universe, version, football[version], variant_seeds=(7_001, 7_002)
        )
        system = harness.build_system(T5PicardKeys, version)
        system.fine_tune(dataset.train_pairs(version))
        plain_correct = 0
        suite_correct = 0
        false_positives = 0
        for example in dataset.test_examples:
            prediction = system.predict(example.question)
            verdict = suite.verdict(prediction.sql, example.gold[version])
            plain_correct += verdict.matches_primary
            suite_correct += verdict.matches_suite
            false_positives += verdict.false_positive
        total = len(dataset.test_examples)
        return {
            "ex": plain_correct / total,
            "suite": suite_correct / total,
            "false_positives": false_positives,
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_artifact(
        "Extension — single-DB EX vs distilled test suite (T5-Picard_Keys, v1)",
        render_table(
            ["metric", "value"],
            [
                ["EX (single database)", f"{report['ex'] * 100:.2f}%"],
                ["test-suite accuracy", f"{report['suite'] * 100:.2f}%"],
                ["EX false positives", report["false_positives"]],
            ],
        ),
    )
    # The suite can only remove correctness, never add it.
    assert report["suite"] <= report["ex"]
