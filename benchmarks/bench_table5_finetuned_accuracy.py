"""Regenerates Table 5 — EX of the fine-tuned systems.

Paper (300 train): ValueNet 20/20/25, T5-Picard 29/32/29,
T5-Picard_Keys 38/38/41 for v1/v2/v3.
"""

from repro.evaluation import TRAIN_SIZES, render_table, table5
from repro.footballdb import VERSIONS

from conftest import print_artifact

SYSTEMS = ("ValueNet", "T5-Picard", "T5-Picard_Keys")


def test_table5_finetuned_execution_accuracy(benchmark, harness):
    accuracies = benchmark.pedantic(
        lambda: table5(harness), rounds=1, iterations=1
    )
    rows = []
    for version in VERSIONS:
        for size in TRAIN_SIZES:
            rows.append(
                [version, "zero" if size == 0 else size]
                + [
                    f"{accuracies[(version, size, system)] * 100:.2f}%"
                    for system in SYSTEMS
                ]
            )
    print_artifact(
        "Table 5 — execution accuracy of small/medium fine-tuned systems",
        render_table(["Data Model", "Train Size"] + list(SYSTEMS), rows),
    )
    # Shape assertions (the paper's findings, not exact numbers):
    for version in VERSIONS:
        for system in SYSTEMS:
            curve = [accuracies[(version, size, system)] for size in TRAIN_SIZES]
            assert curve == sorted(curve), (system, version, "monotone in data")
    # Keys beat no-keys everywhere at full budget.
    for version in VERSIONS:
        assert (
            accuracies[(version, 300, "T5-Picard_Keys")]
            > accuracies[(version, 300, "T5-Picard")]
        )
    # ValueNet gains from the data-model redesign (v3 > v1).
    assert accuracies[("v3", 300, "ValueNet")] > accuracies[("v1", 300, "ValueNet")]
