"""Regenerates Table 6 — EX of the LLM systems with shot folds.

Paper: GPT-3.5 peaks at 41% (v1, 10-shot); LLaMA2-70B reaches 16% at
8 shots; zero-shot 25/25/21 vs 5/4/5.
"""

from repro.evaluation import GPT_SHOTS, LLAMA_SHOTS, format_mean_std, render_table, table6
from repro.footballdb import VERSIONS

from conftest import print_artifact


def test_table6_llm_execution_accuracy(benchmark, harness):
    results = benchmark.pedantic(lambda: table6(harness), rounds=1, iterations=1)
    rows = []
    for version in VERSIONS:
        for shots in GPT_SHOTS:
            mean, spread = results[(version, shots, "GPT-3.5")]
            llama_shots = LLAMA_SHOTS[GPT_SHOTS.index(shots)]
            llama_mean, llama_spread = results[(version, llama_shots, "LLaMA2-70B")]
            rows.append(
                [
                    version,
                    shots,
                    format_mean_std(mean, spread),
                    llama_shots,
                    format_mean_std(llama_mean, llama_spread),
                ]
            )
    print_artifact(
        "Table 6 — execution accuracy of LLM systems (mean ± std over folds)",
        render_table(
            ["Data Model", "#Shots", "GPT-3.5", "#Shots", "LLaMA2-70B"], rows
        ),
    )
    # Shape assertions:
    for version in VERSIONS:
        # GPT-3.5 dominates LLaMA2-70B at every operating point.
        for gpt_shots, llama_shots in zip(GPT_SHOTS, LLAMA_SHOTS):
            assert (
                results[(version, gpt_shots, "GPT-3.5")][0]
                > results[(version, llama_shots, "LLaMA2-70B")][0]
            )
        # Few-shot beats zero-shot for both.
        assert results[(version, 10, "GPT-3.5")][0] > results[(version, 0, "GPT-3.5")][0]
        assert (
            results[(version, 8, "LLaMA2-70B")][0]
            > results[(version, 0, "LLaMA2-70B")][0]
        )
    # LLMs are data-model robust: spread across versions stays small.
    gpt_by_version = [results[(v, 30, "GPT-3.5")][0] for v in VERSIONS]
    assert max(gpt_by_version) - min(gpt_by_version) < 0.10
