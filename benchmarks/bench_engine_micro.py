"""M1 — SQL engine micro-benchmarks (the substrate's own throughput).

These are genuine multi-round pytest-benchmark measurements (unlike the
table/figure regenerations, which run once): parsing, point lookups,
hash joins, aggregation and the Figure 4 UNION query on the full
~100K-row v1 instance.
"""

from repro.sqlengine import parse_sql
from repro.workload import compile_intent, make_intent

FIGURE4_SQL = None  # assembled lazily from the intent compiler


def test_parse_throughput(benchmark):
    sql = (
        "SELECT T2.teamname, count(*) FROM match AS T1 "
        "JOIN national_team AS T2 ON T1.home_team_id = T2.team_id "
        "WHERE T1.year BETWEEN 1990 AND 2022 AND T2.confederation = 'UEFA' "
        "GROUP BY T2.teamname HAVING count(*) > 3 ORDER BY count(*) DESC LIMIT 5"
    )
    benchmark(parse_sql, sql)


def test_point_lookup(benchmark, football):
    db = football["v1"]
    result = benchmark(db.execute, "SELECT teamname FROM national_team WHERE team_id = 7")
    assert len(result.rows) == 1


def test_filtered_scan_large_table(benchmark, football):
    db = football["v1"]
    result = benchmark(
        db.execute, "SELECT count(*) FROM club_league_hist WHERE season_year = 2010"
    )
    assert result.rows[0][0] > 0


def test_hash_join_three_tables(benchmark, football):
    db = football["v1"]
    sql = (
        "SELECT T3.full_name FROM player_fact AS T1 "
        "JOIN national_team AS T2 ON T1.team_id = T2.team_id "
        "JOIN player AS T3 ON T1.player_id = T3.player_id "
        "WHERE T2.teamname ILIKE '%Brazil%' AND T1.year = 2002"
    )
    result = benchmark(db.execute, sql)
    assert len(result.rows) == 23


def test_aggregation_group_by(benchmark, football):
    db = football["v1"]
    sql = (
        "SELECT year, count(*) FROM match GROUP BY year ORDER BY year"
    )
    result = benchmark(db.execute, sql)
    assert len(result.rows) == 22


def test_figure4_union_query(benchmark, football):
    intent = make_intent("match_score", team_a="Germany", team_b="Brazil", year=2014)
    sql = compile_intent(intent, "v1")
    result = benchmark(football["v1"].execute, sql)
    assert result.rows == [("Germany", "Brazil", 7, 1)]


def test_subquery_with_cache(benchmark, football):
    """Uncorrelated scalar subqueries must amortize (executor cache)."""
    sql = (
        "SELECT count(*) FROM player WHERE height_cm > "
        "(SELECT avg(height_cm) FROM player)"
    )
    result = benchmark(football["v1"].execute, sql)
    assert result.rows[0][0] > 0


# -- plan cache: cached vs uncached repeated execution --------------------------
#
# Same SQL both times; the only difference is whether tokenize+parse
# (and, for the join case, the hash-index build) are amortized.  Each
# case runs on both execution backends (``engine_mode``), so the micro
# benchmarks cover the vectorized columnar path alongside the row
# interpreter.  The measured ratios are recorded in
# docs/ARCHITECTURE.md.

import pytest

ENGINE_MODES = ["row", "vectorized"]

REPEATED_LOOKUP_SQL = "SELECT teamname FROM national_team WHERE team_id = 7"

REPEATED_JOIN_SQL = (
    "SELECT T3.full_name FROM player_fact AS T1 "
    "JOIN national_team AS T2 ON T1.team_id = T2.team_id "
    "JOIN player AS T3 ON T1.player_id = T3.player_id "
    "WHERE T2.teamname ILIKE '%Brazil%' AND T1.year = 2002"
)


@pytest.mark.parametrize("engine_mode", ENGINE_MODES)
def test_repeated_lookup_uncached(benchmark, football, engine_mode):
    db = football["v1"]
    result = benchmark(
        db.execute, REPEATED_LOOKUP_SQL, cached=False, engine_mode=engine_mode
    )
    assert len(result.rows) == 1


@pytest.mark.parametrize("engine_mode", ENGINE_MODES)
def test_repeated_lookup_cached(benchmark, football, engine_mode):
    db = football["v1"]
    db.execute(REPEATED_LOOKUP_SQL, engine_mode=engine_mode)  # warm the plan cache
    result = benchmark(db.execute, REPEATED_LOOKUP_SQL, engine_mode=engine_mode)
    assert len(result.rows) == 1


@pytest.mark.parametrize("engine_mode", ENGINE_MODES)
def test_repeated_join_uncached(benchmark, football, engine_mode):
    """Plan cache, join indexes AND optimizer off: the seed behaviour
    (per backend — the vectorized path keeps its own columnar index)."""
    db = football["v1"]
    executor = db._executor
    executor.use_join_index = False
    try:
        result = benchmark(
            db.execute,
            REPEATED_JOIN_SQL,
            cached=False,
            optimize=False,
            engine_mode=engine_mode,
        )
    finally:
        executor.use_join_index = True
    assert len(result.rows) == 23


@pytest.mark.parametrize("engine_mode", ENGINE_MODES)
def test_repeated_join_cached(benchmark, football, engine_mode):
    db = football["v1"]
    db.execute(REPEATED_JOIN_SQL, engine_mode=engine_mode)  # warm caches
    result = benchmark(db.execute, REPEATED_JOIN_SQL, engine_mode=engine_mode)
    assert len(result.rows) == 23


# -- optimizer: cost-based planning on vs off -----------------------------------
#
# The headline cases for the query optimizer: multi-join pipelines with
# selective filters, where predicate pushdown + join reordering turn
# full-table probe streams into filtered scans and indexed lookups.
# ``optimize=False`` executes the raw parsed AST (the pre-optimizer
# engine); both variants keep the plan cache and join indexes warm, so
# the difference measured is planning effect alone.  The same cases are
# exported to BENCH_engine.json by scripts/bench_engine.py.

BOOLEAN_JOIN_SQL = (
    "SELECT count(*) FROM match_fact AS T1 "
    "JOIN match AS T2 ON T1.match_id = T2.match_id "
    "JOIN national_team AS T3 ON T1.team_id = T3.team_id "
    "WHERE T3.teamname ILIKE '%Brazil%' AND T2.year = 1958 AND T1.goal = 'True'"
)


def test_multi_join_filter_unoptimized(benchmark, football):
    db = football["v1"]
    db.execute(REPEATED_JOIN_SQL, optimize=False)  # warm
    result = benchmark(db.execute, REPEATED_JOIN_SQL, optimize=False)
    assert len(result.rows) == 23


def test_multi_join_filter_optimized(benchmark, football):
    db = football["v1"]
    db.execute(REPEATED_JOIN_SQL)  # warm plan cache with the optimized plan
    result = benchmark(db.execute, REPEATED_JOIN_SQL)
    assert len(result.rows) == 23


def test_boolean_filter_join_unoptimized(benchmark, football):
    db = football["v1"]
    db.execute(BOOLEAN_JOIN_SQL, optimize=False)
    result = benchmark(db.execute, BOOLEAN_JOIN_SQL, optimize=False)
    assert result.rows == [(6,)]


def test_boolean_filter_join_optimized(benchmark, football):
    db = football["v1"]
    db.execute(BOOLEAN_JOIN_SQL)
    result = benchmark(db.execute, BOOLEAN_JOIN_SQL)
    assert result.rows == [(6,)]
