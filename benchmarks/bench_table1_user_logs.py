"""Regenerates Table 1 — statistics of live user logs.

Paper values: 5,900 issued / 5,275 generated / 625 failed / 174 up /
949 down / 1,287 corrected.
"""

from repro.evaluation import render_table
from repro.workload import DeploymentSimulator, summarize

from conftest import print_artifact


def test_table1_live_user_logs(benchmark, universe):
    def run():
        records = DeploymentSimulator(universe, seed=2022).run(5_900)
        return summarize(records)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print_artifact(
        "Table 1 — statistics of live user logs (paper: 5900/5275/625/174/949/1287)",
        render_table(["Type of User Log", "Amount of Logs"], stats.rows()),
    )
    assert stats.questions_issued == 5_900
    assert 0.85 <= stats.generation_rate <= 0.93
