"""Robustness curve — EX accuracy vs. data-model morph distance.

The paper compares three hand-written data models; the schema morpher
extends the comparison to arbitrarily many derived models.  This bench
derives seeded morphs of v1, runs a (systems x {v1, v2, v3, morphs})
grid through the parallel harness and renders EX accuracy against morph
distance.
"""

from repro.evaluation import GridConfig, robustness_curve, robustness_points
from repro.footballdb import SchemaMorpher
from repro.systems import GPT35, ValueNet

from conftest import print_artifact

MORPHS = 3
SHOTS = 8
TRAIN = 300


def test_robustness_curve_over_morphed_models(benchmark, harness):
    morphs = SchemaMorpher(seed=2022).derive(
        harness.football["v1"], count=MORPHS, steps=3
    )
    versions = ["v1", "v2", "v3"] + harness.install_morphs(morphs)
    distances = {"v1": 0, "v2": 0, "v3": 0}
    distances.update({morph.version: morph.distance for morph in morphs})

    # GPT-3.5 reads the serialized schema only; ValueNet routes through
    # SemQL + FK join-path inference, so schema-graph morphs (drop_fk,
    # clone_reroute, split_table) move the two systems differently.
    configs = [
        GridConfig.make(GPT35, version, shots=SHOTS) for version in versions
    ] + [
        GridConfig.make(ValueNet, version, train_size=TRAIN)
        for version in versions
    ]

    results, summary = benchmark.pedantic(
        lambda: harness.evaluate_grid(configs), rounds=1, iterations=1
    )
    points = robustness_points(results)
    print_artifact(
        "Robustness curve — EX accuracy vs. morph distance "
        f"({summary.describe()})",
        robustness_curve(points, distances),
    )
    for morph in morphs:
        print(f"  {morph.describe()}")

    # Shape assertions: every cell evaluated, accuracies sane, and the
    # data model measurably matters (a non-degenerate spread for at
    # least one system across the morphed axis).
    assert len(results) == len(configs)
    for result in results:
        assert result.outcomes, result.version
        assert 0.0 <= result.accuracy <= 1.0
    spreads = {
        system: max(per.values()) - min(per.values())
        for system, per in points.items()
    }
    assert any(spread > 0.0 for spread in spreads.values()), spreads
