"""Section 6.2 extension — ValueNet on the ~1K gold pool (E12).

Paper: training on all 895 Spider-parseable samples of the 1K pool
lifts ValueNet v3 from 25% to ~29% — tripling the data buys ~4 points,
the diminishing-returns argument for data-model work over labeling.
"""

from repro.evaluation import render_table, valuenet_pool_extension

from conftest import print_artifact


def test_valuenet_pool_extension(benchmark, harness):
    report = benchmark.pedantic(
        lambda: valuenet_pool_extension(harness), rounds=1, iterations=1
    )
    print_artifact(
        "ValueNet train-size extension (paper: 25% -> ~29% with ~895 samples)",
        render_table(
            ["configuration", "value"],
            [
                ["EX @ 300 samples", f"{report['300_samples'] * 100:.2f}%"],
                ["EX @ full usable pool", f"{report['pool_samples'] * 100:.2f}%"],
                ["usable pool size", report["pool_size"]],
                ["total pool size", report["pool_total"]],
            ],
        ),
    )
    # More data helps, but by points, not multiples (diminishing returns).
    gain = report["pool_samples"] - report["300_samples"]
    assert 0.0 <= gain <= 0.12
    # Part of the pool is unusable for ValueNet (the paper's 105 of 1K).
    assert report["pool_size"] < report["pool_total"]
