"""Ablation A5 — the lexical gap on prize questions (paper Section 5.2).

"People prefer a more intuitive expression, such as 'second place' or
'lost in the final'" — but v2 stores the value as ``prize =
'runner_up'``.  The bench isolates prize-topic questions and compares
accuracy across data models: v1 grounds the prize in an FK column, v2
in an ungrounded text value (the gap), v3 in Boolean column *names*
that schema linking can see.
"""

from collections import defaultdict

from repro.evaluation import render_table
from repro.footballdb import VERSIONS
from repro.systems import T5PicardKeys

from conftest import print_artifact

PRIZE_KINDS = {"prize_count_team", "cup_prize_team"}


def test_lexical_gap_on_prize_questions(benchmark, harness, dataset):
    def run():
        report = {}
        for version in VERSIONS:
            result = harness.evaluate(T5PicardKeys, version, train_size=300)
            prize_flags = []
            other_flags = []
            for example, outcome in zip(dataset.test_examples, result.outcomes):
                if example.intent.kind in PRIZE_KINDS:
                    prize_flags.append(outcome.correct)
                else:
                    other_flags.append(outcome.correct)
            report[version] = {
                "prize": sum(prize_flags) / len(prize_flags) if prize_flags else 0.0,
                "prize_n": len(prize_flags),
                "other": sum(other_flags) / len(other_flags),
            }
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            version,
            f"{cells['prize'] * 100:.0f}% (n={cells['prize_n']})",
            f"{cells['other'] * 100:.0f}%",
        ]
        for version, cells in report.items()
    ]
    print_artifact(
        "Ablation A5 — prize-question accuracy (lexical gap, T5-Picard_Keys)",
        render_table(["Data Model", "prize questions", "all other questions"], rows),
    )
    assert all(cells["prize_n"] > 0 for cells in report.values())
    # v3's Boolean prize columns must not be *worse* than v2's text value
    # (the paper's motivation for the conversion).
    assert report["v3"]["prize"] >= report["v2"]["prize"] - 0.05
