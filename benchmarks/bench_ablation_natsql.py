"""Ablation A4 — ValueNet's IR: SemQL vs NatSQL.

The counterfactual the paper's Section 2.1 hints at: with NatSQL's
wider grammar (repeated table instances, recorded join conditions, set
operations), the data model v1 post-processing failures disappear —
the IR, not the model, was the binding constraint.
"""

from repro.evaluation import natsql_ablation, render_table

from conftest import print_artifact


def test_natsql_ablation(benchmark, harness):
    report = benchmark.pedantic(lambda: natsql_ablation(harness), rounds=1, iterations=1)
    rows = [
        [
            version,
            f"{cells['semql_accuracy'] * 100:.2f}%",
            f"{cells['semql_generation_rate'] * 100:.2f}%",
            f"{cells['natsql_accuracy'] * 100:.2f}%",
            f"{cells['natsql_generation_rate'] * 100:.2f}%",
        ]
        for version, cells in report.items()
    ]
    print_artifact(
        "Ablation A4 — ValueNet IR coverage (300 train samples)",
        render_table(
            ["Data Model", "SemQL EX", "SemQL gen.", "NatSQL EX", "NatSQL gen."],
            rows,
        ),
    )
    # NatSQL rescues the v1 pipeline failures...
    assert (
        report["v1"]["natsql_generation_rate"]
        > report["v1"]["semql_generation_rate"] + 0.3
    )
    assert report["v1"]["natsql_accuracy"] > report["v1"]["semql_accuracy"]
    # ...and shrinks the v1->v3 data-model gap (robustness via IR).
    semql_gap = report["v3"]["semql_accuracy"] - report["v1"]["semql_accuracy"]
    natsql_gap = report["v3"]["natsql_accuracy"] - report["v1"]["natsql_accuracy"]
    assert natsql_gap < semql_gap
