"""Regenerates Table 3 — query characteristics of train and test sets.

Paper (test): joins 1.78/2.63/1.45, set ops 0.17/0.19/0.00, hardness
3.10/3.18/3.02, length 232/282/193 for v1/v2/v3.
"""

from repro.evaluation import render_table
from repro.footballdb import VERSIONS

from conftest import print_artifact

METRICS = (
    ("joins", "#Joins"),
    ("projections", "#Projections"),
    ("filters", "#Filters"),
    ("aggregations", "#Aggregations"),
    ("set_operations", "#Set Operations"),
    ("subqueries", "#Subqueries"),
    ("hardness", "Mean Hardness"),
    ("length", "Mean Query Length"),
)


def test_table3_query_characteristics(benchmark, dataset):
    table3 = benchmark.pedantic(dataset.table3, rounds=1, iterations=1)
    for split in ("train", "test"):
        rows = [
            [label] + [round(table3[split][v][key], 2) for v in VERSIONS]
            for key, label in METRICS
        ]
        print_artifact(
            f"Table 3 — query characteristics ({split} set)",
            render_table(["metric", "v1", "v2", "v3"], rows),
        )
    # The load-bearing shape constraints of the paper's analysis:
    for split in ("train", "test"):
        assert table3[split]["v3"]["set_operations"] == 0.0
        assert table3[split]["v2"]["joins"] > table3[split]["v1"]["joins"]
        assert table3[split]["v3"]["joins"] < table3[split]["v1"]["joins"]
        assert table3[split]["v3"]["length"] < table3[split]["v1"]["length"]
