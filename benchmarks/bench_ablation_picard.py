"""Ablation A2 — PICARD constrained decoding on/off.

With PICARD every emission is valid SQL; without it, the raw beam top-1
sometimes is not.  (The accuracy effect is modest — most constrained
repairs pick a *wrong but valid* candidate — matching the original
paper's framing of PICARD as a validity, not accuracy, mechanism.)
"""

from repro.evaluation import picard_ablation, render_table

from conftest import print_artifact


def test_picard_ablation(benchmark, harness):
    report = benchmark.pedantic(
        lambda: picard_ablation(harness), rounds=1, iterations=1
    )
    print_artifact(
        "Ablation A2 — constrained decoding (T5-Picard, v3, 300 train samples)",
        render_table(
            ["configuration", "EX accuracy", "SQL generation rate"],
            [
                [
                    "with PICARD",
                    f"{report['picard_accuracy'] * 100:.2f}%",
                    f"{report['picard_generation_rate'] * 100:.2f}%",
                ],
                [
                    "without (raw top-1)",
                    f"{report['unconstrained_accuracy'] * 100:.2f}%",
                    f"{report['unconstrained_generation_rate'] * 100:.2f}%",
                ],
            ],
        ),
    )
    assert report["picard_generation_rate"] >= report["unconstrained_generation_rate"]
    assert report["picard_accuracy"] >= report["unconstrained_accuracy"] - 0.02
