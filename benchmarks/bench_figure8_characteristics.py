"""Regenerates Figure 8 — execution accuracy per query characteristic.

Paper: set-operation queries perform poorly everywhere and vanish in
v3 (count 17/19/0); multi-filter queries grow from v1 to v3 while
their accuracy holds; single-join counts rise in v3.
"""

from repro.analysis.characteristics import FIGURE8_BUCKETS
from repro.evaluation import figure8, render_bar_chart
from repro.footballdb import VERSIONS

from conftest import print_artifact


def test_figure8_accuracy_per_characteristic(benchmark, harness, dataset):
    report = benchmark.pedantic(lambda: figure8(harness), rounds=1, iterations=1)
    for version in VERSIONS:
        print_artifact(
            f"Figure 8 — EX per query characteristic, data model {version}",
            render_bar_chart(report[version], FIGURE8_BUCKETS,
                             title="(n = test queries per bucket)"),
        )

    def bucket_count(version, bucket):
        counts = {}
        for example in dataset.test_examples:
            for label in example.characteristics(version).bucket_labels():
                counts[label] = counts.get(label, 0) + 1
        return counts.get(bucket, 0)

    # v3 eliminates the set-operation bucket entirely (paper: 17/19/0).
    assert bucket_count("v1", ">=1 set") > 0
    assert bucket_count("v2", ">=1 set") > 0
    assert bucket_count("v3", ">=1 set") == 0
    # Set-operation queries are a weak bucket where they exist (the
    # claim is about the mean across systems; with a small bucket a
    # single system can spike).
    import statistics

    for version in ("v1", "v2"):
        set_accuracies = [
            report[version][system][">=1 set"][0]
            for system in report[version]
            if ">=1 set" in report[version][system]
        ]
        assert set_accuracies, version
        assert statistics.fmean(set_accuracies) <= 0.45, version
    # Single-join count rises from v2 to v3 (paper: 32 -> 38).
    assert bucket_count("v3", "1 join") > bucket_count("v2", "1 join")
