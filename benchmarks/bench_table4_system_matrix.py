"""Regenerates Table 4 — characteristics of the five Text-to-SQL systems."""

from repro.evaluation import render_table
from repro.systems import ALL_SYSTEMS

from conftest import print_artifact

DIMENSIONS = (
    "Scale (#Params)",
    "DB Schema w/ FK",
    "DB Content",
    "Output Specification",
    "Query Normalization",
    "Value Finder",
    "Conversion to IR",
    "Post-processing",
)


def test_table4_system_matrix(benchmark):
    def run():
        return {cls.spec.name: cls.spec.table4_row() for cls in ALL_SYSTEMS}

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    names = [cls.spec.name for cls in ALL_SYSTEMS]
    rows = [[dim] + [matrix[name][dim] for name in names] for dim in DIMENSIONS]
    print_artifact(
        "Table 4 — system characteristics",
        render_table(["Dimension"] + names, rows),
    )
    assert matrix["ValueNet"]["Output Specification"] == "IR"
    assert matrix["T5-Picard"]["DB Schema w/ FK"] == "Yes (without)"
    assert matrix["T5-Picard_Keys"]["DB Schema w/ FK"] == "Yes (with)"
    assert matrix["GPT-3.5"]["Post-processing"] == "N/A"
