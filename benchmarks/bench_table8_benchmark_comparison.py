"""Regenerates Table 8 — FootballDB vs existing Text-to-SQL datasets."""

from repro.benchmark.compare import table8
from repro.evaluation import render_table

from conftest import print_artifact


def test_table8_benchmark_comparison(benchmark, football, dataset):
    rows = benchmark.pedantic(
        lambda: table8(football, dataset), rounds=1, iterations=1
    )
    print_artifact(
        "Table 8 — comparison between FootballDB and existing datasets",
        render_table(
            ["Dataset", "#Examples (#DBs)", "#Tables (#Rows)/DB",
             "#Tokens/Query", "Multi-Schema", "Live Users"],
            [row.cells() for row in rows],
        ),
    )
    footballdb = rows[-1]
    assert footballdb.name == "FootballDB"
    assert footballdb.examples == 1_200
    assert footballdb.multi_schema and footballdb.live_users
    # Highest query complexity (tokens/query) of any dataset.
    assert footballdb.tokens_per_query == max(r.tokens_per_query for r in rows)
