"""Regenerates Table 7 — inference time per system.

Paper: ValueNet 1.06±0.14s, T5-Picard 652±166s, T5-Picard_Keys
294±76s, GPT-3.5 2.51±1.06s, LLaMA2-70B 37.03±17.30s.
"""

from repro.evaluation import render_table, table7
from repro.systems import ALL_SYSTEMS

from conftest import print_artifact

HARDWARE = {cls.spec.name: (cls.spec.hardware, cls.spec.gpu_count) for cls in ALL_SYSTEMS}


def test_table7_inference_time(benchmark, harness):
    latencies = benchmark.pedantic(lambda: table7(harness), rounds=1, iterations=1)
    rows = []
    for name, (mean, std) in latencies.items():
        hardware, gpus = HARDWARE[name]
        rows.append([name, f"{mean:.2f} ± {std:.2f}", hardware, gpus or "-"])
    print_artifact(
        "Table 7 — inference time per query (seconds, simulated hardware model)",
        render_table(["System", "Time (sec)", "Hardware", "#GPUs"], rows),
    )
    # The paper's ordering and rough magnitudes:
    assert latencies["T5-Picard"][0] > latencies["T5-Picard_Keys"][0]
    assert latencies["T5-Picard_Keys"][0] > latencies["LLaMA2-70B"][0]
    assert latencies["LLaMA2-70B"][0] > latencies["GPT-3.5"][0]
    assert latencies["GPT-3.5"][0] > latencies["ValueNet"][0]
    assert 0.6 <= latencies["ValueNet"][0] <= 1.6
    assert 400 <= latencies["T5-Picard"][0] <= 900
    assert latencies["GPT-3.5"][0] < 4.0  # interactive; T5 systems are not
