"""Shared session fixtures for the benchmark harness.

Every bench reuses one universe, one set of databases, one benchmark
dataset and one :class:`Harness` (whose per-version EX caches make the
multi-table sweeps tractable).
"""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkDataset, build_benchmark
from repro.evaluation import Harness
from repro.footballdb import FootballDB, Universe, build_universe, load_all


def print_artifact(title: str, body: str) -> None:
    """Uniform rendering of regenerated tables/figures in bench output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def universe() -> Universe:
    return build_universe(seed=2022)


@pytest.fixture(scope="session")
def football(universe) -> FootballDB:
    return load_all(universe=universe)


@pytest.fixture(scope="session")
def dataset(universe) -> BenchmarkDataset:
    return build_benchmark(universe)


@pytest.fixture(scope="session")
def harness(football, dataset) -> Harness:
    return Harness(football, dataset)
