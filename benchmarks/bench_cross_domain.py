"""Cross-domain robustness curve — the paper's finding beyond football.

Sweeps every built-in generated domain (hospital, retail, flights) over
its base data model plus seeded morph chains, evaluating an LLM-style
and a fine-tuned system on each, and renders one cross-domain
robustness curve whose x-axis is morph distance.  The paper's central
claim — accuracy degrades across alternative data models of the same
domain — must reproduce as a non-degenerate accuracy spread within
every domain, not just on FootballDB.
"""

from repro.evaluation import cross_domain_sweep
from repro.systems import GPT35, T5Picard

from conftest import print_artifact

DOMAINS = ("hospital", "retail", "flights")
MORPHS = 2  # base + 2 morph chains = 3 data-model variants per domain
STEPS = 3
SEED = 2022


def test_cross_domain_robustness_curve(benchmark):
    report = benchmark.pedantic(
        lambda: cross_domain_sweep(
            DOMAINS,
            [GPT35, T5Picard],
            seed=SEED,
            morph_count=MORPHS,
            morph_steps=STEPS,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [report.curve()]
    lines.append("")
    for name in DOMAINS:
        for chain in report.morph_chains[name]:
            lines.append(f"  {chain}")
    for (name, engine_mode), summary in report.summaries.items():
        lines.append(f"  {name}[{engine_mode}]: {summary.describe()}")
    print_artifact(
        "Cross-domain robustness — EX accuracy vs. morph distance "
        f"({len(DOMAINS)} domains x {MORPHS + 1} data models)",
        "\n".join(lines),
    )

    # Shape: every domain contributes base + MORPHS versions for both systems.
    labels = {cell.label for cell in report.cells}
    assert len(labels) == len(DOMAINS) * (MORPHS + 1)
    for cell in report.cells:
        assert cell.result.outcomes
        assert 0.0 <= cell.result.accuracy <= 1.0
    # The data model measurably matters in at least one domain per system.
    spreads = report.domain_spreads()
    for system in ("GPT-3.5", "T5-Picard"):
        assert any(
            spread > 0.0
            for (spread_system, _), spread in spreads.items()
            if spread_system == system
        ), (system, spreads)
