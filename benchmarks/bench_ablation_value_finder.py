"""Ablation A3 — ValueNet's value finder on/off.

The value finder grounds misspelled entities against DB content — the
paper's "multitude of spelling errors for player names" is exactly the
input it rescues.  Without it, typo questions produce unmatched
literals and empty results.
"""

from repro.evaluation import render_table, value_finder_ablation

from conftest import print_artifact


def test_value_finder_ablation(benchmark, harness):
    report = benchmark.pedantic(
        lambda: value_finder_ablation(harness), rounds=1, iterations=1
    )
    print_artifact(
        "Ablation A3 — ValueNet value finder (v3, 300 train samples)",
        render_table(
            ["configuration", "EX accuracy"],
            [
                ["with value finder", f"{report['with_value_finder'] * 100:.2f}%"],
                ["without", f"{report['without_value_finder'] * 100:.2f}%"],
            ],
        ),
    )
    assert report["with_value_finder"] >= report["without_value_finder"]
