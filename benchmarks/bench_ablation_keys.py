"""Ablation A1 — PK/FK input encoding (T5-Picard vs T5-Picard_Keys).

Paper: keys add up to 12 points and the gain persists across all data
models; the improvement is what lets the medium model exploit the v3
redesign.
"""

from repro.evaluation import keys_ablation, render_table

from conftest import print_artifact


def test_keys_ablation(benchmark, harness):
    report = benchmark.pedantic(lambda: keys_ablation(harness), rounds=1, iterations=1)
    rows = [
        [
            version,
            f"{cells['without_keys'] * 100:.2f}%",
            f"{cells['with_keys'] * 100:.2f}%",
            f"{cells['gain'] * 100:+.2f}%",
        ]
        for version, cells in report.items()
    ]
    print_artifact(
        "Ablation A1 — PK/FK serialization in the T5 input (300 train samples)",
        render_table(["Data Model", "without keys", "with keys", "gain"], rows),
    )
    for version, cells in report.items():
        assert cells["gain"] > 0, version
