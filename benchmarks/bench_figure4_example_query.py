"""Regenerates Figure 4 — the running example in all three data models.

"What was the score between Germany and Brazil in 2014?" — UNION +
repeated table instances in v1/v2, one flat join in v3; the v3 query is
the shortest and all three return Germany 7:1 Brazil.
"""

from repro.analysis import analyze_query
from repro.footballdb import VERSIONS
from repro.workload import compile_intent, make_intent

from conftest import print_artifact


def test_figure4_example_query(benchmark, football):
    intent = make_intent("match_score", team_a="Germany", team_b="Brazil", year=2014)

    def run():
        return {version: compile_intent(intent, version) for version in VERSIONS}

    queries = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["NL question: What was the score between Germany and Brazil in 2014?\n"]
    for version in VERSIONS:
        characteristics = analyze_query(queries[version])
        lines.append(f"--- SQL in {version} "
                     f"({characteristics.length} chars, "
                     f"{characteristics.joins} joins, "
                     f"{characteristics.set_operations} set ops)")
        lines.append(queries[version])
        result = football[version].execute(queries[version])
        lines.append(f"    result: {result.rows}\n")
    print_artifact("Figure 4 — one question, three data models", "\n".join(lines))

    assert "UNION" in queries["v1"]
    assert "UNION" in queries["v2"]
    assert "UNION" not in queries["v3"]
    assert len(queries["v3"]) < len(queries["v1"]) < len(queries["v2"])
    for version in VERSIONS:
        rows = football[version].execute(queries[version]).rows
        assert any(set(row[-2:]) == {7, 1} for row in rows), version
