"""Regenerates Figure 7 — execution accuracy per Spider hardness level.

Paper: accuracy decreases with hardness for every system and data
model; easy reaches up to ~77%, extra-hard stays near/below ~20%; the
number of extra-hard queries falls from 46 (v1) / 52 (v2) to 36 (v3).
"""

import statistics

from repro.evaluation import figure7, render_bar_chart
from repro.footballdb import VERSIONS

from conftest import print_artifact

LEVELS = ("easy", "medium", "hard", "extra")


def test_figure7_accuracy_per_hardness(benchmark, harness, dataset):
    report = benchmark.pedantic(lambda: figure7(harness), rounds=1, iterations=1)
    for version in VERSIONS:
        print_artifact(
            f"Figure 7 — EX per hardness level, data model {version}",
            render_bar_chart(report[version], LEVELS,
                             title="(n = test queries per level)"),
        )
    # Shape: mean accuracy over systems decreases from easy to extra.
    for version in VERSIONS:
        level_means = []
        for level in LEVELS:
            values = [
                report[version][system][level][0]
                for system in report[version]
                if level in report[version][system]
            ]
            level_means.append(statistics.fmean(values) if values else 0.0)
        assert level_means[0] > level_means[-1], version
        # Easy questions are answerable; extra-hard mostly are not.
        assert level_means[0] >= 0.4
        assert level_means[-1] <= 0.30
    # Extra-hard counts shrink with the v3 redesign (paper: 46/52/36).
    extra_counts = {
        version: dataset.hardness_distribution(version)["extra"]
        for version in VERSIONS
    }
    assert extra_counts["v3"] < extra_counts["v1"] < extra_counts["v2"]
