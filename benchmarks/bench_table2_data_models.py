"""Regenerates Table 2 — characteristics of the three data models.

Paper: v1 13 tables/97 cols/104,531 rows/14 FKs; v2 16/98/106,547/13;
v3 15/107/106,111/16.
"""

from repro.evaluation import render_table
from repro.footballdb import VERSIONS, load_all, table2

from conftest import print_artifact


def test_table2_data_model_characteristics(benchmark, universe, football):
    def run():
        return table2(football.databases)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["#Tables"] + [stats[v].tables for v in VERSIONS],
        ["#Columns"] + [stats[v].columns for v in VERSIONS],
        ["#Rows"] + [stats[v].rows for v in VERSIONS],
        ["#FKs"] + [stats[v].foreign_keys for v in VERSIONS],
        ["Mean #Columns per Table"]
        + [round(stats[v].mean_columns_per_table, 2) for v in VERSIONS],
        ["Mean #Rows per Table"]
        + [round(stats[v].mean_rows_per_table) for v in VERSIONS],
    ]
    print_artifact(
        "Table 2 — FootballDB characteristics across data models",
        render_table(["", "DB v1", "DB v2", "DB v3"], rows),
    )
    assert [stats[v].tables for v in VERSIONS] == [13, 16, 15]
    assert [stats[v].foreign_keys for v in VERSIONS] == [14, 13, 16]
    assert [stats[v].columns for v in VERSIONS] == [97, 98, 107]


def test_full_database_load(benchmark, universe):
    """Throughput of materializing all three ~100K-row databases."""
    result = benchmark.pedantic(
        lambda: load_all(universe=universe), rounds=1, iterations=1
    )
    assert result["v1"].row_count() > 90_000
