"""Benchmark construction tests (the Section 6.1 pipeline)."""

import json

import pytest

from repro.benchmark import BenchmarkBuilder, build_benchmark
from repro.benchmark.compare import footballdb_row, table8
from repro.footballdb import VERSIONS, build_universe, load_all


@pytest.fixture(scope="module")
def universe():
    return build_universe(seed=2022)


@pytest.fixture(scope="module")
def football(universe):
    return load_all(universe=universe)


@pytest.fixture(scope="module")
def dataset(universe):
    return build_benchmark(universe)


class TestConstruction:
    def test_sizes(self, dataset):
        assert len(dataset.train_examples) == 300
        assert len(dataset.test_examples) == 100
        assert len(dataset.pool_examples) == 1_000

    def test_1200_nl_sql_pairs(self, dataset):
        pairs = sum(len(e.gold) for e in dataset.examples)
        assert pairs == 400 * 3

    def test_pool_labeled_for_v3_only(self, dataset):
        pool_only = [e for e in dataset.pool_examples]
        assert all("v3" in e.gold for e in pool_only)

    def test_no_duplicate_questions_in_sample(self, dataset):
        questions = [e.question for e in dataset.examples]
        assert len(questions) == len(set(questions))

    def test_train_test_disjoint(self, dataset):
        train = {e.qid for e in dataset.train_examples}
        test = {e.qid for e in dataset.test_examples}
        assert not train & test

    def test_same_questions_across_versions(self, dataset):
        """The multi-schema property: one question, three gold queries."""
        for example in dataset.examples:
            assert set(example.gold) == set(VERSIONS)

    def test_gold_executes_everywhere(self, dataset, football):
        for example in dataset.examples[:50]:
            for version in VERSIONS:
                football[version].execute(example.gold[version])

    def test_deterministic(self, universe):
        a = build_benchmark(universe)
        b = build_benchmark(universe)
        assert [e.qid for e in a.examples] == [e.qid for e in b.examples]


class TestTable3Shape:
    def test_v3_has_no_set_operations(self, dataset):
        table3 = dataset.table3()
        assert table3["test"]["v3"]["set_operations"] == 0.0
        assert table3["train"]["v3"]["set_operations"] == 0.0

    def test_v2_has_most_joins(self, dataset):
        table3 = dataset.table3()
        for split in ("train", "test"):
            joins = {v: table3[split][v]["joins"] for v in VERSIONS}
            assert joins["v2"] > joins["v1"] > joins["v3"]

    def test_v3_queries_are_shortest(self, dataset):
        table3 = dataset.table3()
        for split in ("train", "test"):
            lengths = {v: table3[split][v]["length"] for v in VERSIONS}
            assert lengths["v2"] > lengths["v1"] > lengths["v3"]

    def test_mean_hardness_near_three(self, dataset):
        table3 = dataset.table3()
        for split in ("train", "test"):
            for version in VERSIONS:
                assert 2.5 <= table3[split][version]["hardness"] <= 3.5

    def test_extra_hard_counts_follow_paper_ordering(self, dataset):
        """Paper: 46 (v1), 52 (v2), 36 (v3) — v2 > v1 > v3."""
        extra = {
            version: dataset.hardness_distribution(version)["extra"]
            for version in VERSIONS
        }
        assert extra["v2"] > extra["v3"]
        assert extra["v1"] > extra["v3"]


class TestSerialization:
    def test_json_round_trip(self, dataset):
        blob = json.loads(dataset.to_json())
        assert len(blob["train"]) == 300
        assert len(blob["test"]) == 100
        assert len(blob["pool"]) == 1_000
        sample = blob["test"][0]
        assert set(sample) == {"qid", "question", "intent", "category", "gold"}


class TestTable8:
    def test_footballdb_row(self, football, dataset):
        row = footballdb_row(football, dataset)
        assert row.examples == 1_200
        assert row.databases == 3
        assert row.multi_schema is True
        assert row.live_users is True
        # Most tokens per query of any dataset (paper: 33.7).
        assert row.tokens_per_query > 30

    def test_footballdb_uniqueness_claims(self, football, dataset):
        rows = table8(football, dataset)
        ours = rows[-1]
        others = rows[:-1]
        assert all(not r.multi_schema for r in others)
        assert ours.tokens_per_query == max(r.tokens_per_query for r in rows)

    def test_all_rows_render(self, football, dataset):
        for row in table8(football, dataset):
            cells = row.cells()
            assert len(cells) == 6
