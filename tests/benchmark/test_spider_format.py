"""Spider-format release export tests."""

import json

import pytest

from repro.benchmark import build_benchmark, export_spider_release
from repro.benchmark.spider_format import schema_entry
from repro.footballdb import VERSIONS, build_universe, load_all


@pytest.fixture(scope="module")
def universe():
    return build_universe(seed=2022)


@pytest.fixture(scope="module")
def football(universe):
    return load_all(universe=universe)


@pytest.fixture(scope="module")
def dataset(universe):
    return build_benchmark(universe)


@pytest.fixture(scope="module")
def release(football, dataset):
    return export_spider_release(football, dataset)


class TestTablesJson:
    def test_one_entry_per_data_model(self, release):
        entries = json.loads(release["tables.json"])
        assert [e["db_id"] for e in entries] == [
            "footballdb_v1", "footballdb_v2", "footballdb_v3",
        ]

    def test_column_indices_are_consistent(self, football):
        entry = schema_entry(football["v1"].schema, "footballdb_v1")
        # Column 0 is the '*' sentinel bound to no table.
        assert entry["column_names"][0] == [-1, "*"]
        # Every FK pair indexes real columns.
        for source, target in entry["foreign_keys"]:
            assert 1 <= source < len(entry["column_names"])
            assert 1 <= target < len(entry["column_names"])

    def test_fk_counts_match_schemas(self, football):
        for version, expected in zip(VERSIONS, (14, 13, 16)):
            entry = schema_entry(football[version].schema, version)
            assert len(entry["foreign_keys"]) == expected

    def test_primary_keys_present(self, football):
        entry = schema_entry(football["v3"].schema, "v3")
        assert entry["primary_keys"]

    def test_column_count_matches_schema(self, football):
        entry = schema_entry(football["v1"].schema, "v1")
        assert len(entry["column_names"]) == football["v1"].schema.column_count + 1


class TestExampleFiles:
    def test_train_dev_sizes(self, release):
        train = json.loads(release["train.json"])
        dev = json.loads(release["dev.json"])
        assert len(train) == 300 * 3
        assert len(dev) == 100 * 3

    def test_entries_reference_their_schema(self, release):
        dev = json.loads(release["dev.json"])
        db_ids = {entry["db_id"] for entry in dev}
        assert db_ids == {"footballdb_v1", "footballdb_v2", "footballdb_v3"}

    def test_entry_shape(self, release):
        entry = json.loads(release["dev.json"])[0]
        assert set(entry) == {
            "db_id", "question", "question_toks", "query", "query_toks", "hardness",
        }
        assert entry["question_toks"] == entry["question"].split()

    def test_queries_differ_across_schemas_for_same_question(self, release):
        dev = json.loads(release["dev.json"])
        by_question = {}
        for entry in dev:
            by_question.setdefault(entry["question"], set()).add(entry["query"])
        multi_variant = [q for q, queries in by_question.items() if len(queries) > 1]
        # Most questions need schema-specific SQL.
        assert len(multi_variant) > len(by_question) * 0.5
