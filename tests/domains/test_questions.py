"""Templated gold SQL: executable on every backend, stable, paraphrased."""

from __future__ import annotations

import pytest

from repro.domains import (
    generate_examples,
    generate_tables,
    load_database,
    random_domain,
    result_signature,
)
from repro.domains import BUILTIN_SPECS
from repro.domains.questions import KIND_NAMES

BUILTIN_NAMES = tuple(spec.name for spec in BUILTIN_SPECS)


@pytest.mark.parametrize("name", BUILTIN_NAMES)
class TestGoldExecutes:
    def test_gold_runs_on_row_and_vectorized_engines(self, builtin_instances, name):
        """Satellite contract: every generated domain's gold SQL executes
        without error on both execution backends, with identical results."""
        instance = builtin_instances[name]
        database = instance["base"]
        queries = instance.gold_queries("base")
        assert queries
        for sql in queries:
            row = database.execute(sql, engine_mode="row")
            vectorized = database.execute(sql, engine_mode="vectorized")
            assert result_signature(row) == result_signature(vectorized), sql

    def test_examples_have_unique_qids_and_paraphrases(
        self, builtin_instances, name
    ):
        examples = builtin_instances[name].examples
        qids = [example.qid for example in examples]
        assert len(qids) == len(set(qids))
        for example in examples:
            assert len(example.paraphrases) >= 2
            assert example.question == example.paraphrases[0]
            assert example.kind in KIND_NAMES
            assert example.gold["base"].startswith("SELECT")

    def test_kind_coverage(self, builtin_instances, name):
        """The template engine instantiates a broad kind mix per domain."""
        kinds = {example.kind for example in builtin_instances[name].examples}
        assert len(kinds) >= 8, kinds


class TestDeterminism:
    def test_examples_pure_function_of_spec_and_seed(self):
        spec = random_domain(31)
        tables = generate_tables(spec, seed=4)
        first = generate_examples(spec, tables, seed=4)
        second = generate_examples(spec, tables, seed=4)
        assert [e.qid for e in first] == [e.qid for e in second]
        assert [e.gold for e in first] == [e.gold for e in second]

    def test_random_domain_gold_executes(self):
        spec = random_domain(31)
        tables = generate_tables(spec, seed=4)
        database = load_database(spec, seed=4)
        for example in generate_examples(spec, tables, seed=4):
            row = database.execute(example.gold["base"], engine_mode="row")
            vec = database.execute(example.gold["base"], engine_mode="vectorized")
            assert result_signature(row) == result_signature(vec)
