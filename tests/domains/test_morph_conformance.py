"""Cross-domain morph conformance: migrated data + rewritten gold SQL
stay differentially equal — on our engine AND on sqlite3 — for chains
of at least four operators over every built-in generated domain."""

from __future__ import annotations

import pytest

from repro.domains import (
    BUILTIN_SPECS,
    SchemaMorpher,
    load_random_domain,
    result_signature,
    verify_morph,
)
from repro.sqlengine import sqlite_dialect, sqlite_result, to_sqlite

BUILTIN_NAMES = tuple(spec.name for spec in BUILTIN_SPECS)

CHAIN_STEPS = 4
CHAINS_PER_DOMAIN = 2


@pytest.fixture(scope="module")
def morphed(builtin_instances):
    """domain name -> (instance, [MorphedModel...]) with >=4-op chains."""
    out = {}
    for name in BUILTIN_NAMES:
        instance = builtin_instances[name]
        morpher = SchemaMorpher(seed=2022)
        out[name] = (
            instance,
            morpher.derive(
                instance["base"], count=CHAINS_PER_DOMAIN, steps=CHAIN_STEPS
            ),
        )
    return out


@pytest.mark.parametrize("name", BUILTIN_NAMES)
class TestMorphChains:
    def test_chains_apply_at_least_four_operators(self, morphed, name):
        _, morphs = morphed[name]
        for morph in morphs:
            assert morph.distance >= CHAIN_STEPS, morph.describe()

    def test_engine_differential_equality(self, morphed, name):
        """Every gold query answers identically on base and morph."""
        instance, morphs = morphed[name]
        queries = instance.gold_queries("base")
        assert queries
        for morph in morphs:
            mismatches = verify_morph(morph, instance["base"], queries)
            assert not mismatches, (morph.describe(), mismatches[:3])

    def test_sqlite_differential_equality(self, morphed, name):
        """The same contract holds on sqlite3 over the exported data."""
        instance, morphs = morphed[name]
        base_conn = to_sqlite(instance["base"])
        queries = instance.gold_queries("base")
        for morph in morphs[:1]:  # one chain per domain keeps this fast
            morph_conn = to_sqlite(morph.database)
            for sql in queries:
                rewritten = morph.rewrite_sql(sql)
                base_sig = result_signature(
                    sqlite_result(base_conn, sqlite_dialect(sql))
                )
                morph_sig = result_signature(
                    sqlite_result(morph_conn, sqlite_dialect(rewritten))
                )
                assert base_sig == morph_sig, (morph.describe(), sql, rewritten)

    def test_morphs_are_deterministic(self, morphed, name):
        instance, morphs = morphed[name]
        again = SchemaMorpher(seed=2022).derive(
            instance["base"], count=CHAINS_PER_DOMAIN, steps=CHAIN_STEPS
        )
        assert [m.describe() for m in morphs] == [m.describe() for m in again]


def test_random_domain_morph_conformance():
    """Fresh random scenarios hold the same cross-engine contract."""
    instance = load_random_domain(23)
    morph = SchemaMorpher(seed=23).derive(
        instance["base"], count=1, steps=CHAIN_STEPS
    )[0]
    assert morph.distance >= CHAIN_STEPS
    mismatches = verify_morph(morph, instance["base"], instance.gold_queries("base"))
    assert not mismatches, mismatches[:3]
