"""Domain test fixtures: built-in instances loaded once per session."""

from __future__ import annotations

import pytest

from repro.domains import BUILTIN_SPECS, load_domain

BUILTIN_NAMES = tuple(spec.name for spec in BUILTIN_SPECS)

SEED = 2022


@pytest.fixture(scope="session")
def builtin_instances():
    """name -> loaded DomainInstance for every generated built-in."""
    return {name: load_domain(name, seed=SEED) for name in BUILTIN_NAMES}


@pytest.fixture(scope="session")
def hospital(builtin_instances):
    return builtin_instances["hospital"]
