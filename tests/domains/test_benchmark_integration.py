"""Domains wired end to end: benchmark, harness grids, test suites."""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkDataset
from repro.domains import SchemaMorpher, load_domain
from repro.evaluation import (
    GridConfig,
    Harness,
    TestSuiteEvaluator,
    robustness_points,
    sweep_domain,
)
from repro.systems import GPT35, T5Picard


@pytest.fixture(scope="module")
def retail():
    return load_domain("retail", seed=2022)


@pytest.fixture(scope="module")
def retail_dataset(retail):
    return BenchmarkDataset.from_domain(retail, seed=2022)


class TestFromDomain:
    def test_split_and_versions(self, retail, retail_dataset):
        dataset = retail_dataset
        assert dataset.versions == ("base",)
        assert dataset.train_examples and dataset.test_examples
        total = len(dataset.train_examples) + len(dataset.test_examples)
        assert total == len(retail.examples)
        # splits are disjoint
        train_qids = {example.qid for example in dataset.train_examples}
        test_qids = {example.qid for example in dataset.test_examples}
        assert not (train_qids & test_qids)

    def test_from_domain_accepts_name(self, retail_dataset):
        by_name = BenchmarkDataset.from_domain("retail", seed=2022)
        assert [e.qid for e in by_name.test_examples] == [
            e.qid for e in retail_dataset.test_examples
        ]

    def test_pool_holds_only_paraphrases(self, retail, retail_dataset):
        core_qids = {
            example.qid
            for example in retail_dataset.train_examples
            + retail_dataset.test_examples
        }
        assert core_qids.isdisjoint(
            example.qid for example in retail_dataset.pool_examples
        )
        # the default pool_pairs version resolves to the domain base
        pairs = retail_dataset.pool_pairs()
        assert pairs and all(sql.startswith("SELECT") for _, sql in pairs)

    def test_paraphrases_resolve_in_gold_lookup(self, retail, retail_dataset):
        lookup = retail_dataset.gold_lookup("base")
        example = retail.examples[0]
        for paraphrase in example.paraphrases:
            assert lookup[paraphrase] == example.gold["base"]

    def test_table3_uses_domain_versions(self, retail_dataset):
        report = retail_dataset.table3()
        assert set(report["train"]) == {"base"}

    def test_bad_domain_type_rejected(self):
        with pytest.raises(TypeError, match="registry name"):
            BenchmarkDataset.from_domain(42)


class TestDomainHarness:
    def test_grid_with_morph_axis(self, retail, retail_dataset):
        harness = Harness(retail, retail_dataset)
        assert harness.football is retail  # backward-compatible alias
        morphs = SchemaMorpher(seed=5).derive(retail["base"], count=2, steps=3)
        versions = ["base"] + harness.install_morphs(morphs)
        configs = [
            GridConfig.make(system, version, shots=4)
            if system is GPT35
            else GridConfig.make(system, version, train_size=30)
            for version in versions
            for system in (GPT35, T5Picard)
        ]
        results, summary = harness.evaluate_grid(configs)
        assert len(results) == len(configs)
        assert summary.questions == len(configs) * len(retail_dataset.test_examples)
        points = robustness_points(results)
        for per_version in points.values():
            assert set(per_version) == set(versions)
            for accuracy in per_version.values():
                assert 0.0 <= accuracy <= 1.0

    def test_sweep_domain_reports_distances(self):
        domain = load_domain("flights", seed=2022)
        cells, summary, chains = sweep_domain(
            domain, [GPT35], seed=2022, morph_count=2, morph_steps=3,
            engine_mode="row",
        )
        assert len(chains) == 2
        assert {cell.distance for cell in cells} >= {0}
        morphed = [cell for cell in cells if cell.distance > 0]
        assert morphed
        assert all(cell.engine_mode == "row" for cell in cells)
        assert summary.configs == len(cells)


class TestDomainTestSuite:
    def test_suite_evaluator_for_generated_domain(self, retail):
        suite = TestSuiteEvaluator.for_domain(retail, variant_seeds=(11, 12))
        gold = retail.gold_queries("base")[0]
        verdict = suite.verdict(gold, gold)
        assert verdict.matches_primary and verdict.matches_suite
        # a constant query that happens to be wrong everywhere
        assert not suite.matches("SELECT 1", gold) or (
            suite.evaluators[0].matches("SELECT 1", gold)
        )

    def test_suite_catches_coincidental_match(self, retail):
        """A query tied to perturbable facts must not survive the suite
        unless it is genuinely equivalent to gold."""
        suite = TestSuiteEvaluator.for_domain(retail, variant_seeds=(11, 12))
        primary = retail["base"]
        gold = "SELECT sum(t.revenue) FROM sale AS t"
        constant = primary.execute(gold).rows[0][0]
        coincidental = f"SELECT t.sale_id * 0 + {constant} FROM sale AS t LIMIT 1"
        verdict = suite.verdict(coincidental, gold)
        assert verdict.matches_primary
        assert verdict.false_positive
