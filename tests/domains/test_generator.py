"""Property tests: every generated domain is catalog-valid and FK-closed."""

from __future__ import annotations

import pytest

from repro.domains import (
    BUILTIN_SPECS,
    build_schema,
    generate_tables,
    load_database,
    random_domain,
)

ALL_SPECS = list(BUILTIN_SPECS) + [random_domain(seed) for seed in (7, 91)]
SPEC_IDS = [spec.name for spec in ALL_SPECS]


def column_position(spec, entity_name, field_name):
    fields = [f.name for f in spec.entity(entity_name).fields]
    return fields.index(field_name)


@pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
class TestSchema:
    def test_schema_is_catalog_valid(self, spec):
        """The schema builds through the catalog API, which rejects
        invalid identifiers, duplicate columns and dangling FKs."""
        schema = build_schema(spec)
        assert schema.name == spec.name
        assert len(schema.tables) == len(spec.entities)
        assert schema.foreign_key_count == len(spec.relationships())
        for entity in spec.entities:
            table = schema.table(entity.name)
            assert table.primary_key_columns == [entity.pk_field.name]

    def test_fk_edges_match_relationships(self, spec):
        schema = build_schema(spec)
        declared = {
            (fk.table, fk.column, fk.ref_table) for fk in schema.foreign_keys
        }
        expected = {
            (rel.child, rel.field, rel.parent) for rel in spec.relationships()
        }
        assert declared == expected


@pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
class TestData:
    def test_row_counts_and_determinism(self, spec):
        tables = generate_tables(spec, seed=2022)
        again = generate_tables(spec, seed=2022)
        assert tables == again
        for entity in spec.entities:
            assert len(tables[entity.name]) == entity.rows
        assert generate_tables(spec, seed=2023) != tables

    def test_data_is_fk_closed(self, spec):
        tables = generate_tables(spec, seed=2022)
        for rel in spec.relationships():
            fk_position = column_position(spec, rel.child, rel.field)
            pk_position = column_position(
                spec, rel.parent, spec.entity(rel.parent).pk_field.name
            )
            parents = {row[pk_position] for row in tables[rel.parent]}
            child_values = {
                row[fk_position]
                for row in tables[rel.child]
                if row[fk_position] is not None
            }
            assert child_values <= parents, rel.describe()

    def test_names_are_unique_per_entity(self, spec):
        tables = generate_tables(spec, seed=2022)
        for entity in spec.entities:
            position = column_position(spec, entity.name, entity.name_attr.name)
            names = [row[position] for row in tables[entity.name]]
            assert len(names) == len(set(names)), entity.name

    def test_loads_with_fk_enforcement(self, spec):
        """Insertion succeeds with the engine's FK enforcement on —
        referential consistency is checked row by row at load time."""
        database = load_database(spec, seed=2022)
        assert database.storage.enforce_foreign_keys
        for entity in spec.entities:
            assert len(database.table_data(entity.name)) == entity.rows


class TestVariants:
    @pytest.mark.parametrize("spec", ALL_SPECS[:3], ids=SPEC_IDS[:3])
    def test_variant_keeps_identities_perturbs_facts(self, spec):
        base = generate_tables(spec, seed=2022)
        variant = generate_tables(spec, seed=2022, variant_seed=5)
        assert base != variant  # facts moved...
        changed = False
        for entity in spec.entities:
            pk_pos = column_position(spec, entity.name, entity.pk_field.name)
            name_pos = column_position(spec, entity.name, entity.name_attr.name)
            for row_a, row_b in zip(base[entity.name], variant[entity.name]):
                assert row_a[pk_pos] == row_b[pk_pos]  # ...identities did not
                assert row_a[name_pos] == row_b[name_pos]
                changed = changed or row_a != row_b
        assert changed

    def test_variant_deterministic(self):
        spec = BUILTIN_SPECS[0]
        assert generate_tables(spec, 2022, variant_seed=5) == generate_tables(
            spec, 2022, variant_seed=5
        )
        assert generate_tables(spec, 2022, variant_seed=5) != generate_tables(
            spec, 2022, variant_seed=6
        )

    def test_variant_database_loads(self, hospital):
        variant = hospital.variant_database("base", 7001)
        base = hospital["base"]
        assert variant.schema.table_names == base.schema.table_names
        # same identities: name lookups agree
        sql = "SELECT t.name FROM doctor AS t WHERE t.doctor_id = 1"
        assert variant.execute(sql).rows == base.execute(sql).rows

    def test_unknown_variant_version_rejected(self, hospital):
        with pytest.raises(ValueError, match="only perturbs"):
            hospital.variant_database("v1", 7001)
