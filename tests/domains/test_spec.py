"""DomainSpec validation and the seeded random-domain generator."""

from __future__ import annotations

import pytest

from repro.domains import (
    BUILTIN_SPECS,
    DomainSpec,
    EntitySpec,
    SpecError,
    attr,
    fk,
    name_field,
    pk,
    random_domain,
)


def entity(name, fields, rows=5, **kwargs):
    return EntitySpec(name, tuple(fields), rows=rows, **kwargs)


class TestValidation:
    def test_builtin_specs_are_valid(self):
        for spec in BUILTIN_SPECS:
            spec.validate()  # __post_init__ already ran; idempotent
            assert spec.relationships(), spec.name
            assert spec.describe().startswith(f"domain {spec.name}")

    def test_duplicate_entity_rejected(self):
        team = entity("team", [pk("team_id"), name_field()])
        with pytest.raises(SpecError, match="duplicate entity"):
            DomainSpec("d", "dup", (team, team))

    def test_fk_must_reference_earlier_entity(self):
        child = entity(
            "child", [pk("child_id"), name_field(), fk("parent_id", "parent")]
        )
        parent = entity("parent", [pk("parent_id"), name_field()])
        with pytest.raises(SpecError, match="parents-first"):
            DomainSpec("d", "order", (child, parent))
        DomainSpec("d", "order", (parent, child))  # parents-first is fine

    def test_exactly_one_pk_and_name(self):
        with pytest.raises(SpecError, match="exactly one pk"):
            DomainSpec("d", "t", (entity("e", [name_field()]),))
        with pytest.raises(SpecError, match="exactly one name"):
            DomainSpec("d", "t", (entity("e", [pk("e_id")]),))

    def test_attr_needs_generator(self):
        bad = entity(
            "e",
            [pk("e_id"), name_field(), attr("x", "int", ("nope", 1))],
        )
        with pytest.raises(SpecError, match="generator"):
            DomainSpec("d", "t", (bad,))

    def test_nullable_range_enforced(self):
        bad = entity(
            "e",
            [pk("e_id"), name_field(), attr("x", "int", ("int", 1, 5), nullable=1.0)],
        )
        with pytest.raises(SpecError, match="nullable"):
            DomainSpec("d", "t", (bad,))

    def test_unknown_entity_lookup(self):
        spec = BUILTIN_SPECS[0]
        with pytest.raises(SpecError, match="no entity"):
            spec.entity("nonexistent")


class TestRandomDomain:
    def test_deterministic_in_seed(self):
        assert random_domain(11) == random_domain(11)
        assert random_domain(11) != random_domain(12)

    @pytest.mark.parametrize("seed", [0, 7, 91, 2023, -3])
    def test_generated_spec_is_valid(self, seed):
        spec = random_domain(seed)
        spec.validate()
        assert spec.name.isidentifier()
        # non-root entities are connected to the graph
        children = {rel.child for rel in spec.relationships()}
        assert children == set(spec.entity_names[1:])

    def test_morphability_floor(self):
        """Every entity keeps >=2 non-key int attrs and a categorical —
        the surface split_table / widen_types / filter questions need."""
        for seed in (1, 2, 3):
            spec = random_domain(seed)
            for ent in spec.entities:
                ints = [
                    f for f in ent.attr_fields
                    if f.sql_type == "int" and f.generator[0] != "serial"
                ]
                assert len(ints) >= 2, (spec.name, ent.name)
            assert any(
                f.generator and f.generator[0] == "choice"
                for ent in spec.entities
                for f in ent.attr_fields
            )

    def test_entity_count_bounds(self):
        assert len(random_domain(5, entity_count=2).entities) == 2
        assert len(random_domain(5, entity_count=6).entities) == 6
