"""Registry, DomainInstance protocol, and synthetic log generation."""

from __future__ import annotations

import pytest

from repro.domains import (
    DomainInstance,
    UnknownDomainError,
    available_domains,
    get_domain,
    instance_from_spec,
    load_domain,
    load_random_domain,
    random_domain,
    register_domain,
    synthesize_logs,
)
from repro.workload import QuestionCategory, summarize


class TestRegistry:
    def test_builtins_plus_football_registered(self):
        names = available_domains()
        assert names[:3] == ["hospital", "retail", "flights"]
        assert "football" in names
        assert available_domains(generated_only=True) == [
            "hospital", "retail", "flights",
        ]

    def test_football_record_is_lazy(self):
        record = get_domain("football")
        assert not record.generated  # metadata available without loading

    def test_unknown_domain(self):
        with pytest.raises(UnknownDomainError, match="registered"):
            load_domain("bakery")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_domain("hospital", lambda seed: None)

    def test_replace_registration(self):
        record = get_domain("hospital")
        try:
            marker = register_domain(
                "hospital", record.loader, description="x", replace=True
            )
            assert get_domain("hospital") is marker
        finally:
            register_domain(
                "hospital",
                record.loader,
                description=record.description,
                replace=True,
            )

    def test_load_random_domain(self):
        instance = load_random_domain(17)
        assert instance.name == "random_17"
        assert instance.examples
        assert instance.versions == ["base"]


class TestInstanceProtocol:
    def test_version_registration(self, hospital):
        instance = instance_from_spec(random_domain(3), seed=1)
        base = instance["base"]
        assert instance.database("base") is base
        assert instance.base_version == "base"
        instance.register("derived", base)
        assert instance.versions == ["base", "derived"]
        with pytest.raises(ValueError, match="already registered"):
            instance.register("derived", base)

    def test_gold_queries_sorted_distinct(self, hospital):
        queries = hospital.gold_queries("base")
        assert queries == sorted(set(queries))

    def test_set_engine_mode(self):
        instance = instance_from_spec(random_domain(4), seed=1)
        instance.set_engine_mode("row")
        assert all(
            database.engine_mode == "row"
            for database in instance.databases.values()
        )

    def test_set_engine_mode_validates(self):
        instance = instance_from_spec(random_domain(4), seed=1)
        with pytest.raises(ValueError, match="engine_mode must be one of"):
            instance.set_engine_mode("rowwise")
        assert instance["base"].engine_mode == "auto"  # unchanged on error

    def test_variant_loader_missing(self):
        bare = DomainInstance("bare", {})
        with pytest.raises(ValueError, match="variant loader"):
            bare.variant_database("base", 1)


class TestSyntheticLogs:
    def test_log_stream_shape(self, hospital):
        records = synthesize_logs("hospital", hospital.examples, 400, seed=9)
        assert len(records) == 400
        categories = {record.category for record in records}
        assert QuestionCategory.CLEAN in categories
        assert QuestionCategory.UNRELATED in categories
        answerable = [record for record in records if record.intent is not None]
        assert answerable
        assert all(
            record.intent.kind.startswith("hospital:") for record in answerable
        )
        stats = summarize(records)
        assert stats.questions_issued == 400
        assert 0.5 < stats.generation_rate < 1.0

    def test_log_stream_deterministic(self, hospital):
        first = synthesize_logs("hospital", hospital.examples, 100, seed=3)
        second = synthesize_logs("hospital", hospital.examples, 100, seed=3)
        assert first == second
        assert first != synthesize_logs("hospital", hospital.examples, 100, seed=4)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="no examples"):
            synthesize_logs("empty", [], 10)
