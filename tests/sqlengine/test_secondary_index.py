"""Property tests for optimizer-visible secondary indexes.

The invariants under test:

* an index-servable scan returns **byte-identical** results to the
  full scan — same rows, same order — for equality, range and BETWEEN
  predicates, under arbitrary interleavings of queries and mutations;
* a sorted index is version-stamped and never consulted stale: any
  mutation (insert *or* the rollback an FK violation triggers) bumps
  ``TableData.version`` and forces a wholesale rebuild on next use;
* the hash index is maintained incrementally, so it is always fresh
  without rebuilds;
* cached optimized plans are invalidated when the data epoch moves, so
  a plan chosen for yesterday's statistics never pins stale candidates.
"""

from __future__ import annotations

import random

import pytest

from repro.sqlengine import ConstraintError, Database, Schema, make_column


def _indexed_db(rows: int = 120, seed: int = 11) -> Database:
    schema = Schema("indexed")
    schema.create_table(
        "city",
        [
            make_column("city_id", "int", primary_key=True),
            make_column("name", "text"),
            make_column("population", "int"),
            make_column("region", "text"),
        ],
    )
    schema.create_table(
        "visit",
        [
            make_column("visit_id", "int", primary_key=True),
            make_column("city_id", "int"),
            make_column("spend", "int"),
        ],
    )
    schema.add_foreign_key("visit", "city_id", "city", "city_id")
    db = Database(schema)
    rng = random.Random(seed)
    db.insert_many(
        "city",
        [
            (
                i,
                f"City{i:03d}",
                rng.randrange(1_000, 900_000),
                rng.choice(["north", "south", "east", "west", None]),
            )
            for i in range(1, rows + 1)
        ],
    )
    db.insert_many(
        "visit",
        [
            (i, rng.randint(1, rows), rng.randrange(10, 500))
            for i in range(1, 3 * rows + 1)
        ],
    )
    return db


#: selective predicates the planner serves from an index (each matches
#: well under 25% of rows), across both index kinds and every operator
INDEX_QUERIES = (
    "SELECT name FROM city WHERE name = 'City042'",
    "SELECT name, population FROM city WHERE population < 50000",
    "SELECT name FROM city WHERE population >= 870000",
    "SELECT name FROM city WHERE population BETWEEN 400000 AND 430000",
    "SELECT city_id FROM visit WHERE spend <= 40",
    "SELECT name FROM city WHERE city_id = 77",
)


class TestIndexScanEquivalence:
    def test_planner_serves_selective_filters_from_an_index(self):
        db = _indexed_db()
        for sql in INDEX_QUERIES:
            assert "index:" in db.explain(sql), sql

    def test_index_scan_is_byte_identical_to_full_scan(self):
        db = _indexed_db()
        for sql in INDEX_QUERIES:
            full = db.execute(sql, optimize=False, engine_mode="row").rows
            indexed = db.execute(sql, optimize=True, engine_mode="row").rows
            assert indexed == full, sql
            # the vectorized engine ignores the index choice by design
            # (it filters columnar) — but must still agree byte-for-byte
            assert db.execute(sql, optimize=True, engine_mode="vectorized").rows == full

    @pytest.mark.parametrize("seed", (3, 17, 29))
    def test_equivalence_holds_across_random_mutation_sequences(self, seed):
        """Interleave inserts (epoch bumps) with index-served queries:
        after every mutation both access paths must still agree."""
        db = _indexed_db(seed=seed)
        rng = random.Random(seed)
        next_city = 1000
        next_visit = 9000
        for step in range(12):
            if rng.random() < 0.5:
                next_city += 1
                db.insert(
                    "city",
                    (
                        next_city,
                        f"City{next_city}",
                        rng.randrange(1_000, 900_000),
                        rng.choice(["north", None]),
                    ),
                )
            else:
                next_visit += 1
                db.insert(
                    "visit", (next_visit, rng.randint(1, 120), rng.randrange(10, 500))
                )
            sql = rng.choice(INDEX_QUERIES)
            assert (
                db.execute(sql, optimize=True, engine_mode="row").rows
                == db.execute(sql, optimize=False, engine_mode="row").rows
            ), f"step {step}: {sql}"


class TestIndexFreshness:
    def test_sorted_index_is_reused_while_version_is_unchanged(self):
        db = _indexed_db()
        data = db.table_data("city")
        position = data.table.column_position("population")
        data.sorted_index(position)
        builds = data.sorted_index_builds
        data.sorted_index(position)
        data.sorted_index(position)
        assert data.sorted_index_builds == builds  # cache hit, no rebuild

    def test_sorted_index_rebuilds_after_insert(self):
        db = _indexed_db()
        data = db.table_data("city")
        position = data.table.column_position("population")
        keys, _positions = data.sorted_index(position)
        builds = data.sorted_index_builds
        db.insert("city", (999, "Newtown", 1, None))
        fresh_keys, fresh_positions = data.sorted_index(position)
        assert data.sorted_index_builds == builds + 1
        assert len(fresh_keys) == len(keys) + 1
        # the new minimum population must be the first sorted entry,
        # pointing at the appended row
        assert fresh_positions[0] == len(data.rows) - 1

    def test_rollback_invalidates_sorted_index(self):
        """An FK violation inserts then rolls back — two version bumps.
        The index built before must not be consulted after, because the
        position space may have shifted."""
        db = _indexed_db()
        data = db.table_data("visit")
        position = data.table.column_position("spend")
        data.sorted_index(position)
        builds = data.sorted_index_builds
        version = data.version
        with pytest.raises(ConstraintError):
            db.insert("visit", (8888, 424242, 1))  # no such city: rollback
        assert data.version == version + 2  # insert + rollback both bump
        sql = "SELECT city_id FROM visit WHERE spend <= 40"
        assert (
            db.execute(sql, optimize=True, engine_mode="row").rows
            == db.execute(sql, optimize=False, engine_mode="row").rows
        )
        assert data.sorted_index_builds == builds + 1  # rebuilt, not reused

    def test_hash_index_is_incrementally_fresh(self):
        db = _indexed_db()
        data = db.table_data("city")
        position = data.table.column_position("name")
        index = data.hash_index(position)
        db.insert("city", (998, "Freshville", 123, None))
        assert index[("Freshville",)]  # maintained in place by insert

    def test_optimized_plan_reflects_rows_inserted_after_caching(self):
        """Plan caching keys on the stats epoch: a mutation must both
        invalidate the plan and re-run index selection, so query answers
        track the data."""
        db = _indexed_db()
        sql = "SELECT name FROM city WHERE name = 'Atlantis'"
        assert db.execute(sql, optimize=True).rows == []
        db.insert("city", (997, "Atlantis", 77, "south"))
        assert db.execute(sql, optimize=True).rows == [("Atlantis",)]
        assert db.execute(sql, optimize=False).rows == [("Atlantis",)]
