"""The optimizer's correctness contract, enforced differentially.

Three sweeps:

* every distinct benchmark gold query, on every data model, must
  return identical normalized result multisets with the optimizer on
  vs. off — and vs. sqlite3 through the bridge;
* seeded morph chains (8 ≥ the required 6) over the morph base: the
  rewritten probe workload agrees base-vs-morph, optimized-vs-plain
  and engine-vs-sqlite;
* a randomized predicate fuzz over the toy schema shapes the folding
  and pushdown paths see.

``result_signature`` is the repo's canonical equality (the EX metric's
normalized multiset), which is also the only meaningful equality for
queries that never specified a row order.
"""

import random

import pytest

from repro.benchmark import build_benchmark
from repro.footballdb import VERSIONS, build_universe, load_all
from repro.footballdb.morph import SchemaMorpher, result_signature
from repro.sqlengine import sqlite_dialect, sqlite_result, to_sqlite


@pytest.fixture(scope="module")
def universe():
    return build_universe(seed=2022)


@pytest.fixture(scope="module")
def football(universe):
    return load_all(universe=universe)


@pytest.fixture(scope="module")
def dataset(universe):
    return build_benchmark(universe)


@pytest.mark.parametrize("version", VERSIONS)
def test_full_benchmark_gold_optimized_equals_plain_and_sqlite(
    version, football, dataset
):
    database = football[version]
    sqlite_conn = to_sqlite(database)
    queries = sorted({example.gold[version] for example in dataset.examples})
    assert len(queries) > 100  # the sweep must actually cover the benchmark
    divergences = []
    for sql in queries:
        optimized = result_signature(database.execute(sql, optimize=True))
        plain = result_signature(database.execute(sql, optimize=False))
        lite = result_signature(sqlite_result(sqlite_conn, sqlite_dialect(sql)))
        if optimized != plain:
            divergences.append(("optimizer", sql))
        if optimized != lite:
            divergences.append(("sqlite", sql))
    assert not divergences, divergences[:5]


MORPH_CHAIN_SEEDS = range(8)


@pytest.mark.parametrize("chain_seed", MORPH_CHAIN_SEEDS)
def test_morph_chains_agree_under_optimizer(
    chain_seed, morph_base_builder, morph_probes
):
    base = morph_base_builder()
    morph = SchemaMorpher(seed=chain_seed).morph(base, f"opt{chain_seed}", steps=3)
    morph_sqlite = to_sqlite(morph.database, case_sensitive_like=True)
    for sql in morph_probes:
        rewritten = morph.rewrite_sql(sql)
        base_plain = result_signature(base.execute(sql, optimize=False))
        base_optimized = result_signature(base.execute(sql, optimize=True))
        morph_plain = result_signature(
            morph.database.execute(rewritten, optimize=False)
        )
        morph_optimized = result_signature(
            morph.database.execute(rewritten, optimize=True)
        )
        lite = result_signature(sqlite_result(morph_sqlite, rewritten))
        context = (morph.describe(), sql, rewritten)
        assert base_optimized == base_plain, context
        assert morph_optimized == morph_plain, context
        assert morph_optimized == base_optimized, context
        assert morph_optimized == lite, context


def test_randomized_predicates_agree(morph_base_builder):
    """Fuzz the rewrite surface: folded constants, pushable and
    unmovable predicates, IN lists, BETWEEN, NULL logic."""
    db = morph_base_builder()
    rng = random.Random(2025)
    columns = ["year", "home_goals", "away_goals", "home_team_id"]
    operators = ["=", "<>", "<", "<=", ">", ">="]
    predicates = []
    for _ in range(120):
        column = rng.choice(columns)
        op = rng.choice(operators)
        value = rng.randint(0, 2022)
        predicates.append(f"{column} {op} {value}")
    predicates += [
        "1 = 1",
        "1 = 2",
        "NULL",
        "year IN (2014, 2018)",
        "year BETWEEN 2014 AND 2018",
        "home_goals + away_goals > 4",
        "NOT (year = 2014 OR year = 2018)",
        "year = 2014 AND 1 = 1",
        "1 = 2 OR home_goals >= 3",
    ]
    for predicate in predicates:
        for template in (
            "SELECT match_id FROM match WHERE {p}",
            "SELECT count(*) FROM match WHERE {p}",
            "SELECT T2.name FROM match AS T1 JOIN team AS T2 "
            "ON T1.home_team_id = T2.team_id WHERE {p}",
        ):
            sql = template.format(p=predicate)
            optimized = result_signature(db.execute(sql, optimize=True))
            plain = result_signature(db.execute(sql, optimize=False))
            assert optimized == plain, sql
