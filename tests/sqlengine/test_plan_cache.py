"""Plan cache: normalization, LRU semantics, equivalence and speedup."""

import threading
import time

import pytest

from repro.sqlengine import (
    Database,
    LRUCache,
    PlanCache,
    Schema,
    make_column,
    normalize_sql,
    parse_sql,
)


class TestNormalizeSql:
    def test_collapses_whitespace(self):
        assert normalize_sql("SELECT  a\n FROM\t t") == "SELECT a FROM t"

    def test_preserves_string_literals(self):
        a = normalize_sql("SELECT * FROM t WHERE x = 'a  b'")
        b = normalize_sql("SELECT * FROM t WHERE x = 'a b'")
        assert a != b
        assert "'a  b'" in a

    def test_strips_one_trailing_semicolon(self):
        assert normalize_sql("SELECT 1 ; ") == "SELECT 1"
        # The parser accepts exactly one trailing semicolon, so a
        # doubled one must stay distinct (it is a parse error).
        assert normalize_sql("SELECT 1;;").endswith(";")

    def test_leading_and_trailing_space(self):
        assert normalize_sql("  SELECT 1  ") == "SELECT 1"

    def test_line_comments_mirror_the_tokenizer(self):
        # A comment without a newline swallows the rest of the
        # statement (as in tokenize); with a newline it does not.
        # These parse differently, so their keys must differ.
        swallowed = normalize_sql("SELECT a FROM t --x WHERE id = 1")
        kept = normalize_sql("SELECT a FROM t --x\nWHERE id = 1")
        assert swallowed == "SELECT a FROM t"
        assert kept == "SELECT a FROM t WHERE id = 1"

    def test_comment_only_variants_share_a_key(self):
        plain = normalize_sql("SELECT a FROM t WHERE id = 1")
        commented = normalize_sql("SELECT a FROM t -- note\nWHERE id = 1")
        assert plain == commented

    def test_commented_execution_is_correct(self, toy_db):
        # End-to-end guard for the comment rule: the truncated and the
        # full statement must not share a cached plan.
        all_rows = toy_db.execute("SELECT name FROM team --x WHERE team_id = 1")
        filtered = toy_db.execute("SELECT name FROM team --x\nWHERE team_id = 1")
        assert len(all_rows.rows) == 3
        assert filtered.rows == [("Brazil",)]

    def test_preserves_quoted_identifiers(self):
        a = normalize_sql('SELECT "a  b" FROM t')
        b = normalize_sql('SELECT "a b" FROM t')
        assert a != b

    def test_dash_inside_string_is_not_a_comment(self):
        text = normalize_sql("SELECT * FROM t WHERE x = '--not a comment'")
        assert "'--not a comment'" in text

    def test_equivalent_spellings_share_a_key(self):
        variants = [
            "SELECT name FROM t WHERE id = 1",
            "SELECT name  FROM t WHERE id = 1",
            "SELECT name FROM t WHERE id = 1;",
            "\n SELECT name\tFROM t   WHERE id = 1 ",
        ]
        keys = {normalize_sql(sql) for sql in variants}
        assert len(keys) == 1


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_at_capacity(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # now "b" is least recently used
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_stats_shape(self):
        cache = LRUCache(capacity=3)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["capacity"] == 3
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_clear(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestParseSqlCache:
    def test_hit_returns_same_ast_object(self):
        cache = PlanCache(capacity=8)
        first = parse_sql("SELECT name FROM t WHERE id = 1", cache=cache)
        second = parse_sql("SELECT  name FROM t WHERE id = 1;", cache=cache)
        assert second is first
        assert cache.hits == 1
        assert cache.misses == 1

    def test_parse_errors_not_cached(self):
        from repro.sqlengine import ParseError

        cache = PlanCache(capacity=8)
        with pytest.raises(ParseError):
            parse_sql("SELECT FROM WHERE", cache=cache)
        assert len(cache) == 0


class TestSchemaScopedKeys:
    """Plan keys include (schema.name, schema.version): identical SQL
    against two morphed schemas must never collide on one entry."""

    @staticmethod
    def _two_versions():
        databases = []
        for version in ("v1", "v1~m1"):
            schema = Schema("footballdb", version=version)
            schema.create_table(
                "t",
                [make_column("id", "int", primary_key=True), make_column("x", "int")],
            )
            databases.append((version, schema))
        return databases

    def test_scope_distinguishes_versions(self):
        cache = PlanCache(capacity=8, scope=("footballdb", "v1"))
        other = cache.for_scope(("footballdb", "v1~m1"))
        sql = "SELECT x FROM t WHERE id = 1"
        assert cache.plan_key(sql) != other.plan_key(sql)
        first = parse_sql(sql, cache=cache)
        second = parse_sql(sql, cache=other)
        # No cross-version hit: each scope parsed (and cached) its own plan.
        assert cache.misses == 2
        assert cache.hits == 0
        assert len(cache) == 2
        assert parse_sql(sql, cache=cache) is first
        assert parse_sql(sql, cache=other) is second
        assert cache.hits == 2

    def test_shared_cache_across_databases_keeps_entries_apart(self):
        shared = PlanCache(capacity=16)
        sql = "SELECT x FROM t WHERE id = 1"
        for version, schema in self._two_versions():
            db = Database(schema, plan_cache=shared)
            db.insert("t", (1, 10))
            assert db.plan_cache.scope == ("footballdb", version)
            db.execute(sql)
            db.execute(sql)
        # two distinct entries, one miss + one hit per schema version
        assert len(shared) == 2
        assert shared.misses == 2
        assert shared.hits == 2

    def test_view_shares_storage_and_counters(self):
        shared = PlanCache(capacity=4)
        view = shared.for_scope(("footballdb", "v2"))
        parse_sql("SELECT 1", cache=view)
        assert shared.misses == 1
        assert len(shared) == 1
        assert shared.stats()["size"] == 1

    def test_database_default_cache_is_version_scoped(self, toy_db):
        assert toy_db.plan_cache.scope == ("toy", "")


class TestDatabaseIntegration:
    def test_counters_track_repeats(self, toy_db):
        toy_db.execute("SELECT name FROM team WHERE team_id = 1")
        toy_db.execute("SELECT name FROM team WHERE team_id = 1")
        stats = toy_db.plan_cache_stats()
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1

    def test_cached_equals_uncached(self, toy_db):
        queries = [
            "SELECT name FROM team ORDER BY team_id",
            "SELECT t.name, count(*) FROM team AS t "
            "JOIN player AS p ON p.team_id = t.team_id "
            "GROUP BY t.name ORDER BY t.name",
            "SELECT name FROM player WHERE goals > "
            "(SELECT avg(goals) FROM player WHERE goals IS NOT NULL)",
            "SELECT name FROM team WHERE founded = 1900 "
            "UNION SELECT name FROM player WHERE goals = 12",
        ]
        for sql in queries:
            warm = toy_db.execute(sql)      # populates the cache
            cached = toy_db.execute(sql)    # served from the cache
            uncached = toy_db.execute(sql, cached=False)
            assert cached.columns == uncached.columns == warm.columns
            assert cached.rows == uncached.rows == warm.rows

    def test_disabled_cache(self):
        schema = Schema("nc")
        schema.create_table("t", [make_column("id", "int", primary_key=True)])
        db = Database(schema, plan_cache_size=0)
        db.insert("t", (1,))
        assert db.execute("SELECT id FROM t").rows == [(1,)]
        assert db.plan_cache is None
        assert db.plan_cache_stats()["capacity"] == 0

    def test_eviction_with_tiny_cache(self):
        schema = Schema("tiny")
        schema.create_table("t", [make_column("id", "int", primary_key=True)])
        db = Database(schema, plan_cache_size=2)
        db.insert("t", (1,))
        for predicate in (1, 2, 3, 4):
            db.execute(f"SELECT id FROM t WHERE id = {predicate}")
        stats = db.plan_cache_stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 2

    def test_execute_many_in_order(self, toy_db):
        results = toy_db.execute_many(
            [
                "SELECT count(*) FROM team",
                "SELECT count(*) FROM player",
                "SELECT count(*) FROM team",
            ]
        )
        assert [r.rows[0][0] for r in results] == [3, 5, 3]

    def test_concurrent_execution_consistent(self, toy_db):
        sql = (
            "SELECT t.name, count(*) FROM team AS t "
            "JOIN player AS p ON p.team_id = t.team_id GROUP BY t.name"
        )
        expected = toy_db.execute(sql).rows
        observed = []
        errors = []

        def worker():
            try:
                for _ in range(20):
                    observed.append(toy_db.execute(sql).rows)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(rows == expected for rows in observed)


class TestJoinIndexMaintenance:
    def test_insert_after_index_build_is_visible(self, toy_db):
        sql = (
            "SELECT p.name FROM player AS p "
            "JOIN team AS t ON p.team_id = t.team_id WHERE t.name = 'Brazil'"
        )
        before = {row[0] for row in toy_db.execute(sql).rows}
        toy_db.insert("player", (6, 1, "Zico", 30, 1.72))
        after = {row[0] for row in toy_db.execute(sql).rows}
        assert after == before | {"Zico"}

    def test_fk_violation_rolls_back_index(self, toy_db):
        from repro.sqlengine import ConstraintError

        join_sql = (
            "SELECT count(*) FROM player AS p "
            "JOIN team AS t ON p.team_id = t.team_id"
        )
        before = toy_db.execute(join_sql).rows[0][0]
        with pytest.raises(ConstraintError):
            toy_db.insert("player", (7, 99, "Ghost", 0, 1.70))
        assert toy_db.execute(join_sql).rows[0][0] == before
        assert toy_db.row_count("player") == 5

    def test_rollback_releases_primary_key(self, toy_db):
        from repro.sqlengine import ConstraintError

        with pytest.raises(ConstraintError):
            toy_db.insert("player", (8, 99, "Ghost", 0, 1.70))
        # The PK of the rolled-back row must be reusable.
        toy_db.insert("player", (8, 1, "Real", 1, 1.80))
        assert toy_db.row_count("player") == 6


class TestRepeatedQuerySpeedup:
    """Acceptance: >= 2x on a repeated parse-dominated query."""

    def test_plan_cache_at_least_doubles_throughput(self):
        schema = Schema("bench")
        schema.create_table(
            "wc",
            [make_column("year", "int", primary_key=True), make_column("host", "text")],
        )
        db = Database(schema)
        # Tiny table + long predicate: repeat cost is parse-dominated,
        # which is precisely the workload the plan cache eliminates.
        db.insert("wc", (1930, "host1930"))
        db.insert("wc", (2014, "host2014"))
        terms = " OR ".join(f"year = {year}" for year in range(1930, 2026, 4))
        sql = f"SELECT year, host FROM wc WHERE ({terms}) ORDER BY year DESC LIMIT 3"
        rounds = 150

        def run(cached: bool) -> float:
            start = time.perf_counter()
            for _ in range(rounds):
                db.execute(sql, cached=cached)
            return time.perf_counter() - start

        run(True)  # warm the cache and the join-free code paths
        uncached = run(False)
        cached = run(True)
        assert cached > 0
        assert uncached / cached >= 2.0, (
            f"plan cache speedup only {uncached / cached:.2f}x "
            f"(uncached {uncached:.4f}s vs cached {cached:.4f}s)"
        )
