"""ORDER BY … LIMIT 0 planning regression (ISSUE 7 satellite).

``top_k = offset + limit`` used to make the planner run a
size-``offset`` heap selection whose entire output is then discarded
by ``LIMIT 0`` — wasted work and a misleading ``top-k(n)`` EXPLAIN
annotation for a query that cannot emit rows.  The planner now pins
``top_k`` to 0 and both executors short-circuit before computing any
order keys.
"""

import pytest

from repro.sqlengine import Database, Schema, make_column


@pytest.fixture(scope="module")
def database():
    schema = Schema("limitzero")
    schema.create_table(
        "event",
        [
            make_column("event_id", "int", primary_key=True),
            make_column("score", "int"),
            make_column("label", "text"),
        ],
    )
    database = Database(schema)
    database.insert_many(
        "event", [(i, (i * 37) % 11, f"e{i}") for i in range(1, 41)]
    )
    return database


QUERIES = [
    "SELECT label FROM event ORDER BY score LIMIT 0",
    "SELECT label FROM event ORDER BY score LIMIT 0 OFFSET 5",
    "SELECT label FROM event ORDER BY score DESC, event_id LIMIT 0 OFFSET 3",
    "SELECT label FROM event LIMIT 0",
    "SELECT DISTINCT score FROM event ORDER BY score LIMIT 0",
]


class TestLimitZeroExecution:
    @pytest.mark.parametrize("sql", QUERIES)
    @pytest.mark.parametrize("engine_mode", ["row", "vectorized"])
    @pytest.mark.parametrize("optimize", [True, False])
    def test_zero_rows_every_configuration(
        self, database, sql, engine_mode, optimize
    ):
        result = database.execute(
            sql, engine_mode=engine_mode, optimize=optimize
        )
        assert result.rows == []

    def test_limit_zero_matches_sqlite(self, database):
        from repro.sqlengine.sqlite_bridge import to_sqlite

        connection = to_sqlite(database)
        try:
            for sql in QUERIES:
                engine = database.execute(sql, cached=False)
                theirs = connection.execute(sql).fetchall()
                assert [tuple(row) for row in engine.rows] == [
                    tuple(row) for row in theirs
                ], sql
        finally:
            connection.close()


class TestLimitZeroPlanning:
    def test_planner_pins_top_k_to_zero(self, database):
        """Regression: a size-`offset` heap was planned for zero output."""
        plan = database.explain(
            "SELECT label FROM event ORDER BY score LIMIT 0 OFFSET 5"
        )
        assert "top-k(0)" in plan
        assert "top-k(5)" not in plan

    def test_positive_limit_still_plans_offset_plus_limit(self, database):
        plan = database.explain(
            "SELECT label FROM event ORDER BY score LIMIT 2 OFFSET 5"
        )
        assert "top-k(7)" in plan

    def test_executor_skips_order_keys_entirely(self, database):
        """The short-circuit must fire before any order key is computed:
        an ORDER BY position that would raise out-of-range never gets
        the chance under LIMIT 0 (sqlite's lazy evaluation likewise
        only rejects it at higher limits)."""
        result = database.execute(
            "SELECT label FROM event ORDER BY score LIMIT 0 OFFSET 100",
            cached=False,
        )
        assert result.rows == []
