"""Differential testing: the engine vs sqlite3 on randomized inputs.

The stdlib's SQLite is used as a semantics oracle: the same random data
is loaded into both engines, the same random queries run on both, and
result multisets must agree.  Dialect traps are avoided by
construction:

* LIKE — sqlite's LIKE is case-insensitive by default; queries use
  ``PRAGMA case_sensitive_like = ON`` to match the engine;
* ``/`` — integer division differs; the generator never divides;
* ORDER BY + LIMIT — ties are resolved differently; ORDER BY is only
  combined with LIMIT when the sort key is unique (the PK);
* booleans — sqlite stores 0/1; comparison normalizes.
"""

import random
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database, Schema, make_column


def normalize(rows):
    def cell(value):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, float):
            return round(value, 6)
        return value

    return sorted(
        (tuple(cell(v) for v in row) for row in rows),
        key=lambda row: tuple((v is None, str(type(v)), str(v)) for v in row),
    )


class Mirror:
    """The same schema + rows in both engines."""

    def __init__(self, seed: int, team_rows: int = 30, player_rows: int = 120) -> None:
        rng = random.Random(seed)
        schema = Schema("mirror")
        schema.create_table(
            "team",
            [
                make_column("team_id", "int", primary_key=True),
                make_column("name", "text"),
                make_column("founded", "int"),
                make_column("confed", "text"),
            ],
        )
        schema.create_table(
            "player",
            [
                make_column("player_id", "int", primary_key=True),
                make_column("team_id", "int"),
                make_column("pname", "text"),
                make_column("goals", "int"),
                make_column("height", "real"),
            ],
        )
        schema.add_foreign_key("player", "team_id", "team", "team_id")
        self.engine = Database(schema)
        self.sqlite = sqlite3.connect(":memory:")
        self.sqlite.execute("PRAGMA case_sensitive_like = ON")
        self.sqlite.execute(
            "CREATE TABLE team (team_id INTEGER PRIMARY KEY, name TEXT, "
            "founded INTEGER, confed TEXT)"
        )
        self.sqlite.execute(
            "CREATE TABLE player (player_id INTEGER PRIMARY KEY, team_id INTEGER, "
            "pname TEXT, goals INTEGER, height REAL)"
        )
        confeds = ["UEFA", "CONMEBOL", "AFC", "CAF"]
        names = [f"Team{chr(65 + i % 26)}{i}" for i in range(team_rows)]
        for team_id in range(1, team_rows + 1):
            row = (
                team_id,
                names[team_id - 1],
                rng.randint(1880, 1990),
                rng.choice(confeds),
            )
            self.engine.insert("team", row)
            self.sqlite.execute("INSERT INTO team VALUES (?, ?, ?, ?)", row)
        for player_id in range(1, player_rows + 1):
            goals = None if rng.random() < 0.1 else rng.randint(0, 15)
            row = (
                player_id,
                rng.randint(1, team_rows),
                f"Player{player_id}",
                goals,
                round(rng.uniform(1.6, 2.05), 2),
            )
            self.engine.insert("player", row)
            self.sqlite.execute("INSERT INTO player VALUES (?, ?, ?, ?, ?)", row)

    def agree(self, sql: str) -> None:
        ours = normalize(self.engine.execute(sql).rows)
        theirs = normalize(self.sqlite.execute(sql).fetchall())
        assert ours == theirs, f"divergence on: {sql}\nengine={ours[:5]}\nsqlite={theirs[:5]}"


@pytest.fixture(scope="module")
def mirror():
    return Mirror(seed=1234)


FIXED_QUERIES = [
    "SELECT name FROM team WHERE founded > 1950",
    "SELECT name, founded FROM team WHERE confed = 'UEFA' AND founded < 1930",
    "SELECT count(*) FROM player",
    "SELECT count(goals) FROM player",
    "SELECT count(DISTINCT team_id) FROM player",
    "SELECT sum(goals), min(goals), max(goals) FROM player",
    "SELECT avg(height) FROM player WHERE goals IS NOT NULL",
    "SELECT team_id, count(*) FROM player GROUP BY team_id",
    "SELECT team_id, sum(goals) FROM player GROUP BY team_id HAVING count(*) > 3",
    "SELECT t.name, count(*) FROM team AS t JOIN player AS p "
    "ON t.team_id = p.team_id GROUP BY t.name",
    "SELECT t.name, p.pname FROM team AS t JOIN player AS p "
    "ON t.team_id = p.team_id WHERE p.goals > 10",
    "SELECT name FROM team WHERE team_id IN (SELECT team_id FROM player WHERE goals > 12)",
    "SELECT pname FROM player WHERE goals = (SELECT max(goals) FROM player)",
    "SELECT pname FROM player WHERE goals BETWEEN 3 AND 7",
    "SELECT pname FROM player WHERE pname LIKE 'Player1%'",
    "SELECT name FROM team WHERE NOT (founded > 1950 OR confed = 'UEFA')",
    "SELECT DISTINCT confed FROM team",
    "SELECT confed FROM team UNION SELECT confed FROM team",
    "SELECT team_id FROM team EXCEPT SELECT team_id FROM player",
    "SELECT team_id FROM team INTERSECT SELECT team_id FROM player",
    "SELECT founded FROM team UNION ALL SELECT goals FROM player WHERE goals IS NOT NULL",
    "SELECT name FROM team ORDER BY team_id LIMIT 7",
    "SELECT pname FROM player ORDER BY player_id DESC LIMIT 5 OFFSET 3",
    "SELECT goals FROM player WHERE goals IS NULL",
    "SELECT pname FROM player WHERE team_id NOT IN (1, 2, 3)",
    "SELECT t.confed, avg(p.height) FROM team AS t JOIN player AS p "
    "ON t.team_id = p.team_id GROUP BY t.confed",
    "SELECT name FROM team AS t WHERE EXISTS "
    "(SELECT 1 FROM player AS p WHERE p.team_id = t.team_id AND p.goals > 13)",
    "SELECT upper(confed), length(name) FROM team WHERE team_id < 4",
    "SELECT count(*) FROM team AS a JOIN team AS b ON a.founded = b.founded "
    "WHERE a.team_id < b.team_id",
]


@pytest.mark.parametrize("sql", FIXED_QUERIES)
def test_fixed_queries_agree(mirror, sql):
    mirror.agree(sql)


def test_random_filter_queries_agree(mirror):
    rng = random.Random(99)
    columns = ["founded", "team_id"]
    operators = ["=", "<>", "<", "<=", ">", ">="]
    for _ in range(60):
        column = rng.choice(columns)
        operator = rng.choice(operators)
        value = rng.randint(1875, 1995) if column == "founded" else rng.randint(0, 35)
        mirror.agree(f"SELECT name FROM team WHERE {column} {operator} {value}")


def test_random_aggregate_queries_agree(mirror):
    rng = random.Random(7)
    aggregates = ["count(*)", "sum(goals)", "min(goals)", "max(goals)", "avg(goals)"]
    for _ in range(40):
        aggregate = rng.choice(aggregates)
        threshold = rng.randint(0, 14)
        mirror.agree(
            f"SELECT team_id, {aggregate} FROM player WHERE goals >= {threshold} "
            "GROUP BY team_id"
        )


def test_random_join_queries_agree(mirror):
    rng = random.Random(21)
    for _ in range(30):
        goals = rng.randint(0, 14)
        founded = rng.randint(1880, 1990)
        mirror.agree(
            "SELECT t.name, p.pname FROM team AS t JOIN player AS p "
            f"ON t.team_id = p.team_id WHERE p.goals > {goals} "
            f"AND t.founded < {founded}"
        )


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=40, deadline=None)
def test_property_datasets_agree_on_core_queries(seed):
    """Fresh random data each example; a fixed probe query set."""
    mirror = Mirror(seed=seed, team_rows=8, player_rows=25)
    for sql in (
        "SELECT count(*), sum(goals) FROM player",
        "SELECT team_id, count(*) FROM player GROUP BY team_id HAVING count(*) >= 2",
        "SELECT t.confed, max(p.goals) FROM team AS t JOIN player AS p "
        "ON t.team_id = p.team_id GROUP BY t.confed",
        "SELECT team_id FROM team EXCEPT SELECT team_id FROM player",
    ):
        mirror.agree(sql)


# ---------------------------------------------------------------------------
# Differential testing of schema morphs
# ---------------------------------------------------------------------------
#
# Every morphed schema's migrated data and rewritten queries must execute
# identically on our engine and on sqlite3, and identically to the *base*
# schema within each engine.  The morph base (see ``conftest.py``) is a
# compact football-shaped schema exercising every operator family.

from repro.footballdb.morph import SchemaMorpher, result_signature
from repro.sqlengine import sqlite_result, to_sqlite

MORPH_SWEEP_SEEDS = range(8)


@pytest.mark.parametrize("chain_seed", MORPH_SWEEP_SEEDS)
def test_morphed_schemas_agree_with_sqlite_and_base(
    chain_seed, morph_base_builder, morph_probes
):
    """Seeded sweep: migrated data + rewritten queries, two engines."""
    base = morph_base_builder()
    base_sqlite = to_sqlite(base, case_sensitive_like=True)
    morph = SchemaMorpher(seed=chain_seed).morph(base, f"m{chain_seed}", steps=3)
    morph_sqlite = to_sqlite(morph.database, case_sensitive_like=True)
    for sql in morph_probes:
        rewritten = morph.rewrite_sql(sql)
        base_engine = result_signature(base.execute(sql))
        morph_engine = result_signature(morph.database.execute(rewritten))
        assert morph_engine == base_engine, (morph.describe(), sql, rewritten)
        base_lite = result_signature(sqlite_result(base_sqlite, sql))
        morph_lite = result_signature(sqlite_result(morph_sqlite, rewritten))
        assert morph_lite == base_lite, (morph.describe(), sql, rewritten)
        assert morph_lite == morph_engine, (morph.describe(), sql, rewritten)


def test_split_requalifies_bare_references(morph_base_builder, morph_probes):
    """Regression: a split whose extension table duplicates the PK must
    re-qualify previously unambiguous bare column references (seed 6
    splits ``team`` and left ``ORDER BY team_id`` ambiguous)."""
    from repro.footballdb.morph import SplitTable

    base = morph_base_builder()
    morph = SchemaMorpher(seed=6, operators=[SplitTable()]).morph(
        base, "split6", steps=1
    )
    for sql in morph_probes:
        rewritten = morph.rewrite_sql(sql)
        assert result_signature(morph.database.execute(rewritten)) == result_signature(
            base.execute(sql)
        ), (morph.describe(), sql, rewritten)


def test_morph_chain_coverage_over_sweep(morph_base_builder):
    """The seeded chains jointly exercise most of the operator set."""
    base = morph_base_builder()
    applied = set()
    for chain_seed in MORPH_SWEEP_SEEDS:
        morph = SchemaMorpher(seed=chain_seed).morph(base, f"m{chain_seed}", steps=3)
        applied.update(morph.operator_names)
    assert len(applied) >= 5, applied
