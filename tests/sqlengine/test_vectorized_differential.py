"""The vectorized executor's correctness contract, enforced differentially.

Four sweeps, mirroring the optimizer's differential suite:

* every distinct benchmark gold query, on every data model, must
  return identical normalized result multisets vectorized vs. row —
  and vs. sqlite3 through the bridge;
* seeded morph chains (6 ≥ the required 5) over the morph base: the
  rewritten probe workload agrees base-vs-morph, vectorized-vs-row
  and engine-vs-sqlite;
* a randomized predicate fuzz that also toggles ``engine_mode``
  per query;
* a grid-run property: one evaluation sweep where every engine call
  picks a random backend must produce byte-identical
  ``EvaluationResult`` outcomes and ``GridSummary`` accounting to a
  row-pinned sweep.
"""

import random

import pytest

from repro.benchmark import build_benchmark
from repro.evaluation import GridConfig, Harness, engine_report
from repro.footballdb import VERSIONS, build_universe, load_all
from repro.footballdb.morph import SchemaMorpher, result_signature
from repro.sqlengine import sqlite_dialect, sqlite_result, to_sqlite
from repro.systems import GPT35, Llama2


@pytest.fixture(scope="module")
def universe():
    return build_universe(seed=2022)


@pytest.fixture(scope="module")
def football(universe):
    return load_all(universe=universe)


@pytest.fixture(scope="module")
def dataset(universe):
    return build_benchmark(universe)


@pytest.mark.parametrize("version", VERSIONS)
def test_full_benchmark_gold_vectorized_equals_row_and_sqlite(
    version, football, dataset
):
    database = football[version]
    sqlite_conn = to_sqlite(database)
    queries = sorted({example.gold[version] for example in dataset.examples})
    assert len(queries) > 100  # the sweep must actually cover the benchmark
    divergences = []
    for sql in queries:
        vectorized = result_signature(
            database.execute(sql, engine_mode="vectorized")
        )
        row = result_signature(database.execute(sql, engine_mode="row"))
        lite = result_signature(sqlite_result(sqlite_conn, sqlite_dialect(sql)))
        if vectorized != row:
            divergences.append(("engine_mode", sql))
        if vectorized != lite:
            divergences.append(("sqlite", sql))
    assert not divergences, divergences[:5]
    stats = database.engine_mode_stats()
    assert stats["vectorized_nodes"] > 0  # the sweep exercised the new path


MORPH_CHAIN_SEEDS = range(6)


@pytest.mark.parametrize("chain_seed", MORPH_CHAIN_SEEDS)
def test_morph_chains_agree_across_engine_modes(
    chain_seed, morph_base_builder, morph_probes
):
    base = morph_base_builder()
    morph = SchemaMorpher(seed=chain_seed).morph(base, f"vec{chain_seed}", steps=3)
    morph_sqlite = to_sqlite(morph.database, case_sensitive_like=True)
    for sql in morph_probes:
        rewritten = morph.rewrite_sql(sql)
        base_row = result_signature(base.execute(sql, engine_mode="row"))
        base_vec = result_signature(base.execute(sql, engine_mode="vectorized"))
        morph_row = result_signature(
            morph.database.execute(rewritten, engine_mode="row")
        )
        morph_vec = result_signature(
            morph.database.execute(rewritten, engine_mode="vectorized")
        )
        lite = result_signature(sqlite_result(morph_sqlite, rewritten))
        context = (morph.describe(), sql, rewritten)
        assert base_vec == base_row, context
        assert morph_vec == morph_row, context
        assert morph_vec == base_vec, context
        assert morph_vec == lite, context


def test_randomized_predicates_agree_across_modes(morph_base_builder):
    """Fuzz the kernel surface: comparisons, IN lists, BETWEEN, NULL
    logic, arithmetic — with the backend toggled at random per query
    and both optimizer modes in the mix."""
    db = morph_base_builder()
    rng = random.Random(2026)
    columns = ["year", "home_goals", "away_goals", "home_team_id"]
    operators = ["=", "<>", "<", "<=", ">", ">="]
    predicates = []
    for _ in range(120):
        column = rng.choice(columns)
        op = rng.choice(operators)
        value = rng.randint(0, 2022)
        predicates.append(f"{column} {op} {value}")
    predicates += [
        "1 = 1",
        "1 = 2",
        "NULL",
        "year IN (2014, 2018)",
        "year NOT IN (2014, NULL)",
        "year BETWEEN 2014 AND 2018",
        "home_goals + away_goals > 4",
        "NOT (year = 2014 OR year = 2018)",
        "year = 2014 AND 1 = 1",
        "1 = 2 OR home_goals >= 3",
        "home_goals IS NULL OR away_goals >= 0",
    ]
    for predicate in predicates:
        for template in (
            "SELECT match_id FROM match WHERE {p}",
            "SELECT count(*) FROM match WHERE {p}",
            "SELECT T2.name FROM match AS T1 JOIN team AS T2 "
            "ON T1.home_team_id = T2.team_id WHERE {p}",
        ):
            sql = template.format(p=predicate)
            optimize = rng.random() < 0.5
            vectorized = result_signature(
                db.execute(sql, optimize=optimize, engine_mode="vectorized")
            )
            row = result_signature(
                db.execute(sql, optimize=optimize, engine_mode="row")
            )
            toggled = result_signature(
                db.execute(
                    sql,
                    optimize=optimize,
                    engine_mode=rng.choice(["row", "vectorized", "auto"]),
                )
            )
            assert vectorized == row == toggled, sql


# -- grid property: random per-query backend, identical sweep ----------------

GRID_SYSTEMS = [(GPT35, "v1", 10), (Llama2, "v3", 4)]


def test_grid_run_identical_with_random_engine_mode_per_query(
    universe, dataset
):
    """Toggling the backend per engine call inside one grid run must be
    invisible in the results (fresh databases per sweep so the EX
    result caches cannot mask a divergence)."""
    rng = random.Random(77)

    # baseline: every database pinned to the row executor
    football = load_all(universe=universe)
    for version in football.versions:
        football[version].engine_mode = "row"
    harness = Harness(football, dataset)
    row_results = [
        harness.evaluate(system_cls, version, shots=shots, fold=0)
        for system_cls, version, shots in GRID_SYSTEMS
    ]
    row_outcomes = [
        (r.system, r.version, r.shots, tuple(r.outcomes)) for r in row_results
    ]

    # candidate: every execute() picks a random backend
    mixed = load_all(universe=universe)
    for version in mixed.versions:
        database = mixed[version]
        original = database.execute

        def randomized(sql, cached=True, optimize=None, engine_mode=None,
                       _original=original, _rng=rng):
            mode = engine_mode or _rng.choice(["row", "vectorized", "auto"])
            return _original(
                sql, cached=cached, optimize=optimize, engine_mode=mode
            )

        database.execute = randomized
    mixed_harness = Harness(mixed, dataset)
    mixed_results = [
        mixed_harness.evaluate(system_cls, version, shots=shots, fold=0)
        for system_cls, version, shots in GRID_SYSTEMS
    ]
    mixed_outcomes = [
        (r.system, r.version, r.shots, tuple(r.outcomes)) for r in mixed_results
    ]

    assert mixed_outcomes == row_outcomes
    # both backends actually ran during the mixed sweep
    report = engine_report(mixed)["engine_modes"]
    assert report["row_statements"] > 0
    assert report["vectorized_statements"] > 0
    assert report["vectorized_nodes"] > 0


def test_grid_summary_reports_engine_mode_split(football, dataset):
    harness = Harness(football, dataset)
    results, summary = harness.evaluate_grid(
        # one tiny config is enough to populate the per-run delta
        [GridConfig.make(GPT35, "v1", shots=4, fold=0)],
        max_workers=1,
    )
    assert summary.engine is not None
    modes = summary.engine["engine_modes"]
    assert set(modes) >= {
        "row_statements",
        "vectorized_statements",
        "vectorized_nodes",
        "fallback_nodes",
    }
    assert "vectorized" in summary.describe()
