"""Grammar-based differential fuzzing of the whole engine stack.

Hundreds of seeded queries are generated from the engine's grammar over
generated domains (built-ins and fresh random scenarios) and executed
under every engine configuration — row vs vectorized × optimizer on/off
— and on sqlite3 via the bridge.  Any disagreement is a bug; failure
messages carry the (domain, seed) pair so a divergence reproduces with
one ``load_random_domain``/``differential_fuzz`` call.

Together the cases below push >800 queries through the differential
harness on every CI run (the engine's own gold-query differentials are
in test_differential_sqlite.py / test_optimizer_differential.py).
"""

from __future__ import annotations

import pytest

from repro.domains import (
    GrammarQueryFuzzer,
    SchemaMorpher,
    differential_fuzz,
    load_domain,
    load_random_domain,
)

#: fixed seed matrix — CI reproducibility is part of the contract
BUILTIN_CASES = (
    ("hospital", 101),
    ("retail", 202),
    ("flights", 303),
)
BUILTIN_DOMAIN_SEED = 2022
RANDOM_SEEDS = (7, 91)
QUERIES_PER_CASE = 150


def _assert_clean(report, domain_seed):
    """On divergence, print the full (domain seed, fuzz seed, sql)
    repro triple — regenerating the domain from its seed and re-running
    the fuzzer reproduces the exact failing query."""
    detail = [
        f"{divergence.detail}\n  {divergence.sql}"
        for divergence in report.divergences[:5]
    ]
    assert report.ok, (
        f"repro: domain={report.domain} domain_seed={domain_seed} "
        f"fuzz_seed={report.seed} — " + "; ".join(detail)
    )


@pytest.mark.parametrize("name,seed", BUILTIN_CASES, ids=[c[0] for c in BUILTIN_CASES])
def test_builtin_domain_differential_fuzz(name, seed):
    database = load_domain(name, seed=BUILTIN_DOMAIN_SEED)["base"]
    report = differential_fuzz(database, count=QUERIES_PER_CASE, seed=seed)
    assert report.queries == QUERIES_PER_CASE
    _assert_clean(report, BUILTIN_DOMAIN_SEED)


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_random_domain_differential_fuzz(seed):
    """Every random-domain seed is a fresh database shape to fuzz."""
    instance = load_random_domain(seed)
    report = differential_fuzz(instance["base"], count=QUERIES_PER_CASE, seed=seed)
    _assert_clean(report, seed)


def test_morphed_domain_differential_fuzz():
    """Morph outputs are fuzz inputs too: a derived data model must obey
    the same four-config + sqlite agreement as any base schema."""
    instance = load_random_domain(13)
    morph = SchemaMorpher(seed=13).derive(instance["base"], count=1, steps=3)[0]
    report = differential_fuzz(morph.database, count=80, seed=13)
    _assert_clean(report, 13)


def test_fuzzer_is_deterministic():
    database = load_domain("hospital", seed=2022)["base"]
    first = GrammarQueryFuzzer(database, seed=5).queries(40)
    second = GrammarQueryFuzzer(database, seed=5).queries(40)
    assert first == second
    assert first != GrammarQueryFuzzer(database, seed=6).queries(40)


def test_fuzzer_covers_grammar_surface():
    """The generator exercises joins, aggregation, subqueries (the
    correlated and negated IN shapes included), ORDER BY + LIMIT
    windows and set operations — not just flat scans."""
    database = load_domain("hospital", seed=2022)["base"]
    corpus = " ".join(GrammarQueryFuzzer(database, seed=8).queries(200))
    for token in (
        "JOIN",
        "GROUP BY",
        "EXISTS",
        "UNION",
        "ILIKE",
        "BETWEEN",
        "IN (",
        "NOT IN",
        "LIMIT",
        "OFFSET",
    ):
        assert token in corpus, token


def test_fuzzer_generates_correlated_in_subqueries():
    """The correlated-IN production emits probes whose subquery WHERE
    references the outer binding — decorrelation's input shape."""
    database = load_domain("hospital", seed=2022)["base"]
    queries = GrammarQueryFuzzer(database, seed=8).queries(200)
    correlated = [
        sql for sql in queries if "IN (" in sql and "= T0." in sql and " I0" in sql
    ]
    assert len(correlated) >= 10
