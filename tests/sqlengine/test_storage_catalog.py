"""Catalog and storage constraint tests."""

import pytest

from repro.sqlengine import (
    CatalogError,
    ConstraintError,
    Database,
    Schema,
    SqlType,
    TypeMismatchError,
    make_column,
)
from repro.sqlengine.catalog import Column, Table


class TestCatalog:
    def test_duplicate_table_rejected(self):
        schema = Schema("s")
        schema.create_table("t", [make_column("a", "int")])
        with pytest.raises(CatalogError):
            schema.create_table("t", [make_column("a", "int")])

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a", SqlType.INTEGER), Column("A", SqlType.TEXT)])

    def test_invalid_identifier_rejected(self):
        with pytest.raises(CatalogError):
            Table("bad name", [Column("a", SqlType.INTEGER)])
        with pytest.raises(CatalogError):
            Column("bad col", SqlType.INTEGER)

    def test_fk_requires_existing_columns(self):
        schema = Schema("s")
        schema.create_table("a", [make_column("x", "int")])
        schema.create_table("b", [make_column("y", "int")])
        with pytest.raises(CatalogError):
            schema.add_foreign_key("a", "nope", "b", "y")
        with pytest.raises(CatalogError):
            schema.add_foreign_key("a", "x", "b", "nope")

    def test_foreign_keys_between_counts_multi_edges(self):
        """The v1 pathology: two FK edges between match and national_team."""
        schema = Schema("s")
        schema.create_table("national_team", [make_column("team_id", "int", primary_key=True)])
        schema.create_table(
            "match",
            [
                make_column("match_id", "int", primary_key=True),
                make_column("home_team_id", "int"),
                make_column("away_team_id", "int"),
            ],
        )
        schema.add_foreign_key("match", "home_team_id", "national_team", "team_id")
        schema.add_foreign_key("match", "away_team_id", "national_team", "team_id")
        edges = schema.foreign_keys_between("match", "national_team")
        assert len(edges) == 2

    def test_column_and_fk_counts(self):
        schema = Schema("s")
        schema.create_table("a", [make_column("x", "int", primary_key=True), make_column("y", "text")])
        schema.create_table("b", [make_column("z", "int")])
        schema.add_foreign_key("b", "z", "a", "x")
        assert schema.column_count == 3
        assert schema.foreign_key_count == 1

    def test_case_insensitive_lookup(self):
        schema = Schema("s")
        schema.create_table("MyTable", [make_column("MyCol", "int")])
        assert schema.table("mytable").column("mycol").name == "MyCol"


class TestStorageConstraints:
    def make_db(self):
        schema = Schema("s")
        schema.create_table(
            "parent", [make_column("id", "int", primary_key=True), make_column("v", "text")]
        )
        schema.create_table(
            "child",
            [make_column("id", "int", primary_key=True), make_column("parent_id", "int")],
        )
        schema.add_foreign_key("child", "parent_id", "parent", "id")
        return Database(schema)

    def test_pk_uniqueness(self):
        db = self.make_db()
        db.insert("parent", (1, "a"))
        with pytest.raises(ConstraintError):
            db.insert("parent", (1, "b"))

    def test_pk_null_rejected(self):
        db = self.make_db()
        with pytest.raises(ConstraintError):
            db.insert("parent", (None, "a"))

    def test_fk_enforced(self):
        db = self.make_db()
        db.insert("parent", (1, "a"))
        db.insert("child", (10, 1))
        with pytest.raises(ConstraintError):
            db.insert("child", (11, 99))

    def test_fk_violation_rolls_back_row(self):
        db = self.make_db()
        db.insert("parent", (1, "a"))
        with pytest.raises(ConstraintError):
            db.insert("child", (11, 99))
        assert db.row_count("child") == 0

    def test_null_fk_allowed(self):
        db = self.make_db()
        db.insert("child", (1, None))
        assert db.row_count("child") == 1

    def test_arity_mismatch(self):
        db = self.make_db()
        with pytest.raises(ConstraintError):
            db.insert("parent", (1, "a", "extra"))

    def test_type_coercion_rejects_garbage(self):
        db = self.make_db()
        with pytest.raises(TypeMismatchError):
            db.insert("parent", ("not-an-int", "a"))

    def test_insert_dicts_fills_missing_with_null(self):
        db = self.make_db()
        db.insert_dicts("parent", [{"id": 1}])
        assert db.execute("SELECT v FROM parent").rows == [(None,)]

    def test_fk_disabled_mode(self):
        schema = Schema("s")
        schema.create_table("a", [make_column("id", "int", primary_key=True)])
        schema.create_table("b", [make_column("a_id", "int")])
        schema.add_foreign_key("b", "a_id", "a", "id")
        db = Database(schema, enforce_foreign_keys=False)
        db.insert("b", (99,))  # would violate FK if enforced
        assert db.row_count("b") == 1
