"""Engine-test fixtures: a compact morphable database.

``morph_base_db`` builds a football-shaped schema that every morph
operator can act on: a multi-edge FK pair (``match`` references ``team``
twice), a total 1:1 child (``match_extra``), an undeclared data-valid
reference (``stat.match_id``) and widen-able integer columns.  Shared by
the sqlite differential sweep and the formatter round-trip properties.
"""

from __future__ import annotations

import random

import pytest

from repro.sqlengine import Database, Schema, make_column


def build_morph_base(seed: int = 424) -> Database:
    rng = random.Random(seed)
    schema = Schema("morphbase", version="base")
    schema.create_table(
        "team",
        [
            make_column("team_id", "int", primary_key=True),
            make_column("name", "text"),
            make_column("founded", "int"),
            make_column("confed", "text"),
        ],
    )
    schema.create_table(
        "match",
        [
            make_column("match_id", "int", primary_key=True),
            make_column("year", "int"),
            make_column("home_team_id", "int"),
            make_column("away_team_id", "int"),
            make_column("home_goals", "int"),
            make_column("away_goals", "int"),
        ],
    )
    schema.create_table(
        "match_extra",  # total 1:1 child of match -> inline_child fodder
        [
            make_column("match_id", "int", primary_key=True),
            make_column("stadium", "text"),
            make_column("attendance", "int"),
        ],
    )
    schema.create_table(
        "stat",  # stat.match_id is an undeclared reference -> declare_fk fodder
        [
            make_column("stat_id", "int", primary_key=True),
            make_column("match_id", "int"),
            make_column("points", "int"),
        ],
    )
    schema.add_foreign_key("match", "home_team_id", "team", "team_id")
    schema.add_foreign_key("match", "away_team_id", "team", "team_id")
    schema.add_foreign_key("match_extra", "match_id", "match", "match_id")
    db = Database(schema)
    teams = 12
    for team_id in range(1, teams + 1):
        db.insert(
            "team",
            (
                team_id,
                f"Nat{chr(64 + team_id)}",
                rng.randint(1880, 1990),
                rng.choice(["UEFA", "CONMEBOL", "AFC"]),
            ),
        )
    for match_id in range(1, 41):
        home = rng.randint(1, teams)
        away = (home % teams) + 1
        db.insert(
            "match",
            (match_id, rng.choice([2014, 2018, 2022]), home, away,
             rng.randint(0, 5), rng.randint(0, 5)),
        )
        db.insert(
            "match_extra",
            (match_id, f"Stadium{match_id % 7}", rng.randrange(20_000, 90_000, 500)),
        )
    for stat_id in range(1, 61):
        db.insert("stat", (stat_id, rng.randint(1, 40), rng.randint(0, 10)))
    return db


#: probe workload over the morph base: aliased + unqualified references,
#: self-joins via the multi-edge pair, UNION/EXCEPT, grouping, subqueries.
MORPH_PROBES = [
    "SELECT name FROM team WHERE founded > 1950",
    "SELECT count(*) FROM match WHERE year = 2018",
    "SELECT T2.name, T3.name, T1.home_goals, T1.away_goals FROM match AS T1 "
    "JOIN team AS T2 ON T1.home_team_id = T2.team_id "
    "JOIN team AS T3 ON T1.away_team_id = T3.team_id WHERE T1.year = 2014",
    "SELECT T2.name FROM match AS T1 JOIN team AS T2 ON T1.home_team_id = T2.team_id "
    "UNION SELECT T2.name FROM match AS T1 JOIN team AS T2 "
    "ON T1.away_team_id = T2.team_id",
    "SELECT team_id FROM team EXCEPT SELECT home_team_id FROM match",
    "SELECT T1.year, sum(T1.home_goals + T1.away_goals) FROM match AS T1 "
    "GROUP BY T1.year HAVING count(*) > 2",
    "SELECT T2.stadium, count(*) FROM match AS T1 "
    "JOIN match_extra AS T2 ON T1.match_id = T2.match_id GROUP BY T2.stadium",
    "SELECT name FROM team AS T1 WHERE EXISTS (SELECT 1 FROM match AS T2 "
    "WHERE T2.home_team_id = T1.team_id AND T2.home_goals > 3)",
    "SELECT T1.points FROM stat AS T1 JOIN match AS T2 "
    "ON T1.match_id = T2.match_id WHERE T2.year = 2022",
    "SELECT avg(attendance) FROM match_extra",
    "SELECT T1.match_id FROM match AS T1 WHERE T1.home_goals = "
    "(SELECT max(T2.home_goals) FROM match AS T2)",
    "SELECT name FROM team WHERE team_id IN "
    "(SELECT home_team_id FROM match WHERE year = 2014) ORDER BY team_id LIMIT 5",
]


@pytest.fixture()
def morph_base_db() -> Database:
    return build_morph_base()


@pytest.fixture(scope="session")
def morph_probes():
    return list(MORPH_PROBES)


@pytest.fixture(scope="session")
def morph_base_builder():
    return build_morph_base
