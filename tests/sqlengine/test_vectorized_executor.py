"""Vectorized executor behaviour: mode selection, fallback, parity.

The static gate's promise is that everything it admits is
byte-identical to row execution and everything it rejects falls back
per node — including queries whose whole point is to raise.  These
tests pin the selection rules and the observability counters; the
exhaustive result equality lives in ``test_vectorized_differential.py``.
"""

import pytest

from repro.sqlengine import Database, Schema, analyze_select, make_column, parse_sql
from repro.sqlengine.errors import (
    CatalogError,
    EngineError,
    ExecutionError,
    TypeMismatchError,
)


def modes(db):
    return db.engine_mode_stats()


class TestModeSelection:
    def test_invalid_engine_mode_rejected(self, toy_db):
        with pytest.raises(ValueError):
            Database(toy_db.schema, engine_mode="turbo")
        with pytest.raises(ValueError):
            toy_db.execute("SELECT name FROM team", engine_mode="turbo")

    def test_row_mode_pins_the_row_executor(self, toy_db):
        toy_db.execute("SELECT name FROM team", engine_mode="row")
        stats = modes(toy_db)
        assert stats["row_statements"] == 1
        assert stats["vectorized_statements"] == 0

    def test_auto_vectorizes_eligible_nodes(self, toy_db):
        toy_db.execute("SELECT name FROM team WHERE founded > 1900")
        stats = modes(toy_db)
        assert stats["vectorized_statements"] == 1
        assert stats["vectorized_nodes"] == 1
        assert stats["fallback_nodes"] == 0

    def test_subquery_falls_back_per_node(self, toy_db):
        # scalar subqueries stay subqueries (only EXISTS/IN decorrelate),
        # so the select core still needs the row executor
        toy_db.execute(
            "SELECT name FROM player WHERE goals = "
            "(SELECT max(goals) FROM player)"
        )
        stats = modes(toy_db)
        assert stats["fallback_nodes"] == 1
        assert stats["vectorized_nodes"] == 0

    def test_decorrelated_in_subquery_vectorizes(self, toy_db):
        # the optimizer turns this IN into a semi join, so the
        # vectorized engine no longer needs a row fallback for it
        toy_db.execute(
            "SELECT name FROM team WHERE team_id IN "
            "(SELECT team_id FROM player WHERE goals > 5)"
        )
        stats = modes(toy_db)
        assert stats["fallback_nodes"] == 0
        assert stats["vectorized_nodes"] == 1

    def test_set_operation_sides_selected_independently(self, toy_db):
        # left side vectorizable, right side needs a subquery fallback
        toy_db.execute(
            "SELECT name FROM team WHERE founded > 1900 "
            "UNION "
            "SELECT name FROM player WHERE goals = "
            "(SELECT max(goals) FROM player)"
        )
        stats = modes(toy_db)
        assert stats["vectorized_nodes"] == 1
        assert stats["fallback_nodes"] == 1

    def test_case_expression_falls_back(self, toy_db):
        result = toy_db.execute(
            "SELECT CASE WHEN founded < 1905 THEN 'old' ELSE 'new' END FROM team"
        )
        assert len(result.rows) == 3
        assert modes(toy_db)["fallback_nodes"] == 1

    def test_text_number_comparison_falls_back(self, toy_db):
        # name > 5 raises at runtime; the gate must hand it to the row
        # executor rather than evaluate column-at-a-time
        with pytest.raises(TypeMismatchError):
            toy_db.execute("SELECT name FROM team WHERE name > 5")
        assert modes(toy_db)["fallback_nodes"] == 1

    def test_analyze_select_is_none_for_unknown_table(self, toy_db):
        select = parse_sql("SELECT x FROM nowhere")
        assert analyze_select(select, toy_db.schema) is None


class TestErrorParity:
    """Queries that raise must raise identically in every mode."""

    CASES = [
        "SELECT nope FROM team",
        "SELECT name FROM team WHERE name > 5",
        "SELECT name FROM team, player WHERE name = 'x'",  # ambiguous
        "SELECT goals / (founded - founded) FROM team JOIN player ON player.team_id = team.team_id",
        "SELECT sum(name) FROM player",
        "SELECT name FROM team ORDER BY 9",
        # residual ON term referencing a binding joined *later*: the
        # row executor resolves against the extended frame only and
        # raises CatalogError — the gate must not admit the node
        "SELECT count(*) FROM team AS a "
        "JOIN player AS b ON b.team_id = a.team_id AND c.team_id = 1 "
        "JOIN team AS c ON c.team_id = b.team_id",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_same_error_class_and_message(self, toy_db, sql):
        errors = {}
        for mode in ("row", "vectorized"):
            try:
                toy_db.execute(sql, engine_mode=mode)
                errors[mode] = None
            except EngineError as exc:
                errors[mode] = (type(exc), str(exc))
        assert errors["row"] is not None
        assert errors["row"] == errors["vectorized"]


class TestDynamicFallback:
    def test_global_aggregate_over_zero_rows(self, toy_db):
        # the representative frame is EMPTY: a bare column projection
        # raises in the row executor and must here too
        with pytest.raises(CatalogError):
            toy_db.execute(
                "SELECT name, count(*) FROM team WHERE founded > 3000",
                engine_mode="vectorized",
            )
        # pure aggregates over zero rows produce the NULL/0 row
        result = toy_db.execute(
            "SELECT count(*), sum(founded) FROM team WHERE founded > 3000",
            engine_mode="vectorized",
        )
        assert result.rows == [(0, None)]

    def test_grouped_aggregate_over_zero_rows_is_vectorized(self, toy_db):
        result = toy_db.execute(
            "SELECT founded, count(*) FROM team WHERE founded > 3000 GROUP BY founded"
        )
        assert result.rows == []
        assert modes(toy_db)["vectorized_nodes"] == 1


class TestInvalidation:
    def test_insert_invalidates_columnar_view(self, toy_db):
        sql = "SELECT count(*) FROM team"
        assert toy_db.execute(sql, engine_mode="vectorized").rows == [(3,)]
        toy_db.insert("team", (4, "Italy", 1898))
        assert toy_db.execute(sql, engine_mode="vectorized").rows == [(4,)]
        assert toy_db.column_store_stats()["column_builds"] == 2

    def test_failed_insert_rollback_also_invalidates(self, toy_db):
        sql = "SELECT count(*) FROM player"
        toy_db.execute(sql, engine_mode="vectorized")
        with pytest.raises(EngineError):
            toy_db.insert("player", (99, 42, "Ghost", 1, 1.8))  # FK violation
        assert toy_db.execute(sql, engine_mode="vectorized").rows == [(5,)]


class TestParityDetails:
    def test_left_join_null_extension(self, toy_db):
        toy_db.insert("team", (9, "Iceland", 1947))  # team with no players
        sql = (
            "SELECT team.name, player.name FROM team "
            "LEFT JOIN player ON player.team_id = team.team_id "
            "ORDER BY team.team_id, player.player_id"
        )
        row = toy_db.execute(sql, engine_mode="row")
        vec = toy_db.execute(sql, engine_mode="vectorized")
        assert row.rows == vec.rows
        assert ("Iceland", None) in vec.rows

    def test_empty_stream_star_column_naming(self, toy_db):
        # the row executor names '*' from an EMPTY frame when no row
        # survives; the quirk is part of the byte-identical contract
        sql = "SELECT * FROM team WHERE founded > 3000"
        row = toy_db.execute(sql, engine_mode="row")
        vec = toy_db.execute(sql, engine_mode="vectorized")
        assert row.columns == vec.columns == ["*"]

    def test_duplicate_order_keys_stay_stable(self, toy_db):
        sql = "SELECT name, founded FROM team ORDER BY founded"
        row = toy_db.execute(sql, engine_mode="row")
        vec = toy_db.execute(sql, engine_mode="vectorized")
        assert row.rows == vec.rows  # 1900 tie must keep insertion order


class TestJoinShapeParity:
    """Hash-join planning corners: probe expressions, composite keys,
    residual terms, LEFT + residual — byte-identical to the row path."""

    CASES = [
        # arithmetic probe expression
        "SELECT count(*) FROM player AS T1 JOIN player AS T2 "
        "ON T2.player_id = T1.player_id + 1",
        # literal equi key alongside a column pair
        "SELECT T2.name FROM player AS T1 JOIN team AS T2 "
        "ON T2.team_id = 2 AND T1.team_id = T2.team_id",
        # composite multi-pair key
        "SELECT count(*) FROM player AS T1 JOIN player AS T2 "
        "ON T1.team_id = T2.team_id AND T1.goals = T2.goals",
        # residual inequality on top of a hash pair
        "SELECT count(*) FROM player AS T1 JOIN player AS T2 "
        "ON T1.team_id = T2.team_id AND T1.player_id < T2.player_id",
        # LEFT join with a residual condition
        "SELECT T1.name, T2.name FROM team AS T1 LEFT JOIN player AS T2 "
        "ON T2.team_id = T1.team_id AND T2.goals > 8 ORDER BY T1.team_id",
        # scalar-function probe expression
        "SELECT count(*) FROM team AS T1 JOIN team AS T2 "
        "ON upper(T1.name) = upper(T2.name)",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_identical_rows_and_columns(self, toy_db, sql):
        row = toy_db.execute(sql, engine_mode="row")
        vec = toy_db.execute(sql, engine_mode="vectorized")
        assert row.columns == vec.columns
        assert row.rows == vec.rows


class TestObservability:
    def test_engine_mode_stats_shape(self, toy_db):
        toy_db.execute("SELECT name FROM team", engine_mode="row")
        toy_db.execute("SELECT name FROM team")
        stats = modes(toy_db)
        assert stats["mode"] == "auto"
        assert set(stats) == {
            "mode",
            "row_statements",
            "vectorized_statements",
            "vectorized_nodes",
            "fallback_nodes",
        }
        assert stats["row_statements"] == 1
        assert stats["vectorized_statements"] == 1

    def test_database_engine_mode_default(self):
        schema = Schema("m")
        schema.create_table("t", [make_column("a", "int", primary_key=True)])
        assert Database(schema).engine_mode == "auto"
        assert Database(schema, engine_mode="row").engine_mode == "row"
