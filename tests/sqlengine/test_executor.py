"""Executor tests against the toy database fixture."""

import pytest

from repro.sqlengine import Database, ExecutionError, Schema, make_column


def rows(db, sql):
    return db.execute(sql).rows


class TestScansAndFilters:
    def test_full_scan(self, toy_db):
        assert len(rows(toy_db, "SELECT * FROM player")) == 5

    def test_projection_order(self, toy_db):
        result = toy_db.execute("SELECT name, goals FROM player WHERE player_id = 1")
        assert result.columns == ["name", "goals"]
        assert result.rows == [("Alder", 12)]

    def test_where_equality(self, toy_db):
        assert rows(toy_db, "SELECT name FROM team WHERE team_id = 2") == [("Germany",)]

    def test_where_with_quoted_number(self, toy_db):
        # Annotators frequently quote years; comparisons must align types.
        assert rows(toy_db, "SELECT name FROM team WHERE team_id = '2'") == [
            ("Germany",)
        ]

    def test_comparison_operators(self, toy_db):
        assert len(rows(toy_db, "SELECT * FROM player WHERE goals > 6")) == 3
        assert len(rows(toy_db, "SELECT * FROM player WHERE goals >= 7")) == 3
        assert len(rows(toy_db, "SELECT * FROM player WHERE goals < 7")) == 1
        assert len(rows(toy_db, "SELECT * FROM player WHERE goals <> 7")) == 2

    def test_null_never_matches_comparison(self, toy_db):
        # Emilio has NULL goals: excluded from both sides.
        low = rows(toy_db, "SELECT name FROM player WHERE goals < 100")
        assert ("Emilio",) not in low

    def test_is_null(self, toy_db):
        assert rows(toy_db, "SELECT name FROM player WHERE goals IS NULL") == [
            ("Emilio",)
        ]

    def test_like_case_sensitive(self, toy_db):
        assert rows(toy_db, "SELECT name FROM team WHERE name LIKE '%man%'") == [
            ("Germany",)
        ]
        assert rows(toy_db, "SELECT name FROM team WHERE name LIKE '%MAN%'") == []

    def test_ilike_case_insensitive(self, toy_db):
        assert rows(toy_db, "SELECT name FROM team WHERE name ILIKE '%MAN%'") == [
            ("Germany",)
        ]

    def test_between(self, toy_db):
        assert len(rows(toy_db, "SELECT * FROM player WHERE goals BETWEEN 7 AND 12")) == 3

    def test_in_list(self, toy_db):
        assert len(rows(toy_db, "SELECT * FROM team WHERE name IN ('Brazil', 'Uruguay')")) == 2

    def test_not_in_list(self, toy_db):
        assert rows(toy_db, "SELECT name FROM team WHERE name NOT IN ('Brazil', 'Uruguay')") == [
            ("Germany",)
        ]

    def test_boolean_connectives(self, toy_db):
        sql = "SELECT name FROM player WHERE goals = 7 AND height > 1.8"
        assert rows(toy_db, sql) == [("Caspar",)]
        sql = "SELECT name FROM player WHERE goals = 12 OR height < 1.7"
        assert sorted(rows(toy_db, sql)) == [("Alder",), ("Dario",)]

    def test_not(self, toy_db):
        sql = "SELECT name FROM team WHERE NOT name = 'Brazil'"
        assert sorted(rows(toy_db, sql)) == [("Germany",), ("Uruguay",)]


class TestJoins:
    def test_inner_join(self, toy_db):
        sql = (
            "SELECT T2.name, T1.name FROM player AS T1 "
            "JOIN team AS T2 ON T1.team_id = T2.team_id WHERE T2.name = 'Brazil'"
        )
        assert sorted(rows(toy_db, sql)) == [("Brazil", "Alder"), ("Brazil", "Bruno")]

    def test_join_order_does_not_matter_for_content(self, toy_db):
        a = toy_db.execute(
            "SELECT T1.name FROM player AS T1 JOIN team AS T2 "
            "ON T1.team_id = T2.team_id WHERE T2.name = 'Germany'"
        )
        b = toy_db.execute(
            "SELECT T1.name FROM team AS T2 JOIN player AS T1 "
            "ON T1.team_id = T2.team_id WHERE T2.name = 'Germany'"
        )
        assert a.normalized_multiset() == b.normalized_multiset()

    def test_self_join_with_two_aliases(self, toy_db):
        # Distinct aliases over the same table (the Figure 4 pattern).
        sql = (
            "SELECT T1.name, T2.name FROM team AS T1 JOIN team AS T2 "
            "ON T1.founded = T2.founded WHERE T1.team_id < T2.team_id"
        )
        assert rows(toy_db, sql) == [("Germany", "Uruguay")]

    def test_left_join_preserves_unmatched(self, toy_db):
        toy_db.insert("team", (4, "Italy", 1898))
        sql = (
            "SELECT T1.name, T2.name FROM team AS T1 LEFT JOIN player AS T2 "
            "ON T1.team_id = T2.team_id WHERE T1.name = 'Italy'"
        )
        assert rows(toy_db, sql) == [("Italy", None)]

    def test_cross_join_cardinality(self, toy_db):
        assert len(rows(toy_db, "SELECT * FROM team CROSS JOIN team AS o")) == 9

    def test_join_with_non_equi_residual(self, toy_db):
        sql = (
            "SELECT T1.name FROM player AS T1 JOIN team AS T2 "
            "ON T1.team_id = T2.team_id AND T1.goals > 10"
        )
        assert rows(toy_db, sql) == [("Alder",)]

    def test_nested_loop_fallback_non_equi_join(self, toy_db):
        sql = "SELECT T1.name FROM player AS T1 JOIN team AS T2 ON T1.goals > T2.founded"
        assert rows(toy_db, sql) == []


class TestAggregation:
    def test_count_star(self, toy_db):
        assert rows(toy_db, "SELECT count(*) FROM player") == [(5,)]

    def test_count_column_skips_nulls(self, toy_db):
        assert rows(toy_db, "SELECT count(goals) FROM player") == [(4,)]

    def test_count_distinct(self, toy_db):
        assert rows(toy_db, "SELECT count(DISTINCT goals) FROM player") == [(3,)]

    def test_sum_avg_min_max(self, toy_db):
        assert rows(toy_db, "SELECT sum(goals) FROM player") == [(26,)]
        assert rows(toy_db, "SELECT avg(goals) FROM player") == [(6.5,)]
        assert rows(toy_db, "SELECT min(goals), max(goals) FROM player") == [(0, 12)]

    def test_aggregate_on_empty_input(self, toy_db):
        assert rows(toy_db, "SELECT count(*) FROM player WHERE goals > 99") == [(0,)]
        assert rows(toy_db, "SELECT sum(goals) FROM player WHERE goals > 99") == [(None,)]

    def test_group_by(self, toy_db):
        sql = (
            "SELECT T2.name, count(*) FROM player AS T1 JOIN team AS T2 "
            "ON T1.team_id = T2.team_id GROUP BY T2.name ORDER BY T2.name"
        )
        assert rows(toy_db, sql) == [("Brazil", 2), ("Germany", 2), ("Uruguay", 1)]

    def test_having(self, toy_db):
        sql = (
            "SELECT T2.name FROM player AS T1 JOIN team AS T2 "
            "ON T1.team_id = T2.team_id GROUP BY T2.name HAVING count(*) >= 2 "
            "ORDER BY T2.name"
        )
        assert rows(toy_db, sql) == [("Brazil",), ("Germany",)]

    def test_order_by_aggregate_desc_limit(self, toy_db):
        sql = (
            "SELECT T2.name FROM player AS T1 JOIN team AS T2 "
            "ON T1.team_id = T2.team_id GROUP BY T2.name "
            "ORDER BY sum(T1.goals) DESC LIMIT 1"
        )
        assert rows(toy_db, sql) == [("Brazil",)]

    def test_aggregate_outside_group_context_rejected(self, toy_db):
        with pytest.raises(ExecutionError):
            toy_db.execute("SELECT name FROM player WHERE sum(goals) > 1")


class TestOrderingAndLimits:
    def test_order_by_column(self, toy_db):
        result = rows(toy_db, "SELECT name FROM player ORDER BY name")
        assert result == sorted(result)

    def test_order_by_desc(self, toy_db):
        result = rows(toy_db, "SELECT goals FROM player WHERE goals IS NOT NULL ORDER BY goals DESC")
        assert [r[0] for r in result] == [12, 7, 7, 0]

    def test_order_by_position(self, toy_db):
        result = rows(toy_db, "SELECT name, goals FROM player WHERE goals IS NOT NULL ORDER BY 2 DESC LIMIT 1")
        assert result == [("Alder", 12)]

    def test_order_by_alias(self, toy_db):
        result = rows(toy_db, "SELECT name, goals AS g FROM player WHERE goals IS NOT NULL ORDER BY g DESC LIMIT 1")
        assert result == [("Alder", 12)]

    def test_nulls_sort_first_ascending(self, toy_db):
        result = rows(toy_db, "SELECT goals FROM player ORDER BY goals")
        assert result[0] == (None,)

    def test_limit_offset(self, toy_db):
        result = rows(toy_db, "SELECT name FROM player ORDER BY name LIMIT 2 OFFSET 1")
        assert result == [("Bruno",), ("Caspar",)]

    def test_distinct(self, toy_db):
        result = rows(toy_db, "SELECT DISTINCT goals FROM player WHERE goals = 7")
        assert result == [(7,)]


class TestSetOperations:
    def test_union_dedupes(self, toy_db):
        sql = "SELECT team_id FROM team UNION SELECT team_id FROM player"
        assert len(rows(toy_db, sql)) == 3

    def test_union_all_keeps_duplicates(self, toy_db):
        sql = "SELECT team_id FROM team UNION ALL SELECT team_id FROM player"
        assert len(rows(toy_db, sql)) == 8

    def test_intersect(self, toy_db):
        sql = "SELECT founded FROM team INTERSECT SELECT 1900"
        assert rows(toy_db, sql) == [(1900,)]

    def test_except(self, toy_db):
        sql = "SELECT founded FROM team EXCEPT SELECT 1900"
        assert rows(toy_db, sql) == [(1914,)]

    def test_mismatched_column_count_raises(self, toy_db):
        with pytest.raises(ExecutionError):
            toy_db.execute("SELECT team_id, name FROM team UNION SELECT team_id FROM player")

    def test_order_by_on_compound(self, toy_db):
        sql = (
            "SELECT name FROM team UNION SELECT name FROM player "
            "ORDER BY name DESC LIMIT 2"
        )
        assert rows(toy_db, sql) == [("Uruguay",), ("Germany",)]


class TestSubqueries:
    def test_in_subquery(self, toy_db):
        sql = (
            "SELECT name FROM team WHERE team_id IN "
            "(SELECT team_id FROM player WHERE goals > 10)"
        )
        assert rows(toy_db, sql) == [("Brazil",)]

    def test_scalar_subquery(self, toy_db):
        sql = "SELECT name FROM player WHERE goals = (SELECT max(goals) FROM player)"
        assert rows(toy_db, sql) == [("Alder",)]

    def test_exists_correlated(self, toy_db):
        sql = (
            "SELECT name FROM team AS T WHERE EXISTS "
            "(SELECT * FROM player AS P WHERE P.team_id = T.team_id AND P.goals > 10)"
        )
        assert rows(toy_db, sql) == [("Brazil",)]

    def test_not_exists(self, toy_db):
        toy_db.insert("team", (4, "Italy", 1898))
        sql = (
            "SELECT name FROM team AS T WHERE NOT EXISTS "
            "(SELECT * FROM player AS P WHERE P.team_id = T.team_id)"
        )
        assert rows(toy_db, sql) == [("Italy",)]

    def test_scalar_subquery_multiple_rows_raises(self, toy_db):
        with pytest.raises(ExecutionError):
            toy_db.execute("SELECT name FROM team WHERE founded = (SELECT goals FROM player)")


class TestExpressions:
    def test_arithmetic(self, toy_db):
        assert rows(toy_db, "SELECT 2 + 3 * 4")[0] == (14,)

    def test_string_concat(self, toy_db):
        assert rows(toy_db, "SELECT 'a' || 'b'")[0] == ("ab",)

    def test_division_by_zero_raises(self, toy_db):
        with pytest.raises(ExecutionError):
            toy_db.execute("SELECT 1 / 0")

    def test_case_expression(self, toy_db):
        sql = (
            "SELECT name, CASE WHEN goals > 10 THEN 'star' ELSE 'squad' END "
            "FROM player WHERE goals IS NOT NULL ORDER BY name LIMIT 2"
        )
        assert rows(toy_db, sql) == [("Alder", "star"), ("Bruno", "squad")]

    def test_scalar_functions(self, toy_db):
        assert rows(toy_db, "SELECT upper('ab'), lower('AB'), length('abc')")[0] == (
            "AB",
            "ab",
            3,
        )

    def test_cast(self, toy_db):
        assert rows(toy_db, "SELECT CAST('5' AS INTEGER)")[0] == (5,)


class TestResultComparison:
    def test_normalized_multiset_int_float(self, toy_db):
        a = toy_db.execute("SELECT 2")
        b = toy_db.execute("SELECT 4 / 2")
        assert a.normalized_multiset() == b.normalized_multiset()

    def test_boolean_text_normalization(self):
        schema = Schema("flags")
        schema.create_table("f", [make_column("x", "bool")])
        db = Database(schema)
        db.insert("f", (True,))
        bool_result = db.execute("SELECT x FROM f")
        text_result = db.execute("SELECT 'true'")
        assert bool_result.normalized_multiset() == text_result.normalized_multiset()
