"""Golden-string tests for ``Database.explain``.

The EXPLAIN format is a public, stable surface (operators read it, the
README documents it), so these tests pin it exactly.  The fixture
database (``toy_db``) is deterministic: 3 teams + 5 players inserted in
a fixed order, hence ``stats epoch: 8`` everywhere.
"""

import textwrap

from repro.sqlengine import PhysicalPlan, explain_plan, parse_sql


def expected(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


class TestGoldenPlans:
    def test_pushdown_scan_filter(self, toy_db):
        assert toy_db.explain("SELECT name FROM team WHERE founded > 1900") == expected(
            """
            plan for: SELECT name FROM team WHERE founded > 1900
            select
              scan team  [rows=3 filter: founded > 1900 est=3]
              project: name
            rewrites: pushdown(1)
            stats epoch: 8
            """
        )

    def test_join_reorder_with_hoisted_filter(self, toy_db):
        sql = (
            "SELECT p.name FROM player AS p JOIN team AS t "
            "ON p.team_id = t.team_id WHERE t.founded = 1900"
        )
        assert toy_db.explain(sql) == expected(
            """
            plan for: SELECT p.name FROM player AS p JOIN team AS t ON p.team_id = t.team_id WHERE t.founded = 1900
            select
              scan team AS t  [rows=3 filter: t.founded = 1900 est=2]
              hash join player AS p ON p.team_id = t.team_id  [rows=5 est out=2]
              project: p.name
            rewrites: pushdown(1), join-reorder
            stats epoch: 8
            """
        )

    def test_exists_subquery_pruned(self, toy_db):
        sql = (
            "SELECT name FROM team AS t WHERE EXISTS "
            "(SELECT p.name FROM player AS p WHERE p.team_id = t.team_id) "
            "ORDER BY name LIMIT 2"
        )
        assert toy_db.explain(sql) == expected(
            """
            plan for: SELECT name FROM team AS t WHERE EXISTS (SELECT p.name FROM player AS p WHERE p.team_id = t.team_id) ORDER BY name LIMIT 2
            select
              scan team AS t  [rows=3]
              semi join player AS p ON p.team_id = t.team_id  [rows=5]
              order by: name
              limit 2
              project: name
            rewrites: prune-exists-projection, decorrelate-exists, top-k(2)
            stats epoch: 8
            """
        )

    def test_set_operation(self, toy_db):
        sql = (
            "SELECT name FROM team WHERE founded = 1900 "
            "UNION SELECT name FROM player WHERE goals = 12"
        )
        assert toy_db.explain(sql) == expected(
            """
            plan for: SELECT name FROM team WHERE founded = 1900 UNION SELECT name FROM player WHERE goals = 12
            union
              select
                scan team  [rows=3 filter: founded = 1900 est=2]
                project: name
              select
                scan player  [rows=5 filter: goals = 12 est=2]
                project: name
            rewrites: pushdown(1), pushdown(1)
            stats epoch: 8
            """
        )

    def test_unoptimized_logical_plan(self, toy_db):
        assert toy_db.explain(
            "SELECT name FROM team WHERE founded > 1900", optimize=False
        ) == expected(
            """
            plan for: SELECT name FROM team WHERE founded > 1900
            select
              scan team
              where: founded > 1900
              project: name
            rewrites: none
            stats epoch: 8
            """
        )

    def test_aggregation_clauses_rendered(self, toy_db):
        sql = (
            "SELECT t.name, count(*) FROM team AS t JOIN player AS p "
            "ON p.team_id = t.team_id GROUP BY t.name "
            "HAVING count(*) > 1 ORDER BY t.name DESC"
        )
        rendered = toy_db.explain(sql)
        assert "group by: t.name" in rendered
        assert "having: count(*) > 1" in rendered
        assert "order by: t.name DESC" in rendered


class TestExplainProperties:
    def test_explain_does_not_execute(self, toy_db):
        """EXPLAIN of a query whose execution would raise still renders."""
        rendered = toy_db.explain("SELECT name FROM team WHERE name > 5")
        assert "where: name > 5" in rendered  # unsafe predicate stays put

    def test_explain_plan_on_raw_ast(self, toy_db):
        ast = parse_sql("SELECT 1")
        rendered = explain_plan(
            PhysicalPlan(root=ast, source=ast, stats_epoch=0, rewrites=())
        )
        assert rendered.splitlines()[0] == "select"

    def test_epoch_moves_with_mutation(self, toy_db):
        before = toy_db.explain("SELECT name FROM team")
        toy_db.insert("team", (7, "Ghana", 1957))
        after = toy_db.explain("SELECT name FROM team")
        assert "stats epoch: 8" in before
        assert "stats epoch: 9" in after
