"""Decorrelation semantics: golden plans and 3VL edge cases.

Two layers of pinning:

* golden ``EXPLAIN`` strings, one per rewrite shape (EXISTS / NOT
  EXISTS / IN / NOT IN, correlated and uncorrelated) — the semi/anti
  join rendering is part of the public plan surface;
* targeted NOT-IN-with-NULL cases asserted against stdlib sqlite3 on
  both engine modes and both optimizer settings, because the rewrite's
  hardest obligation is preserving three-valued logic: ``x NOT IN
  (subquery)`` is UNKNOWN — never TRUE — whenever the subquery result
  contains a NULL and no match, and an empty subquery keeps NOT IN
  vacuously TRUE even for a NULL probe.
"""

import itertools
import textwrap

import pytest

from repro.sqlengine import sqlite_dialect, sqlite_result, to_sqlite

ENGINE_CONFIGS = tuple(itertools.product(("row", "vectorized"), (False, True)))


def expected(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


class TestGoldenDecorrelationPlans:
    def test_correlated_not_exists_becomes_anti_join(self, toy_db):
        sql = (
            "SELECT name FROM team AS t WHERE NOT EXISTS "
            "(SELECT 1 FROM player AS p WHERE p.team_id = t.team_id "
            "AND p.goals > 10)"
        )
        assert toy_db.explain(sql) == expected(
            """
            plan for: SELECT name FROM team AS t WHERE NOT EXISTS (SELECT 1 FROM player AS p WHERE p.team_id = t.team_id AND p.goals > 10)
            select
              scan team AS t  [rows=3]
              anti join player AS p ON p.team_id = t.team_id  [rows=5 filter: p.goals > 10]
              project: name
            rewrites: decorrelate-not-exists
            stats epoch: 8
            """
        )

    def test_uncorrelated_in_becomes_semi_join(self, toy_db):
        sql = (
            "SELECT name FROM team AS t WHERE t.team_id IN "
            "(SELECT p.team_id FROM player AS p WHERE p.goals > 5)"
        )
        assert toy_db.explain(sql) == expected(
            """
            plan for: SELECT name FROM team AS t WHERE t.team_id IN (SELECT p.team_id FROM player AS p WHERE p.goals > 5)
            select
              scan team AS t  [rows=3]
              semi join player AS p ON t.team_id IN p.team_id  [rows=5 filter: p.goals > 5]
              project: name
            rewrites: decorrelate-in
            stats epoch: 8
            """
        )

    def test_not_in_becomes_anti_join(self, toy_db):
        sql = (
            "SELECT name FROM player WHERE goals NOT IN "
            "(SELECT goals FROM player AS s WHERE s.team_id = 3)"
        )
        assert toy_db.explain(sql) == expected(
            """
            plan for: SELECT name FROM player WHERE goals NOT IN (SELECT goals FROM player AS s WHERE s.team_id = 3)
            select
              scan player  [rows=5]
              anti join player AS s ON goals IN s.goals  [rows=5 filter: s.team_id = 3]
              project: name
            rewrites: decorrelate-not-in
            stats epoch: 8
            """
        )

    def test_correlated_in_keeps_key_and_probe(self, toy_db):
        sql = (
            "SELECT name FROM team AS t WHERE t.founded IN "
            "(SELECT p.goals FROM player AS p WHERE p.team_id = t.team_id)"
        )
        plan = toy_db.explain(sql)
        assert "semi join player AS p ON p.team_id = t.team_id" in plan
        assert "t.founded IN p.goals" in plan
        assert "decorrelate-in" in plan

    def test_subquery_limit_blocks_decorrelation(self, toy_db):
        """LIMIT changes the subquery's multiset — the rewrite must bail
        and leave the subquery to the per-row evaluator."""
        sql = (
            "SELECT name FROM team WHERE team_id IN "
            "(SELECT team_id FROM player ORDER BY team_id LIMIT 3)"
        )
        plan = toy_db.explain(sql)
        assert "decorrelate" not in plan
        assert "in subquery:" in plan

    def test_real_typed_probe_blocks_decorrelation(self, toy_db):
        """REAL is outside the exact hash classes (float normalization
        rounds), so a height probe must not be hashed."""
        sql = (
            "SELECT name FROM player WHERE height IN "
            "(SELECT height FROM player AS s WHERE s.goals = 7)"
        )
        assert "decorrelate" not in toy_db.explain(sql)


class TestNotInNullSemantics:
    """The rewrite must preserve 3VL verdicts bit-for-bit; sqlite3 is
    the external referee on every engine configuration."""

    CASES = (
        # Emilio's goals are NULL: the subquery result carries a NULL,
        # so NOT IN can never be TRUE — zero rows, not "all but team 3"
        "SELECT name FROM player WHERE goals NOT IN "
        "(SELECT goals FROM player AS s WHERE s.team_id = 3)",
        # NULL-free subquery: ordinary anti-join semantics
        "SELECT name FROM player WHERE goals NOT IN "
        "(SELECT goals FROM player AS s WHERE s.team_id = 3 "
        "AND s.goals IS NOT NULL) ORDER BY player_id",
        # NULL probe against a non-empty subquery: UNKNOWN, row dropped
        "SELECT name FROM player WHERE goals IN "
        "(SELECT goals FROM player AS s WHERE s.team_id = 1) "
        "ORDER BY player_id",
        # empty subquery: NOT IN is vacuously TRUE for every probe,
        # including the NULL one
        "SELECT name FROM player WHERE goals NOT IN "
        "(SELECT goals FROM player AS s WHERE s.team_id = 99) "
        "ORDER BY player_id",
        # correlated NOT EXISTS with a NULL-valued local filter column
        "SELECT name FROM team AS t WHERE NOT EXISTS "
        "(SELECT 1 FROM player AS p WHERE p.team_id = t.team_id "
        "AND p.goals > 10) ORDER BY team_id",
    )

    @pytest.mark.parametrize("sql", CASES)
    def test_matches_sqlite_on_every_config(self, toy_db, sql):
        conn = to_sqlite(toy_db)
        reference = sqlite_result(conn, sqlite_dialect(sql)).rows
        for mode, optimize in ENGINE_CONFIGS:
            got = toy_db.execute(sql, engine_mode=mode, optimize=optimize).rows
            assert got == reference, (mode, optimize)

    def test_null_bearing_not_in_returns_zero_rows(self, toy_db):
        result = toy_db.execute(
            "SELECT name FROM player WHERE goals NOT IN "
            "(SELECT goals FROM player AS s WHERE s.team_id = 3)"
        )
        assert result.rows == []

    def test_group_cache_invalidates_on_mutation(self, toy_db):
        """The memoized semi-join probe table is version-stamped: a new
        inner row must change the verdicts on the next execution."""
        sql = (
            "SELECT name FROM team AS t WHERE EXISTS "
            "(SELECT 1 FROM player AS p WHERE p.team_id = t.team_id "
            "AND p.goals > 20) ORDER BY team_id"
        )
        assert toy_db.execute(sql, optimize=True).rows == []
        toy_db.insert("player", (6, 2, "Falko", 30, 1.77))
        assert toy_db.execute(sql, optimize=True).rows == [("Germany",)]
