"""Cost-based optimizer: statistics, rewrites, planning, cache wiring.

Complemented by the golden-string EXPLAIN tests (``test_explain.py``)
and the full-benchmark differential sweep
(``test_optimizer_differential.py``).
"""

import pytest

from repro.sqlengine import (
    Database,
    PhysicalPlan,
    PlannedSelect,
    Schema,
    TypeMismatchError,
    make_column,
    optimize_query,
    parse_sql,
)
from repro.sqlengine.ast_nodes import Literal
from repro.sqlengine.optimizer.rewrites import fold_expression


def plan_for(db: Database, sql: str) -> PhysicalPlan:
    return optimize_query(parse_sql(sql), db.schema, db.stats)


def agree(db: Database, sql: str):
    optimized = db.execute(sql, optimize=True)
    plain = db.execute(sql, optimize=False)
    assert optimized.columns == plain.columns, sql
    assert sorted(map(repr, optimized.rows)) == sorted(map(repr, plain.rows)), sql
    return optimized


class TestStats:
    def test_table_profile(self, toy_db):
        stats = toy_db.stats.table_stats("player")
        assert stats.row_count == 5
        goals = stats.column("goals")
        assert goals.ndv == 3  # 12, 7, 0 (NULL excluded)
        assert goals.null_fraction == pytest.approx(0.2)
        assert goals.minimum == 0
        assert goals.maximum == 12

    def test_profile_cached_until_mutation(self, toy_db):
        toy_db.stats.table_stats("team")
        builds = toy_db.stats.builds
        toy_db.stats.table_stats("team")
        assert toy_db.stats.builds == builds  # cached
        toy_db.insert("team", (4, "Chile", 1910))
        refreshed = toy_db.stats.table_stats("team")
        assert toy_db.stats.builds == builds + 1
        assert refreshed.row_count == 4

    def test_epoch_tracks_every_mutation(self, toy_db):
        before = toy_db.data_epoch()
        toy_db.insert("team", (5, "Peru", 1922))
        assert toy_db.data_epoch() == before + 1

    def test_empty_table_profile(self):
        schema = Schema("empty")
        schema.create_table("t", [make_column("x", "int", primary_key=True)])
        db = Database(schema)
        stats = db.stats.table_stats("t")
        assert stats.row_count == 0
        assert stats.column("x").ndv == 0
        assert stats.column("x").null_fraction == 0.0


class TestConstantFolding:
    def test_tautology_drops_where(self, toy_db):
        plan = plan_for(toy_db, "SELECT name FROM team WHERE 1 = 1")
        assert plan.root.where is None
        assert "drop-true-where" in plan.rewrites
        agree(toy_db, "SELECT name FROM team WHERE 1 = 1")

    def test_contradiction_folds_to_false(self, toy_db):
        plan = plan_for(toy_db, "SELECT name FROM team WHERE 1 = 2")
        assert plan.root.where == Literal(False)
        result = agree(toy_db, "SELECT name FROM team WHERE 1 = 2")
        assert result.rows == []

    def test_arithmetic_folds(self, toy_db):
        plan = plan_for(toy_db, "SELECT name FROM team WHERE founded = 1900 + 14")
        pushed = plan.root.scan_filters["team"]
        assert Literal(1914) in list(pushed.walk())
        agree(toy_db, "SELECT name FROM team WHERE founded = 1900 + 14")

    def test_aggregate_semantics_survive_false_where(self, toy_db):
        result = agree(toy_db, "SELECT count(*) FROM player WHERE 1 = 2")
        assert result.rows == [(0,)]

    def test_short_circuit_error_preserved(self, toy_db):
        """``name > 5`` raises; a later constant FALSE must not hide it."""
        sql = "SELECT name FROM team WHERE name > 5 AND 1 = 2"
        with pytest.raises(TypeMismatchError):
            toy_db.execute(sql, optimize=False)
        with pytest.raises(TypeMismatchError):
            toy_db.execute(sql, optimize=True)

    def test_leading_false_short_circuits_past_error(self, toy_db):
        """The executor never evaluates terms after a FALSE — folding
        the whole conjunction away matches that exactly."""
        sql = "SELECT name FROM team WHERE 1 = 2 AND name > 5"
        assert toy_db.execute(sql, optimize=False).rows == []
        assert toy_db.execute(sql, optimize=True).rows == []

    def test_division_by_zero_left_for_runtime(self, toy_db):
        from repro.sqlengine import ExecutionError

        sql = "SELECT name FROM team WHERE 1 / 0 = 1"
        with pytest.raises(ExecutionError):
            toy_db.execute(sql, optimize=False)
        with pytest.raises(ExecutionError):
            toy_db.execute(sql, optimize=True)

    def test_null_literal_three_valued(self, toy_db):
        result = agree(toy_db, "SELECT name FROM team WHERE NULL AND founded > 0")
        assert result.rows == []

    def test_or_true_absorbs(self, toy_db):
        plan = plan_for(toy_db, "SELECT name FROM team WHERE 1 = 1 OR founded > 1900")
        assert plan.root.where is None  # folded to TRUE then dropped

    def test_fold_preserves_untouched_identity(self, toy_db):
        query = parse_sql("SELECT 1 FROM team WHERE founded > 1900 AND name = 'x'")
        assert fold_expression(query.where) is query.where

    def test_in_list_folds(self, toy_db):
        plan = plan_for(toy_db, "SELECT name FROM team WHERE 3 IN (1, 2, 3)")
        assert plan.root.where is None
        agree(toy_db, "SELECT name FROM team WHERE 3 IN (1, 2, 3)")


class TestPushdown:
    def test_where_becomes_scan_filter(self, toy_db):
        sql = "SELECT name FROM team WHERE founded > 1900"
        plan = plan_for(toy_db, sql)
        assert isinstance(plan.root, PlannedSelect)
        assert "team" in plan.root.scan_filters
        assert plan.root.where is None
        assert "pushdown(1)" in plan.rewrites
        agree(toy_db, sql)

    def test_join_predicate_moves_into_on(self, toy_db):
        sql = (
            "SELECT t.name FROM team AS t JOIN player AS p "
            "ON p.team_id = t.team_id WHERE p.goals > 5 AND t.founded > 1900"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.where is None
        assert "pushdown(2)" in plan.rewrites
        agree(toy_db, sql)

    def test_left_join_inner_side_not_pushed(self, toy_db):
        sql = (
            "SELECT t.name FROM team AS t LEFT JOIN player AS p "
            "ON p.team_id = t.team_id WHERE p.goals > 5"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.where is not None  # predicate stays in WHERE
        agree(toy_db, sql)

    def test_left_join_outer_side_pushed(self, toy_db):
        sql = (
            "SELECT t.name FROM team AS t LEFT JOIN player AS p "
            "ON p.team_id = t.team_id WHERE t.founded > 1900"
        )
        plan = plan_for(toy_db, sql)
        assert "t" in plan.root.scan_filters
        agree(toy_db, sql)

    def test_correlated_conjunct_stays(self, toy_db):
        """A subquery-bearing conjunct is never pushed."""
        sql = (
            "SELECT name FROM team WHERE founded > 1900 "
            "AND team_id = (SELECT min(team_id) FROM player)"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.where is not None
        assert "team" in plan.root.scan_filters  # the plain half still moves
        agree(toy_db, sql)

    def test_error_prone_predicate_never_moves(self, toy_db):
        """``name > 5`` can raise, so it must stay in WHERE: pushing it
        to the scan would surface the error even when the join leaves
        no frames for WHERE to evaluate."""
        sql = (
            "SELECT t.name FROM team AS t JOIN player AS p "
            "ON p.team_id = t.team_id AND p.goals > 1000 WHERE t.name > 5"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.scan_filters == {}
        assert plan.root.where is not None
        # zero join matches -> WHERE never evaluated -> no error, both modes
        assert toy_db.execute(sql, optimize=False).rows == []
        assert toy_db.execute(sql, optimize=True).rows == []

    def test_type_safe_text_predicate_still_pushed(self, toy_db):
        sql = "SELECT name FROM team WHERE name LIKE 'B%' AND founded > 1900"
        plan = plan_for(toy_db, sql)
        assert "team" in plan.root.scan_filters
        assert plan.root.where is None
        result = agree(toy_db, sql)
        assert result.rows == [("Brazil",)]

    def test_unresolvable_query_planned_as_identity(self, toy_db):
        plan = plan_for(toy_db, "SELECT whatever FROM missing_table WHERE x = 1")
        assert not isinstance(plan.root, PlannedSelect)
        from repro.sqlengine import CatalogError

        with pytest.raises(CatalogError):
            toy_db.execute("SELECT whatever FROM missing_table WHERE x = 1")


class TestJoinReorder:
    def test_smaller_filtered_table_becomes_base(self, toy_db):
        sql = (
            "SELECT p.name FROM player AS p JOIN team AS t "
            "ON p.team_id = t.team_id WHERE t.founded = 1900"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.from_table.binding == "t"
        assert "join-reorder" in plan.rewrites
        agree(toy_db, sql)

    def test_displaced_scan_filter_travels_with_its_table(self, toy_db):
        """Regression: reordering away the FROM table must keep its
        pushed predicate (as part of the join condition)."""
        sql = (
            "SELECT p.name FROM player AS p JOIN team AS t "
            "ON p.team_id = t.team_id WHERE p.goals >= 12 AND t.founded >= 1800"
        )
        plan = plan_for(toy_db, sql)
        result = agree(toy_db, sql)
        assert result.rows == [("Alder",)]
        # whichever table is scanned, both predicates must appear somewhere
        rendered = toy_db.explain(sql)
        assert "goals >= 12" in rendered
        assert "founded >= 1800" in rendered

    def test_limit_blocks_reorder(self, toy_db):
        sql = (
            "SELECT p.name FROM player AS p JOIN team AS t "
            "ON p.team_id = t.team_id LIMIT 2"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.from_table.binding == "p"
        assert "join-reorder" not in plan.rewrites
        agree(toy_db, sql)

    def test_bare_star_blocks_reorder(self, toy_db):
        sql = (
            "SELECT * FROM player AS p JOIN team AS t ON p.team_id = t.team_id"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.from_table.binding == "p"
        result = agree(toy_db, sql)
        assert result.columns[:1] == ["player_id"]  # column order unchanged

    def test_left_join_never_reordered(self, toy_db):
        sql = (
            "SELECT t.name FROM team AS t LEFT JOIN player AS p "
            "ON p.team_id = t.team_id AND p.goals > 100"
        )
        plan = plan_for(toy_db, sql)
        assert plan.root.from_table.binding == "t"
        result = agree(toy_db, sql)
        assert len(result.rows) == 3  # every team NULL-extended

    def test_self_join_aliases_stay_distinct(self, toy_db):
        sql = (
            "SELECT a.name, b.name FROM team AS a JOIN team AS b "
            "ON a.founded = b.founded WHERE a.team_id < b.team_id"
        )
        result = agree(toy_db, sql)
        assert result.rows == [("Germany", "Uruguay")]


class TestSubquerySimplification:
    def test_exists_projection_pruned(self, toy_db):
        sql = (
            "SELECT name FROM team AS t WHERE EXISTS "
            "(SELECT p.name, p.goals FROM player AS p WHERE p.team_id = t.team_id)"
        )
        plan = plan_for(toy_db, sql)
        assert "prune-exists-projection" in plan.rewrites
        agree(toy_db, sql)

    def test_exists_projection_kept_when_order_by_survives(self, toy_db):
        """Regression: a retained ORDER BY may reference projections
        positionally or by alias — pruning to SELECT 1 would raise
        errors the unoptimized plan never hits."""
        sql = (
            "SELECT name FROM team AS t WHERE EXISTS "
            "(SELECT p.name, p.goals FROM player AS p "
            "WHERE p.team_id = t.team_id ORDER BY 2, t.founded)"
        )
        plan = plan_for(toy_db, sql)
        assert "prune-exists-projection" not in plan.rewrites
        agree(toy_db, sql)

    def test_exists_projection_pruned_after_order_by_drop(self, toy_db):
        """When the ORDER BY itself is droppable, pruning proceeds."""
        sql = (
            "SELECT name FROM team AS t WHERE EXISTS "
            "(SELECT p.name, p.goals FROM player AS p "
            "WHERE p.team_id = t.team_id ORDER BY 2)"
        )
        plan = plan_for(toy_db, sql)
        assert "drop-subquery-order-by" in plan.rewrites
        assert "prune-exists-projection" in plan.rewrites
        agree(toy_db, sql)

    def test_exists_aggregate_projection_kept(self, toy_db):
        """An aggregate subquery always yields one row: EXISTS is TRUE
        even over an empty group — pruning would flip it."""
        sql = (
            "SELECT name FROM team WHERE EXISTS "
            "(SELECT max(goals) FROM player WHERE 1 = 2)"
        )
        plan = plan_for(toy_db, sql)
        assert "prune-exists-projection" not in plan.rewrites
        result = agree(toy_db, sql)
        assert len(result.rows) == 3

    def test_in_subquery_order_by_dropped(self, toy_db):
        sql = (
            "SELECT name FROM team WHERE team_id IN "
            "(SELECT team_id FROM player ORDER BY goals)"
        )
        plan = plan_for(toy_db, sql)
        assert "drop-subquery-order-by" in plan.rewrites
        agree(toy_db, sql)

    def test_in_subquery_order_by_kept_under_limit(self, toy_db):
        sql = (
            "SELECT name FROM team WHERE team_id IN "
            "(SELECT team_id FROM player WHERE goals IS NOT NULL "
            "ORDER BY goals DESC LIMIT 1)"
        )
        plan = plan_for(toy_db, sql)
        assert "drop-subquery-order-by" not in plan.rewrites
        result = agree(toy_db, sql)
        assert result.rows == [("Brazil",)]

    def test_in_subquery_distinct_dropped(self, toy_db):
        sql = (
            "SELECT name FROM team WHERE team_id IN "
            "(SELECT DISTINCT team_id FROM player)"
        )
        plan = plan_for(toy_db, sql)
        assert "drop-redundant-distinct" in plan.rewrites
        agree(toy_db, sql)

    def test_pk_distinct_dropped(self, toy_db):
        sql = "SELECT DISTINCT team_id, name FROM team"
        plan = plan_for(toy_db, sql)
        assert "drop-pk-distinct" in plan.rewrites
        assert plan.root.distinct is False
        agree(toy_db, sql)

    def test_non_pk_distinct_kept(self, toy_db):
        sql = "SELECT DISTINCT founded FROM team"
        plan = plan_for(toy_db, sql)
        assert "drop-pk-distinct" not in plan.rewrites
        result = agree(toy_db, sql)
        assert sorted(row[0] for row in result.rows) == [1900, 1914]


class TestDatabaseWiring:
    def test_plan_cache_stores_optimized_plans(self, toy_db):
        sql = "SELECT name FROM team WHERE founded > 1900"
        toy_db.execute(sql)
        entry = toy_db.plan_cache.get_plan(sql)
        assert isinstance(entry, PhysicalPlan)
        before = toy_db.optimizer_stats()["optimizations"]
        toy_db.execute(sql)  # cache hit: no re-plan
        assert toy_db.optimizer_stats()["optimizations"] == before

    def test_mutation_triggers_replan_on_next_hit(self, toy_db):
        sql = "SELECT name FROM team WHERE founded > 1905"
        first = toy_db.execute(sql)
        assert len(first.rows) == 1
        toy_db.insert("team", (9, "Chile", 1910))
        second = toy_db.execute(sql)
        assert len(second.rows) == 2  # fresh rows visible through the cache
        assert toy_db.optimizer_stats()["reoptimizations"] >= 1

    def test_optimize_toggle_shares_parsed_ast(self, toy_db):
        sql = "SELECT name FROM team WHERE founded > 1900"
        toy_db.execute(sql, optimize=True)
        entry = toy_db.plan_cache.get_plan(sql)
        plain = toy_db._plan_for(sql, cached=True, optimize=False)
        assert plain is entry.source

    def test_database_level_escape_hatch(self):
        schema = Schema("noopt")
        schema.create_table("t", [make_column("id", "int", primary_key=True)])
        db = Database(schema, optimize=False)
        db.insert("t", (1,))
        assert db.execute("SELECT id FROM t WHERE 1 = 1").rows == [(1,)]
        stats = db.optimizer_stats()
        assert stats["enabled"] is False
        assert stats["optimizations"] == 0

    def test_uncached_optimized_execution(self, toy_db):
        sql = "SELECT count(*) FROM player WHERE goals >= 7"
        cached = toy_db.execute(sql)
        uncached = toy_db.execute(sql, cached=False)
        assert cached.rows == uncached.rows == [(3,)]

    def test_execute_many_forwards_optimize(self, toy_db):
        results = toy_db.execute_many(
            ["SELECT count(*) FROM team", "SELECT count(*) FROM player"],
            optimize=False,
        )
        assert [r.rows[0][0] for r in results] == [3, 5]
