"""EXPLAIN ANALYZE goldens: per-operator rows and (fake-clock) times.

The rendering is an interface — operators, row counts, subquery
indentation and the timing column are all pinned, on both executors.
A fake clock that advances 1ms per read makes every ``time=`` field
exact: each operator reads the clock twice (start, stop), so a leaf
operator shows 1.000ms and a parent accumulates its children's reads.
"""

from __future__ import annotations

import pytest


class FakeClock:
    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


AGGREGATE_SQL = (
    "SELECT t.name, COUNT(*) AS players FROM player AS p "
    "JOIN team AS t ON p.team_id = t.team_id "
    "WHERE p.goals > 1 GROUP BY t.name ORDER BY t.name"
)

AGGREGATE_PLAN = """\
plan for: SELECT t.name, COUNT(*) AS players FROM player AS p JOIN team AS t ON p.team_id = t.team_id WHERE p.goals > 1 GROUP BY t.name ORDER BY t.name
select
  scan team AS t  [rows=3]
  hash join player AS p ON p.team_id = t.team_id AND p.goals > 1  [rows=5 est out=5]
  group by: t.name
  order by: t.name
  project: t.name, count(*) AS players
rewrites: pushdown(1), join-reorder
stats epoch: 8
"""

VECTORIZED_ANALYZE = AGGREGATE_PLAN + """\
-- analyze (engine=auto) --
scan team [vectorized]         rows=3        time=1.000ms
hash join player [vectorized]  rows=3        time=1.000ms
aggregate [vectorized]         rows=2        time=1.000ms
finalize [vectorized]          rows=2        time=1.000ms
total                          rows=2        time=9.000ms"""

ROW_ANALYZE = AGGREGATE_PLAN + """\
-- analyze (engine=row) --
scan team [row]         rows=3        time=1.000ms
hash join player [row]  rows=3        time=1.000ms
aggregate [row]         rows=2        time=1.000ms
finalize [row]          rows=2        time=1.000ms
total                   rows=2        time=9.000ms"""

SUBQUERY_ANALYZE = """\
plan for: SELECT name FROM player WHERE goals > (SELECT AVG(goals) FROM player)
select
  scan player  [rows=5]
  where: goals > (SELECT avg(goals) FROM player)
  project: name
  scalar subquery:
    select
      scan player  [rows=5]
      project: avg(goals)
rewrites: none
stats epoch: 8
-- analyze (engine=row) --
scan player [row]    rows=5        time=1.000ms
  scan player [row]  rows=5        time=1.000ms
  aggregate [row]    rows=1        time=1.000ms
  finalize [row]     rows=1        time=1.000ms
filter [row]         rows=3        time=7.000ms
project [row]        rows=3        time=1.000ms
finalize [row]       rows=3        time=1.000ms
total                rows=3        time=15.000ms"""


class TestExplainAnalyzeGolden:
    def test_vectorized_engine(self, toy_db):
        rendered = toy_db.explain_analyze(AGGREGATE_SQL, clock=FakeClock())
        assert rendered == VECTORIZED_ANALYZE

    def test_row_engine(self, toy_db):
        rendered = toy_db.explain_analyze(
            AGGREGATE_SQL, engine_mode="row", clock=FakeClock()
        )
        assert rendered == ROW_ANALYZE

    def test_subquery_operators_indent(self, toy_db):
        """A correlated-free scalar subquery's operators show one level
        deeper than the enclosing filter that triggered them."""
        rendered = toy_db.explain_analyze(
            "SELECT name FROM player WHERE goals > (SELECT AVG(goals) FROM player)",
            engine_mode="row",
            clock=FakeClock(),
        )
        assert rendered == SUBQUERY_ANALYZE


class TestProfileExecute:
    def test_results_match_plain_execute(self, toy_db):
        expected = toy_db.execute(AGGREGATE_SQL)
        result, profile, total = toy_db.profile_execute(AGGREGATE_SQL)
        assert result.rows == expected.rows
        assert result.columns == expected.columns
        assert [op.op for op in profile.ops] == [
            "scan team", "hash join player", "aggregate", "finalize",
        ]
        assert all(op.engine == "vectorized" for op in profile.ops)
        assert total >= max(op.seconds for op in profile.ops) > 0.0

    def test_profile_uninstalled_afterwards(self, toy_db):
        toy_db.profile_execute("SELECT name FROM team")
        assert toy_db._executor._prof() is None
        assert toy_db._vectorized._prof() is None
        # a later plain execute records nothing anywhere
        toy_db.execute("SELECT name FROM team")

    def test_row_fallback_attributed_to_row_engine(self, toy_db):
        """A node the vectorized gate rejects shows row-engine
        operators inside an engine_mode=auto analysis."""
        result, profile, _total = toy_db.profile_execute(
            "SELECT name FROM player WHERE goals > (SELECT AVG(goals) FROM player)"
        )
        assert {op.engine for op in profile.ops} == {"row"}
        assert len(result.rows) == 3

    def test_as_dicts_shape(self, toy_db):
        _result, profile, _total = toy_db.profile_execute("SELECT name FROM team")
        entry = profile.as_dicts()[0]
        assert set(entry) == {"depth", "engine", "op", "rows", "time_ms"}


class TestOperatorLabels:
    def test_left_join_label(self, toy_db):
        _result, profile, _ = toy_db.profile_execute(
            "SELECT t.name, p.name FROM team AS t "
            "LEFT JOIN player AS p ON p.team_id = t.team_id"
        )
        assert any(op.op == "left join player" for op in profile.ops)

    def test_loop_join_label_row_engine(self, toy_db):
        _result, profile, _ = toy_db.profile_execute(
            "SELECT t.name, p.name FROM team AS t "
            "JOIN player AS p ON p.team_id < t.team_id",
            engine_mode="row",
        )
        assert any(op.op == "loop join player" for op in profile.ops)

    def test_cross_join_label_row_engine(self, toy_db):
        _result, profile, _ = toy_db.profile_execute(
            "SELECT COUNT(*) FROM team CROSS JOIN player",
            engine_mode="row",
        )
        assert any(op.op.startswith("cross join") for op in profile.ops)


class TestExplainAnalyzeMatchesExplain:
    def test_prefix_is_plain_explain(self, toy_db):
        rendered = toy_db.explain_analyze(AGGREGATE_SQL, clock=FakeClock())
        assert rendered.startswith(toy_db.explain(AGGREGATE_SQL))

    def test_bad_sql_raises_like_explain(self, toy_db):
        from repro.sqlengine import EngineError

        with pytest.raises(EngineError):
            toy_db.explain_analyze("SELECT FROM WHERE")
