"""Unit tests for the SQL parser (AST shape and error behaviour)."""

import pytest

from repro.sqlengine import (
    BinaryOp,
    ColumnRef,
    Conjunction,
    FunctionCall,
    InOp,
    JoinKind,
    LikeOp,
    Literal,
    ParseError,
    ScalarSubquery,
    SelectQuery,
    SetOperation,
    SetOperator,
    Star,
    parse_sql,
)


class TestProjections:
    def test_star(self):
        query = parse_sql("SELECT * FROM t")
        assert isinstance(query.projections[0].expr, Star)

    def test_qualified_star(self):
        query = parse_sql("SELECT t.* FROM t")
        assert query.projections[0].expr == Star(table="t")

    def test_multiple_items_with_aliases(self):
        query = parse_sql("SELECT a AS x, b y, c FROM t")
        assert [item.alias for item in query.projections] == ["x", "y", None]

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct is True

    def test_count_star(self):
        query = parse_sql("SELECT count(*) FROM t")
        call = query.projections[0].expr
        assert isinstance(call, FunctionCall)
        assert call.name == "count"
        assert isinstance(call.args[0], Star)

    def test_count_distinct(self):
        call = parse_sql("SELECT count(DISTINCT a) FROM t").projections[0].expr
        assert call.distinct is True


class TestFromAndJoins:
    def test_table_alias_forms(self):
        query = parse_sql("SELECT * FROM match AS T1 JOIN team T2 ON T1.a = T2.b")
        assert query.from_table.alias == "T1"
        assert query.joins[0].table.alias == "T2"

    def test_join_kinds(self):
        query = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON a.x = c.x "
            "INNER JOIN d ON a.x = d.x CROSS JOIN e"
        )
        assert [join.kind for join in query.joins] == [
            JoinKind.INNER,
            JoinKind.LEFT,
            JoinKind.INNER,
            JoinKind.CROSS,
        ]

    def test_left_outer_join(self):
        query = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert query.joins[0].kind is JoinKind.LEFT

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM a JOIN b")


class TestWhere:
    def test_comparison(self):
        query = parse_sql("SELECT a FROM t WHERE a >= 3")
        assert isinstance(query.where, BinaryOp)
        assert query.where.op == ">="

    def test_and_or_precedence(self):
        query = parse_sql("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(query.where, Conjunction)
        assert query.where.op == "OR"
        assert isinstance(query.where.terms[1], Conjunction)
        assert query.where.terms[1].op == "AND"

    def test_flat_and_chain(self):
        query = parse_sql("SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3")
        assert query.where.op == "AND"
        assert len(query.where.terms) == 3

    def test_ilike(self):
        query = parse_sql("SELECT a FROM t WHERE name ILIKE '%Brazil%'")
        assert isinstance(query.where, LikeOp)
        assert query.where.case_insensitive is True

    def test_not_like(self):
        query = parse_sql("SELECT a FROM t WHERE name NOT LIKE 'x%'")
        assert query.where.negated is True

    def test_between(self):
        query = parse_sql("SELECT a FROM t WHERE year BETWEEN 1930 AND 2022")
        assert query.where.low == Literal(1930)
        assert query.where.high == Literal(2022)

    def test_in_list(self):
        query = parse_sql("SELECT a FROM t WHERE year IN (2010, 2014)")
        assert isinstance(query.where, InOp)
        assert len(query.where.options) == 2

    def test_in_subquery(self):
        query = parse_sql("SELECT a FROM t WHERE x IN (SELECT y FROM u)")
        assert isinstance(query.where.subquery, SelectQuery)

    def test_is_null_and_is_not_null(self):
        assert parse_sql("SELECT a FROM t WHERE a IS NULL").where.negated is False
        assert parse_sql("SELECT a FROM t WHERE a IS NOT NULL").where.negated is True

    def test_scalar_subquery(self):
        query = parse_sql("SELECT a FROM t WHERE x = (SELECT max(y) FROM u)")
        assert isinstance(query.where.right, ScalarSubquery)


class TestClauses:
    def test_group_by_having(self):
        query = parse_sql(
            "SELECT team, count(*) FROM t GROUP BY team HAVING count(*) > 2"
        )
        assert query.group_by == [ColumnRef("team")]
        assert query.having is not None

    def test_order_by_directions(self):
        query = parse_sql("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert [item.descending for item in query.order_by] == [True, False]

    def test_limit_offset(self):
        query = parse_sql("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert query.limit == 5
        assert query.offset == 2

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t LIMIT 1.5")


class TestSetOperations:
    def test_union(self):
        query = parse_sql("SELECT a FROM t UNION SELECT a FROM u")
        assert isinstance(query, SetOperation)
        assert query.operator is SetOperator.UNION

    def test_union_all_vs_union(self):
        assert (
            parse_sql("SELECT a FROM t UNION ALL SELECT a FROM u").operator
            is SetOperator.UNION_ALL
        )

    def test_intersect_except(self):
        assert (
            parse_sql("SELECT a FROM t INTERSECT SELECT a FROM u").operator
            is SetOperator.INTERSECT
        )
        assert (
            parse_sql("SELECT a FROM t EXCEPT SELECT a FROM u").operator
            is SetOperator.EXCEPT
        )

    def test_chained_unions_left_associative(self):
        query = parse_sql("SELECT a FROM t UNION SELECT a FROM u UNION SELECT a FROM v")
        assert isinstance(query.left, SetOperation)

    def test_order_by_binds_to_compound(self):
        query = parse_sql("SELECT a FROM t UNION SELECT a FROM u ORDER BY 1 LIMIT 3")
        assert isinstance(query, SetOperation)
        assert query.limit == 3
        assert len(query.order_by) == 1


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t extra stray tokens ,")

    def test_missing_from_table(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM WHERE x = 1")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_sql("")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t WHERE (x = 1")


class TestPaperQueries:
    """The exact SQL shapes from Figure 4 and Listing 1 must parse."""

    def test_figure4_v1_with_union(self):
        sql = (
            "SELECT T2.teamname, T3.teamname, T1.home_team_goals, T1.away_team_goals "
            "FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id "
            "WHERE T2.teamname ILIKE '%Germany%' AND T3.teamname ILIKE '%Brazil%' "
            "AND T1.year = 2014 "
            "UNION "
            "SELECT T2.teamname, T3.teamname, T1.home_team_goals, T1.away_team_goals "
            "FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id "
            "WHERE T2.teamname ILIKE '%Brazil%' AND T3.teamname ILIKE '%Germany%' "
            "AND T1.year = 2014;"
        )
        query = parse_sql(sql)
        assert isinstance(query, SetOperation)

    def test_listing1_v3_boolean_filter(self):
        sql = (
            "SELECT count(*) FROM world_cup_result AS T1 "
            "JOIN national_team AS T2 ON T1.team_id = T2.team_id "
            "WHERE T2.teamname = 'England' and T1.winner = 'True'"
        )
        query = parse_sql(sql)
        assert len(query.joins) == 1
