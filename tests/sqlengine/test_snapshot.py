"""Storage/Database snapshots: consistency, atomicity, epoch pinning."""

import threading

import pytest

from repro.domains import generate_growth_rows, load_domain
from repro.sqlengine import ConstraintError


@pytest.fixture()
def hospital():
    return load_domain("hospital", seed=2022)


def _growth(instance, entity, start, count):
    return generate_growth_rows(instance.spec, 2022, entity, start, count)


def test_snapshot_pins_epoch_and_rows(hospital):
    database = hospital["base"]
    base_epoch = database.data_epoch()
    before = database.execute("SELECT count(*) FROM appointment").rows
    snapshot = database.snapshot()

    start = hospital.spec.entity("appointment").rows + 1
    database.insert_many("appointment", _growth(hospital, "appointment", start, 6))

    assert database.data_epoch() == base_epoch + 6
    assert snapshot.data_epoch() == base_epoch
    assert snapshot.execute("SELECT count(*) FROM appointment").rows == before
    live = database.execute("SELECT count(*) FROM appointment").rows
    assert live[0][0] == before[0][0] + 6


def test_snapshot_queries_match_parent_at_capture(hospital):
    database = hospital["base"]
    sql = "SELECT count(*), min(doctor_id), max(doctor_id) FROM doctor"
    expected = database.execute(sql).rows
    snapshot = database.snapshot()
    assert snapshot.execute(sql).rows == expected
    # engine knobs carried over
    assert snapshot.engine_mode == database.engine_mode
    assert snapshot.schema is database.schema


def test_snapshot_is_independently_insertable(hospital):
    """PK bookkeeping is copied: duplicates still rejected, fresh rows fine."""
    database = hospital["base"]
    snapshot = database.snapshot()
    existing = snapshot.execute(
        "SELECT appointment_id FROM appointment LIMIT 1"
    ).rows[0][0]
    template = _growth(
        hospital, "appointment", hospital.spec.entity("appointment").rows + 1, 1
    )[0]
    duplicate = (existing,) + tuple(template[1:])
    with pytest.raises(ConstraintError):
        snapshot.insert("appointment", duplicate)
    snapshot.insert("appointment", template)  # fresh PK: accepted
    # and the parent never saw either write
    assert database.data_epoch() != snapshot.data_epoch()


def test_insert_many_is_atomic_under_concurrent_snapshots(hospital):
    """No snapshot ever observes a torn (mid-batch) epoch."""
    database = hospital["base"]
    base_epoch = database.data_epoch()
    batch = 7
    batches = 40
    start = hospital.spec.entity("appointment").rows + 1
    stop = threading.Event()
    observed = []

    def snapshotter():
        while not stop.is_set():
            observed.append(database.snapshot().data_epoch())

    threads = [threading.Thread(target=snapshotter) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        for index in range(batches):
            rows = _growth(hospital, "appointment", start + index * batch, batch)
            database.insert_many("appointment", rows)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert observed, "snapshot threads never ran"
    for epoch in observed:
        delta = epoch - base_epoch
        assert delta >= 0
        assert delta % batch == 0, f"torn epoch: delta={delta}"
    assert database.data_epoch() == base_epoch + batch * batches


def test_growth_rows_deterministic_and_fk_closed(hospital):
    start = hospital.spec.entity("appointment").rows + 1
    first = _growth(hospital, "appointment", start, 10)
    again = _growth(hospital, "appointment", start, 10)
    assert first == again
    # FK enforcement is on in registry databases; none of these raise
    hospital["base"].insert_many("appointment", first)
