"""Unit coverage for the columnar layer: store, kernels, NULL logic.

The differential sweeps (`test_vectorized_differential.py`) pin the
end-to-end contract; these tests pin the primitives — NULL handling,
type-class mixing, empty batches, cache invalidation — so a kernel
regression fails with a readable message instead of a multiset diff.
"""

import pytest

from repro.sqlengine import Database, Schema, make_column
from repro.sqlengine.columnar import ColumnStore
from repro.sqlengine.columnar import kernels
from repro.sqlengine.errors import TypeMismatchError
from repro.sqlengine.executor import _like_regex


# -- ColumnStore -------------------------------------------------------------


class TestColumnStore:
    def test_transpose_matches_rows(self, toy_db):
        store = ColumnStore(toy_db.storage)
        columns = store.columns("team")
        assert len(columns) == 3
        assert columns[0] == (1, 2, 3)
        assert columns[1] == ("Brazil", "Germany", "Uruguay")

    def test_build_is_lazy_and_cached(self, toy_db):
        store = ColumnStore(toy_db.storage)
        assert store.stats()["column_builds"] == 0
        first = store.columns("player")
        second = store.columns("player")
        assert first is second
        assert store.stats()["column_builds"] == 1

    def test_mutation_invalidates(self, toy_db):
        store = ColumnStore(toy_db.storage)
        before = store.columns("team")
        toy_db.insert("team", (4, "Italy", 1898))
        after = store.columns("team")
        assert after is not before
        assert after[1][-1] == "Italy"
        assert store.stats()["column_builds"] == 2

    def test_empty_table_has_empty_columns(self):
        schema = Schema("t")
        schema.create_table("e", [make_column("a", "int"), make_column("b", "text")])
        store = ColumnStore(Database(schema).storage)
        assert store.columns("e") == ((), ())

    def test_join_index_positions_in_row_order(self, toy_db):
        store = ColumnStore(toy_db.storage)
        position = toy_db.schema.table("player").column_position("team_id")
        index = store.join_index("player", (position,))
        assert index[(1,)] == [0, 1]  # Alder, Bruno in insertion order
        assert index[(2,)] == [2, 3]

    def test_join_index_skips_null_keys(self, toy_db):
        store = ColumnStore(toy_db.storage)
        position = toy_db.schema.table("player").column_position("goals")
        index = store.join_index("player", (position,))
        assert all(None not in key for key in index)
        assert (7,) in index and index[(7,)] == [1, 2]

    def test_join_index_invalidates_on_insert(self, toy_db):
        store = ColumnStore(toy_db.storage)
        position = toy_db.schema.table("player").column_position("team_id")
        store.join_index("player", (position,))
        toy_db.insert("player", (6, 3, "Felix", 2, 1.77))
        index = store.join_index("player", (position,))
        assert index[(3,)] == [4, 5]
        assert store.stats()["index_builds"] == 2


# -- gather / take -----------------------------------------------------------


class TestGather:
    def test_identity_range_returns_column(self):
        column = (10, 20, 30)
        assert kernels.gather(column, range(3), False) is column

    def test_partial_range_copies(self):
        assert kernels.gather((10, 20, 30), range(2), False) == [10, 20]

    def test_nullable_positions(self):
        assert kernels.gather((10, 20), [1, None, 0], True) == [20, None, 10]

    def test_empty(self):
        assert kernels.gather((), range(0), False) == ()
        assert kernels.take([1, 2, 3], []) == []


# -- boolean coercion and three-valued logic ---------------------------------


class TestBool3:
    def test_passthrough_and_numbers(self):
        assert kernels.bool3([True, False, None, 1, 0, 2.5]) == [
            True, False, None, True, False, True,
        ]

    def test_text_raises_like_the_row_executor(self):
        with pytest.raises(TypeMismatchError):
            kernels.bool3(["yes"])

    def test_empty(self):
        assert kernels.bool3([]) == []

    def test_and_or_not_three_valued(self):
        left = [True, True, True, False, None]
        right = [True, False, None, None, None]
        assert kernels.and_accumulate(left, right) == [True, False, None, False, None]
        assert kernels.or_accumulate(left, right) == [True, True, True, None, None]
        assert kernels.not_kernel([True, False, None]) == [False, True, None]

    def test_true_positions_ignores_false_and_unknown(self):
        assert kernels.true_positions([True, None, False, 1, 0]) == [0, 3]


# -- comparisons -------------------------------------------------------------


class TestComparisons:
    def test_eq_same_class_fast_path(self):
        out = kernels.eq_kernel([1, 2, None], [1, 3, 1], "number", "number")
        assert out == [True, False, None]

    def test_eq_negated(self):
        out = kernels.eq_kernel([1, 2, None], [1, 3, 1], "number", "number", negated=True)
        assert out == [False, True, None]

    def test_eq_mixed_classes_align_like_sql_equal(self):
        # bool column vs the text literal 'True' (the paper's Listing 1)
        out = kernels.eq_kernel([True, False, None], ["True"] * 3, "bool", "text")
        assert out == [True, False, None]
        # numeric string vs number ('2014' = 2014)
        out = kernels.eq_kernel(["2014", "x", None], [2014] * 3, "text", "number")
        assert out == [True, False, None]

    def test_compare_number_fast_path_and_nulls(self):
        out = kernels.compare_kernel("<", [1, 5, None], [3, 3, 3], "number", "number")
        assert out == [True, False, None]
        out = kernels.compare_kernel(">=", [1, 5], [3, 3], "number", "number")
        assert out == [False, True]

    def test_compare_mixed_class_via_sql_compare(self):
        out = kernels.compare_kernel("<", ["2", None], [10, 10], "text", "number")
        assert out == [True, None]

    def test_between_direct_and_generic(self):
        values, lows, highs = [2, 5, None], [1, 1, 1], [3, 3, 3]
        direct = kernels.between_kernel(values, lows, highs, False, True)
        generic = kernels.between_kernel(values, lows, highs, False, False)
        assert direct == generic == [True, False, None]
        negated = kernels.between_kernel(values, lows, highs, True, True)
        assert negated == [False, True, None]

    def test_empty_vectors(self):
        assert kernels.eq_kernel([], [], "number", "number") == []
        assert kernels.compare_kernel("<", [], [], "text", "number") == []


# -- IN / IS NULL / LIKE -----------------------------------------------------


class TestMembership:
    def test_in_kernel_three_valued(self):
        values = [1, 4, None, 2]
        options = [[1] * 4, [None] * 4]
        # a match wins outright; any miss with a NULL option is UNKNOWN
        assert kernels.in_kernel(values, options, negated=False) == [
            True, None, None, None,
        ]
        assert kernels.in_kernel(values, options, negated=True) == [
            False, None, None, None,
        ]
        # without NULL options the misses are definite
        assert kernels.in_kernel([1, 4], [[1, 1], [2, 2]], negated=False) == [
            True, False,
        ]

    def test_in_set_fast_path_matches_generic(self):
        values = [1, 4, None]
        fast = kernels.in_set_kernel(values, frozenset({1, 2}), False)
        generic = kernels.in_kernel(values, [[1] * 3, [2] * 3], False)
        assert fast == generic == [True, False, None]

    def test_is_null(self):
        assert kernels.is_null_kernel([1, None], False) == [False, True]
        assert kernels.is_null_kernel([1, None], True) == [True, False]

    def test_like_const_and_vector_agree(self):
        values = ["Brazil", "brazil", None]
        const = kernels.like_const_kernel(values, "Bra%", _like_regex, False, False)
        vector = kernels.like_kernel(values, ["Bra%"] * 3, _like_regex, False, False)
        assert const == vector == [True, False, None]
        ilike = kernels.like_const_kernel(values, "bra%", _like_regex, True, False)
        assert ilike == [True, True, None]
        negated = kernels.like_const_kernel(values, "Bra%", _like_regex, False, True)
        assert negated == [False, True, None]

    def test_like_null_pattern(self):
        assert kernels.like_const_kernel([1, "a"], None, _like_regex, False, False) == [
            None, None,
        ]


# -- arithmetic / text -------------------------------------------------------


class TestArithmetic:
    def test_null_propagation(self):
        assert kernels.arithmetic_kernel("+", [1, None], [2, 2]) == [3, None]
        assert kernels.arithmetic_kernel("*", [2, 3], [None, 4]) == [None, 12]

    def test_division_semantics(self):
        assert kernels.arithmetic_kernel("/", [7, None], [2, 2]) == [3.5, None]
        assert kernels.arithmetic_kernel("%", [7], [4]) == [3]

    def test_concat_stringifies_booleans(self):
        assert kernels.concat_kernel([True, None], ["!", "!"]) == ["true!", None]

    def test_negate(self):
        assert kernels.negate_kernel([1, -2.5, None]) == [-1, 2.5, None]

    def test_scalar_function_kernel(self):
        from repro.sqlengine.functions import SCALAR_FUNCTIONS

        upper = SCALAR_FUNCTIONS["upper"]
        assert kernels.scalar_function_kernel(upper, [["a", None]], 2) == ["A", None]
        coalesce = SCALAR_FUNCTIONS["coalesce"]
        assert kernels.scalar_function_kernel(
            coalesce, [[None, 1], [2, 2]], 2
        ) == [2, 1]

    def test_normalize_kernel(self):
        assert kernels.normalize_kernel([True, 2.0, 1.5, "x"]) == [
            "true", 2, 1.5, "x",
        ]
