"""Direct edge-case coverage for ``sqlengine/sqlite_bridge.py``.

The bridge was previously exercised only indirectly through the morph
sweep; these tests pin the dialect decisions on their own: empty
tables, NULL ordering, float/int round trips, boolean text encoding
and the ``ILIKE`` rendering.
"""

import pytest

from repro.sqlengine import (
    Database,
    Schema,
    make_column,
    sqlite_dialect,
    sqlite_result,
    to_sqlite,
)
from repro.footballdb.morph import result_signature


@pytest.fixture()
def mixed_db() -> Database:
    schema = Schema("bridge")
    schema.create_table(
        "t",
        [
            make_column("id", "int", primary_key=True),
            make_column("score", "real"),
            make_column("label", "text"),
            make_column("flag", "bool"),
        ],
    )
    schema.create_table("empty", [make_column("x", "int", primary_key=True)])
    db = Database(schema)
    db.insert_many(
        "t",
        [
            (1, 2.0, "alpha", True),
            (2, 2.5, "Beta", False),
            (3, None, None, None),
            (4, -1.0, "beta", True),
        ],
    )
    return db


def both(db: Database, sql: str):
    """(engine rows, sqlite rows) for the same statement."""
    conn = to_sqlite(db)
    engine = db.execute(sql)
    lite = sqlite_result(conn, sqlite_dialect(sql))
    return engine, lite


class TestEmptyTables:
    def test_export_creates_empty_table(self, mixed_db):
        conn = to_sqlite(mixed_db)
        rows = conn.execute("SELECT count(*) FROM empty").fetchall()
        assert rows == [(0,)]

    def test_scalar_aggregates_on_empty(self, mixed_db):
        for sql in (
            "SELECT count(*) FROM empty",
            "SELECT sum(x) FROM empty",
            "SELECT min(x), max(x) FROM empty",
            "SELECT avg(x) FROM empty",
        ):
            engine, lite = both(mixed_db, sql)
            assert result_signature(engine) == result_signature(lite), sql

    def test_joins_against_empty(self, mixed_db):
        sql = "SELECT t.id FROM t JOIN empty ON t.id = empty.x"
        engine, lite = both(mixed_db, sql)
        assert engine.rows == []
        assert result_signature(engine) == result_signature(lite)

    def test_fully_empty_database(self):
        schema = Schema("void")
        schema.create_table("only", [make_column("a", "int", primary_key=True)])
        db = Database(schema)
        conn = to_sqlite(db)
        assert conn.execute("SELECT count(*) FROM only").fetchall() == [(0,)]


class TestNullOrdering:
    def test_nulls_first_ascending(self, mixed_db):
        """Engine ASC puts NULLs first — exactly sqlite's default."""
        sql = "SELECT score FROM t ORDER BY score"
        engine, lite = both(mixed_db, sql)
        assert engine.rows[0][0] is None
        assert lite.rows[0][0] is None
        assert [row[0] for row in engine.rows] == [row[0] for row in lite.rows]

    def test_nulls_last_descending(self, mixed_db):
        sql = "SELECT score FROM t ORDER BY score DESC"
        engine, lite = both(mixed_db, sql)
        assert engine.rows[-1][0] is None
        assert lite.rows[-1][0] is None
        assert [row[0] for row in engine.rows] == [row[0] for row in lite.rows]

    def test_null_filtering(self, mixed_db):
        for sql in (
            "SELECT id FROM t WHERE score IS NULL",
            "SELECT id FROM t WHERE score IS NOT NULL",
            "SELECT id FROM t WHERE label IS NULL",
        ):
            engine, lite = both(mixed_db, sql)
            assert result_signature(engine) == result_signature(lite), sql


class TestNumericRoundTrips:
    def test_integral_float_compares_equal_to_int_literal(self, mixed_db):
        """REAL 2.0 = integer literal 2 on both engines."""
        sql = "SELECT id FROM t WHERE score = 2"
        engine, lite = both(mixed_db, sql)
        assert [row[0] for row in engine.rows] == [1]
        assert result_signature(engine) == result_signature(lite)

    def test_fractional_float_range(self, mixed_db):
        sql = "SELECT id FROM t WHERE score > 2.25"
        engine, lite = both(mixed_db, sql)
        assert [row[0] for row in engine.rows] == [2]
        assert result_signature(engine) == result_signature(lite)

    def test_negative_floats_survive_export(self, mixed_db):
        sql = "SELECT score FROM t WHERE score < 0"
        engine, lite = both(mixed_db, sql)
        assert engine.rows == [(-1.0,)]
        assert lite.rows == [(-1.0,)]

    def test_signature_folds_integral_floats(self, mixed_db):
        """2.0 (engine REAL) and 2 (a sqlite integer expression) meet
        in the normalized signature — the EX metric's equality."""
        engine = mixed_db.execute("SELECT score FROM t WHERE id = 1")
        conn = to_sqlite(mixed_db)
        lite = sqlite_result(conn, "SELECT 2 FROM t WHERE id = 1")
        assert result_signature(engine) == result_signature(lite)


class TestBooleansAndLike:
    def test_booleans_export_as_text(self, mixed_db):
        conn = to_sqlite(mixed_db)
        values = {row[0] for row in conn.execute("SELECT flag FROM t").fetchall()}
        assert values == {"True", "False", None}

    def test_boolean_text_comparison_agrees(self, mixed_db):
        sql = "SELECT id FROM t WHERE flag = 'True'"
        engine, lite = both(mixed_db, sql)
        assert result_signature(engine) == result_signature(lite)
        assert {row[0] for row in engine.rows} == {1, 4}

    def test_ilike_renders_to_case_insensitive_like(self, mixed_db):
        assert sqlite_dialect("SELECT 1 WHERE a ILIKE 'x%'") == (
            "SELECT 1 WHERE a LIKE 'x%'"
        )
        sql = "SELECT id FROM t WHERE label ILIKE 'BETA'"
        engine, lite = both(mixed_db, sql)
        assert {row[0] for row in engine.rows} == {2, 4}
        assert result_signature(engine) == result_signature(lite)

    def test_case_sensitive_like_mode(self, mixed_db):
        conn = to_sqlite(mixed_db, case_sensitive_like=True)
        engine = mixed_db.execute("SELECT id FROM t WHERE label LIKE 'beta'")
        lite = sqlite_result(conn, "SELECT id FROM t WHERE label LIKE 'beta'")
        assert {row[0] for row in engine.rows} == {4}
        assert result_signature(engine) == result_signature(lite)

    def test_no_column_description_for_empty_projection_result(self, mixed_db):
        conn = to_sqlite(mixed_db)
        result = sqlite_result(conn, "SELECT id FROM t WHERE 1 = 2")
        assert result.rows == []
        assert result.columns == ["id"]
