"""SQL value semantics: NULL logic, coercion, normalization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import SqlType, TypeMismatchError, normalize_for_comparison
from repro.sqlengine.values import (
    coerce,
    sql_and,
    sql_compare,
    sql_equal,
    sql_not,
    sql_or,
    sort_key,
)


class TestThreeValuedLogic:
    """Kleene logic truth tables."""

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (True, True, True), (True, False, False), (False, False, False),
            (True, None, None), (False, None, False), (None, None, None),
        ],
    )
    def test_and(self, left, right, expected):
        assert sql_and(left, right) is expected
        assert sql_and(right, left) is expected

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (True, True, True), (True, False, True), (False, False, False),
            (True, None, True), (False, None, None), (None, None, None),
        ],
    )
    def test_or(self, left, right, expected):
        assert sql_or(left, right) is expected
        assert sql_or(right, left) is expected

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None


class TestEquality:
    def test_null_propagates(self):
        assert sql_equal(None, 1) is None
        assert sql_equal("x", None) is None

    def test_cross_numeric(self):
        assert sql_equal(1, 1.0) is True

    def test_numeric_string_alignment(self):
        """Annotators quote years: '2014' = 2014 must hold."""
        assert sql_equal("2014", 2014) is True
        assert sql_equal(2014, "2015") is False

    def test_boolean_text_alignment(self):
        """Listing 1: winner = 'True' against a boolean column."""
        assert sql_equal(True, "True") is True
        assert sql_equal(True, "true") is True
        assert sql_equal(False, "True") is False

    def test_plain_string_equality(self):
        assert sql_equal("England", "England") is True
        assert sql_equal("England", "Germany") is False


class TestComparison:
    def test_ordering(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare(2, 2) == 0

    def test_null_is_unknown(self):
        assert sql_compare(None, 1) is None

    def test_incompatible_types_raise(self):
        with pytest.raises(TypeMismatchError):
            sql_compare("abc", 5)

    def test_numeric_string_compares(self):
        assert sql_compare("10", 9) == 1


class TestCoercion:
    def test_integer(self):
        assert coerce(5, SqlType.INTEGER) == 5
        assert coerce(5.0, SqlType.INTEGER) == 5
        with pytest.raises(TypeMismatchError):
            coerce(5.5, SqlType.INTEGER)
        with pytest.raises(TypeMismatchError):
            coerce(True, SqlType.INTEGER)

    def test_real(self):
        assert coerce(5, SqlType.REAL) == 5.0
        assert isinstance(coerce(5, SqlType.REAL), float)

    def test_text_rejects_numbers(self):
        with pytest.raises(TypeMismatchError):
            coerce(5, SqlType.TEXT)

    def test_boolean_from_strings(self):
        assert coerce("true", SqlType.BOOLEAN) is True
        assert coerce("False", SqlType.BOOLEAN) is False
        with pytest.raises(TypeMismatchError):
            coerce("yes", SqlType.BOOLEAN)

    def test_null_passes_through(self):
        for sql_type in SqlType:
            assert coerce(None, sql_type) is None


class TestNormalization:
    def test_integral_float_folds_to_int(self):
        assert normalize_for_comparison(2.0) == 2

    def test_fractional_float_rounds(self):
        assert normalize_for_comparison(1.23456789) == 1.234568

    def test_boolean_folds_to_text(self):
        assert normalize_for_comparison(True) == "true"
        assert normalize_for_comparison(False) == "false"

    @given(st.one_of(st.integers(), st.floats(allow_nan=False, allow_infinity=False),
                     st.text(max_size=20), st.booleans(), st.none()))
    @settings(max_examples=200, deadline=None)
    def test_property_normalization_is_idempotent(self, value):
        once = normalize_for_comparison(value)
        twice = normalize_for_comparison(once)
        assert once == twice


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered[:2] == [None, None]

    def test_mixed_types_totally_ordered(self):
        values = ["b", 2, None, True, 1.5, "a"]
        ordered = sorted(values, key=sort_key)
        assert ordered.index(None) == 0

    @given(st.lists(st.one_of(st.integers(-100, 100), st.text(max_size=5),
                              st.booleans(), st.none()), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_property_sort_key_never_raises(self, values):
        sorted(values, key=sort_key)
