"""Unit tests for the SQL lexer."""

import pytest

from repro.sqlengine import TokenizeError, TokenType, tokenize


def kinds(sql):
    return [token.type for token in tokenize(sql)][:-1]  # drop EOF


def values(sql):
    return [token.value for token in tokenize(sql)][:-1]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifier_vs_keyword(self):
        tokens = tokenize("select teamname")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[1].type is TokenType.IDENTIFIER

    def test_numbers(self):
        assert values("1 42 3.14 0.5") == ["1", "42", "3.14", "0.5"]

    def test_number_followed_by_dot_punctuation(self):
        # "1." at clause end must not swallow the dot into the number
        tokens = tokenize("1.x")
        assert tokens[0].value == "1"
        assert tokens[1].value == "."

    def test_string_literal(self):
        tokens = tokenize("'Germany'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "Germany"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].value == "O'Brien"

    def test_unterminated_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"select"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "select"

    def test_operators(self):
        assert values("= <> != <= >= < > || + - * / %") == [
            "=", "<>", "!=", "<=", ">=", "<", ">", "||", "+", "-", "*", "/", "%",
        ]

    def test_punctuation(self):
        assert values("( ) , . ;") == ["(", ")", ",", ".", ";"]

    def test_line_comment_is_skipped(self):
        assert values("select -- a comment\n 1") == ["select", "1"]

    def test_unexpected_character_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("select @")

    def test_eof_token_always_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestRealQueries:
    def test_figure4_v3_query_tokenizes(self):
        sql = (
            "SELECT T1.teamname, T3.teamname, T2.team_goals, "
            "T2.opponent_team_goals FROM national_team AS T1 "
            "JOIN plays_match AS T2 ON T2.team_id = T1.team_id "
            "WHERE T1.teamname ILIKE '%Brazil%' AND T2.year = 2014"
        )
        tokens = tokenize(sql)
        assert tokens[-1].type is TokenType.EOF
        assert any(t.value == "ILIKE" for t in tokens)

    def test_ilike_is_keyword(self):
        tokens = tokenize("a ILIKE b")
        assert tokens[1].type is TokenType.KEYWORD
