"""Executor edge paths not covered by the main executor suite."""

import pytest

from repro.sqlengine import Database, ExecutionError, Schema, make_column


def rows(db, sql):
    return db.execute(sql).rows


class TestLeftJoinHashPath:
    def test_left_join_uses_hash_and_preserves_nulls(self, toy_db):
        toy_db.insert("team", (9, "Ghosts", 1999))
        sql = (
            "SELECT T1.name, T2.name FROM team AS T1 "
            "LEFT JOIN player AS T2 ON T1.team_id = T2.team_id "
            "WHERE T1.team_id = 9"
        )
        assert rows(toy_db, sql) == [("Ghosts", None)]

    def test_left_join_null_columns_participate_in_expressions(self, toy_db):
        toy_db.insert("team", (9, "Ghosts", 1999))
        sql = (
            "SELECT count(T2.player_id) FROM team AS T1 "
            "LEFT JOIN player AS T2 ON T1.team_id = T2.team_id "
            "WHERE T1.team_id = 9"
        )
        assert rows(toy_db, sql) == [(0,)]

    def test_left_join_residual_condition(self, toy_db):
        # Residual non-equi term: unmatched rows still survive as NULLs.
        sql = (
            "SELECT T1.name, T2.name FROM team AS T1 "
            "LEFT JOIN player AS T2 ON T1.team_id = T2.team_id AND T2.goals > 100"
        )
        result = rows(toy_db, sql)
        assert all(row[1] is None for row in result)
        assert len(result) == 3


class TestOrderingEdges:
    def test_mixed_direction_multi_key_sort(self, toy_db):
        sql = (
            "SELECT team_id, goals FROM player WHERE goals IS NOT NULL "
            "ORDER BY team_id ASC, goals DESC"
        )
        result = rows(toy_db, sql)
        assert result == [(1, 12), (1, 7), (2, 7), (2, 0)]

    def test_order_by_expression(self, toy_db):
        sql = (
            "SELECT name, goals FROM player WHERE goals IS NOT NULL "
            "ORDER BY goals * -1 LIMIT 1"
        )
        assert rows(toy_db, sql) == [("Alder", 12)]

    def test_offset_beyond_rows(self, toy_db):
        assert rows(toy_db, "SELECT name FROM team LIMIT 5 OFFSET 99") == []

    def test_limit_zero(self, toy_db):
        assert rows(toy_db, "SELECT name FROM team LIMIT 0") == []


class TestGroupingEdges:
    def test_group_by_multiple_keys(self, toy_db):
        sql = (
            "SELECT team_id, goals, count(*) FROM player "
            "WHERE goals IS NOT NULL GROUP BY team_id, goals ORDER BY 1, 2"
        )
        result = rows(toy_db, sql)
        assert (1, 7, 1) in result
        assert (2, 7, 1) in result

    def test_having_without_group_by(self, toy_db):
        """Implicit single-group aggregation with HAVING."""
        assert rows(toy_db, "SELECT count(*) FROM player HAVING count(*) > 3") == [(5,)]
        assert rows(toy_db, "SELECT count(*) FROM player HAVING count(*) > 9") == []

    def test_group_by_expression_key(self, toy_db):
        sql = (
            "SELECT founded + 0, count(*) FROM team GROUP BY founded + 0 ORDER BY 1"
        )
        assert rows(toy_db, sql) == [(1900, 2), (1914, 1)]

    def test_aggregate_in_order_by_triggers_grouping(self, toy_db):
        sql = (
            "SELECT team_id FROM player GROUP BY team_id "
            "ORDER BY count(*) DESC, team_id LIMIT 1"
        )
        assert rows(toy_db, sql) == [(1,)]


class TestStarEdges:
    def test_qualified_star_expansion(self, toy_db):
        result = toy_db.execute(
            "SELECT T2.* FROM player AS T1 JOIN team AS T2 "
            "ON T1.team_id = T2.team_id WHERE T1.player_id = 1"
        )
        assert result.rows == [(1, "Brazil", 1914)]

    def test_unknown_star_alias_raises(self, toy_db):
        with pytest.raises(ExecutionError):
            toy_db.execute("SELECT T9.* FROM team AS T1")

    def test_star_with_empty_from(self, toy_db):
        result = toy_db.execute("SELECT * FROM team WHERE team_id = -1")
        assert result.rows == []


class TestEmptyTables:
    def make_empty(self):
        schema = Schema("empty")
        schema.create_table("t", [make_column("a", "int")])
        return Database(schema)

    def test_scan_empty(self):
        db = self.make_empty()
        assert rows(db, "SELECT a FROM t") == []

    def test_aggregate_empty(self):
        db = self.make_empty()
        assert rows(db, "SELECT count(*), sum(a), min(a) FROM t") == [(0, None, None)]

    def test_group_by_empty_produces_no_groups(self):
        db = self.make_empty()
        assert rows(db, "SELECT a, count(*) FROM t GROUP BY a") == []

    def test_join_with_empty_side(self, toy_db):
        schema_db = self.make_empty()
        assert rows(schema_db, "SELECT * FROM t AS x JOIN t AS y ON x.a = y.a") == []
