"""Formatter round-trip tests plus property-based checks.

The SemQL decoder and gold-SQL compiler construct ASTs programmatically
and rely on ``format_query`` producing text the parser accepts again and
the executor evaluates identically.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import format_query, parse_sql


ROUND_TRIP_QUERIES = [
    "SELECT * FROM t",
    "SELECT DISTINCT a, b AS x FROM t",
    "SELECT count(*) FROM t WHERE a = 1",
    "SELECT a FROM t WHERE name ILIKE '%Brazil%' AND year = 2014",
    "SELECT a FROM t WHERE x NOT LIKE 'a%' OR y IS NOT NULL",
    "SELECT a FROM t WHERE y BETWEEN 1 AND 2",
    "SELECT a FROM t WHERE y IN (1, 2, 3)",
    "SELECT a FROM t WHERE y IN (SELECT z FROM u WHERE u.k = t.k)",
    "SELECT a FROM t WHERE EXISTS (SELECT * FROM u)",
    "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 ORDER BY a DESC LIMIT 5",
    "SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.x = T2.x LEFT JOIN v AS T3 ON T1.y = T3.y",
    "SELECT a FROM t UNION SELECT a FROM u ORDER BY 1 LIMIT 3",
    "SELECT a FROM t INTERSECT SELECT a FROM u",
    "SELECT a FROM t EXCEPT SELECT a FROM u",
    "SELECT sum(a) / count(*) FROM t",
    "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CAST(a AS INTEGER) FROM t",
    "SELECT count(DISTINCT a) FROM t",
    "SELECT -a FROM t WHERE NOT (a = 1 OR b = 2)",
    "SELECT 'O''Brien' FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_round_trip_is_stable(sql):
    """parse → format → parse → format must reach a fixed point."""
    first = format_query(parse_sql(sql))
    second = format_query(parse_sql(first))
    assert first == second


def test_formatting_preserves_semantics(toy_db):
    queries = [
        "SELECT name FROM player WHERE goals >= 7 ORDER BY name",
        "SELECT T2.name, count(*) FROM player AS T1 JOIN team AS T2 "
        "ON T1.team_id = T2.team_id GROUP BY T2.name HAVING count(*) > 1 ORDER BY 1",
        "SELECT team_id FROM team UNION SELECT team_id FROM player ORDER BY 1",
        "SELECT name FROM player WHERE team_id IN (SELECT team_id FROM team WHERE founded = 1900) ORDER BY name",
    ]
    for sql in queries:
        original = toy_db.execute(sql)
        reformatted = toy_db.execute(format_query(parse_sql(sql)))
        assert original.rows == reformatted.rows


# -- property-based round trips ------------------------------------------------

_identifiers = st.sampled_from(["a", "b", "c", "x_1", "year", "teamname"])
_tables = st.sampled_from(["t", "u", "match_fact", "national_team"])
_literals = st.one_of(
    st.integers(min_value=-1000, max_value=3000),
    st.sampled_from(["Brazil", "Germany", "O'Brien", "100%", "a_b"]),
)


def _literal_sql(value):
    if isinstance(value, int):
        return str(value)
    return "'" + value.replace("'", "''") + "'"


@st.composite
def simple_queries(draw):
    column = draw(_identifiers)
    table = draw(_tables)
    parts = [f"SELECT {column} FROM {table}"]
    if draw(st.booleans()):
        filter_column = draw(_identifiers)
        operator = draw(st.sampled_from(["=", "<>", "<", ">=", "ILIKE"]))
        value = draw(_literals)
        if operator == "ILIKE":
            value = f"%{value}%" if not isinstance(value, int) else "%1%"
        parts.append(f"WHERE {filter_column} {operator} {_literal_sql(value)}")
    if draw(st.booleans()):
        parts.append(f"GROUP BY {draw(_identifiers)}")
    if draw(st.booleans()):
        parts.append(f"ORDER BY {draw(_identifiers)} DESC")
    if draw(st.booleans()):
        parts.append(f"LIMIT {draw(st.integers(min_value=1, max_value=99))}")
    return " ".join(parts)


@given(simple_queries())
@settings(max_examples=200, deadline=None)
def test_property_round_trip_fixed_point(sql):
    first = format_query(parse_sql(sql))
    second = format_query(parse_sql(first))
    assert first == second


@given(
    st.lists(
        st.one_of(st.integers(-5, 5), st.sampled_from(["x", "y'z", ""]), st.none()),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_literal_lists_round_trip(values):
    """IN-lists of arbitrary literals survive format → parse."""
    rendered = ", ".join(
        "NULL" if value is None else _literal_sql(value) for value in values
    )
    sql = f"SELECT a FROM t WHERE a IN ({rendered})"
    first = format_query(parse_sql(sql))
    second = format_query(parse_sql(first))
    assert first == second


# -- schema-morph rewrite round trips ------------------------------------------
#
# Every mutation operator's gold rewrite must (a) stay a formatter fixed
# point — ``format_query(parse_sql(rewritten))`` reproduces itself — and
# (b) preserve result sets on the seed workload of the morphable base
# database (``conftest.py``).

from repro.footballdb.morph import (
    DEFAULT_OPERATORS,
    MorphError,
    SchemaMorpher,
    result_signature,
)

_OPERATOR_NAMES = [operator.name for operator in DEFAULT_OPERATORS]


def _single_operator_morph(operator_name, base, attempts=8):
    """Force a 1-step chain using exactly one operator family."""
    operator = next(o for o in DEFAULT_OPERATORS if o.name == operator_name)
    for seed in range(attempts):
        try:
            return SchemaMorpher(seed=seed, operators=[operator]).morph(
                base, f"rt~{operator_name}{seed}", steps=1
            )
        except MorphError:
            continue
    return None


@pytest.mark.parametrize("operator_name", _OPERATOR_NAMES)
def test_each_operator_rewrite_round_trips_and_preserves_results(
    operator_name, morph_base_builder, morph_probes
):
    base = morph_base_builder()
    morph = _single_operator_morph(operator_name, base)
    assert morph is not None, f"operator {operator_name} never applied"
    assert morph.operator_names == (operator_name,)
    for sql in morph_probes:
        rewritten = morph.rewrite_sql(sql)
        # formatter fixed point
        assert format_query(parse_sql(rewritten)) == rewritten
        # rewriting is idempotent through a parse cycle: feeding the
        # formatted text back through parse/format is stable
        assert format_query(parse_sql(format_query(parse_sql(rewritten)))) == rewritten
        # result preservation
        assert result_signature(morph.database.execute(rewritten)) == result_signature(
            base.execute(sql)
        ), (operator_name, sql, rewritten)


@given(chain_seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_morph_chain_rewrites_round_trip(
    chain_seed, morph_base_builder, morph_probes
):
    """Arbitrary seeded chains keep every probe a formatter fixed point."""
    base = morph_base_builder()
    morph = SchemaMorpher(seed=chain_seed).morph(base, f"p{chain_seed}", steps=3)
    for sql in morph_probes:
        rewritten = morph.rewrite_sql(sql)
        assert format_query(parse_sql(rewritten)) == rewritten
