"""Sampling strategy tests (diversity, hardness-uniform, split)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nlp import diversity_sample, hardness_uniform_sample, train_test_split


class TestDiversitySample:
    def test_near_duplicates_collapse(self):
        texts = [
            "Who won the world cup in 2014?",
            "Who won the world cup in 2014 ?",  # near-exact duplicate
            "Which clubs did Sahoff Morpera play for?",
        ]
        kept = diversity_sample(texts, similarity_threshold=0.93)
        assert len(kept) == 2

    def test_diverse_texts_all_kept(self):
        texts = [
            "Who won the world cup in 2014?",
            "How tall is Marlu Ferratorez?",
            "Which clubs did Sahoff Morpera play for?",
            "How many red cards were shown in 2006?",
        ]
        kept = diversity_sample(texts)
        assert len(kept) == 4

    def test_returns_sorted_unique_indices(self):
        texts = ["question one", "question two", "question three"] * 2
        kept = diversity_sample(texts)
        assert kept == sorted(set(kept))
        assert all(0 <= i < len(texts) for i in kept)


class TestHardnessUniformSample:
    def test_exact_size(self):
        items = [(i, i % 4) for i in range(400)]
        sample = hardness_uniform_sample(items, lambda item: item[1], size=100)
        assert len(sample) == 100

    def test_uniform_when_possible(self):
        items = [(i, i % 4) for i in range(400)]
        sample = hardness_uniform_sample(items, lambda item: item[1], size=100)
        counts = {}
        for _, level in sample:
            counts[level] = counts.get(level, 0) + 1
        assert counts == {0: 25, 1: 25, 2: 25, 3: 25}

    def test_backfill_when_level_scarce(self):
        """Scarce easy queries get backfilled from richer levels —
        reproducing the paper's mean hardness ≈ 3 despite 'uniform'
        sampling."""
        items = [("easy", 1)] * 5 + [("hard", 3)] * 200 + [("extra", 4)] * 200
        sample = hardness_uniform_sample(items, lambda item: item[1], size=120)
        assert len(sample) == 120
        easy = sum(1 for item in sample if item[1] == 1)
        assert easy == 5

    def test_deterministic(self):
        items = [(i, i % 3) for i in range(90)]
        a = hardness_uniform_sample(items, lambda item: item[1], size=30, seed=4)
        b = hardness_uniform_sample(items, lambda item: item[1], size=30, seed=4)
        assert a == b

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_property_never_oversamples(self, size):
        items = [(i, i % 2) for i in range(30)]
        sample = hardness_uniform_sample(items, lambda item: item[1], size=size)
        assert len(sample) == min(size, len(items))


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(list(range(400)), test_size=100)
        assert len(train) == 300
        assert len(test) == 100

    def test_disjoint_and_complete(self):
        items = list(range(400))
        train, test = train_test_split(items, test_size=100, seed=3)
        assert sorted(train + test) == items

    def test_stratified_distribution(self):
        items = [(i, i % 4) for i in range(400)]
        train, test = train_test_split(
            items, test_size=100, stratify_by=lambda item: item[1], seed=5
        )
        counts = {}
        for _, level in test:
            counts[level] = counts.get(level, 0) + 1
        # Each level is 25% of the pool; the stratified test split
        # should be close to 25 per level.
        assert all(20 <= count <= 30 for count in counts.values())

    def test_test_size_too_large_raises(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], test_size=3)

    def test_deterministic(self):
        items = list(range(100))
        a = train_test_split(items, test_size=20, seed=9)
        b = train_test_split(items, test_size=20, seed=9)
        assert a == b
