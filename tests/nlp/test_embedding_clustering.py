"""Embedding, clustering and similarity behaviour."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.nlp import cluster_texts, cosine, embed, embed_all, similarity


class TestEmbedding:
    def test_vectors_are_normalized(self):
        vector = embed("Who won the world cup in 2014?")
        assert math.isclose(sum(v * v for v in vector), 1.0, rel_tol=1e-9)

    def test_identical_texts_have_similarity_one(self):
        assert math.isclose(
            similarity("Who won in 2014?", "Who won in 2014?"), 1.0, rel_tol=1e-9
        )

    def test_paraphrases_score_higher_than_unrelated(self):
        close = similarity(
            "Who won the world cup in 2014?", "Which country won the 2014 world cup?"
        )
        far = similarity(
            "Who won the world cup in 2014?", "How do I reset my password?"
        )
        assert close > far

    def test_year_variants_are_very_similar(self):
        """The near-duplicate folding target from the paper."""
        score = similarity(
            "Who won the world cup in 2014?", "Who won the world cup in 2018?"
        )
        assert score > 0.85

    def test_typo_tolerance_via_trigrams(self):
        clean = "How many goals did Ferratorez score?"
        typo = "How many goals did Feratorez score?"
        assert similarity(clean, typo) > 0.8

    def test_empty_text(self):
        assert embed("") == [0.0] * len(embed(""))

    def test_case_insensitive(self):
        assert math.isclose(
            similarity("WHO WON IN 2014", "who won in 2014"), 1.0, rel_tol=1e-9
        )

    @given(st.text(max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_property_norm_is_zero_or_one(self, text):
        vector = embed(text)
        norm = sum(v * v for v in vector)
        assert math.isclose(norm, 1.0, rel_tol=1e-6) or norm == 0.0

    @given(st.text(max_size=60), st.text(max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_property_similarity_bounded_and_symmetric(self, a, b):
        ab = similarity(a, b)
        ba = similarity(b, a)
        assert -1.0001 <= ab <= 1.0001
        assert math.isclose(ab, ba, rel_tol=1e-9)


class TestClustering:
    QUESTIONS = [
        "Who won the world cup in 2014?",
        "Who won the world cup in 2018?",
        "Which country won the 2010 world cup?",
        "How tall is Marlu Ferratorez?",
        "What is the height of Marlu Ferratorez?",
        "Which clubs did Sahoff Morpera play for?",
    ]

    def test_cluster_count_reasonable(self):
        clusters = cluster_texts(self.QUESTIONS)
        assert 2 <= len(clusters) <= 5

    def test_all_members_assigned_exactly_once(self):
        clusters = cluster_texts(self.QUESTIONS)
        members = sorted(i for c in clusters for i in c.member_indices)
        assert members == list(range(len(self.QUESTIONS)))

    def test_winner_questions_cluster_together(self):
        clusters = cluster_texts(self.QUESTIONS)
        winner_cluster = next(c for c in clusters if 0 in c.member_indices)
        assert 1 in winner_cluster.member_indices

    def test_centroid_member_is_member(self):
        vectors = embed_all(self.QUESTIONS)
        for cluster in cluster_texts(self.QUESTIONS, vectors=vectors):
            assert cluster.centroid_member(vectors) in cluster.member_indices

    def test_centroid_is_normalized(self):
        clusters = cluster_texts(self.QUESTIONS)
        for cluster in clusters:
            norm = sum(v * v for v in cluster.centroid)
            assert math.isclose(norm, 1.0, rel_tol=1e-6)

    def test_threshold_one_gives_singletons_for_distinct_texts(self):
        clusters = cluster_texts(["aa bb cc", "dd ee ff", "gg hh ii"], threshold=0.999)
        assert len(clusters) == 3

    def test_deterministic(self):
        a = cluster_texts(self.QUESTIONS)
        b = cluster_texts(self.QUESTIONS)
        assert [c.member_indices for c in a] == [c.member_indices for c in b]
