"""Prompt budgeting and the latency model."""

import statistics

import pytest

from repro.systems import PromptBuilder, estimate_tokens, serialize_schema
from repro.systems.timing import (
    GPT35_LATENCY,
    LLAMA2_LATENCY,
    T5_PICARD_KEYS_LATENCY,
    T5_PICARD_LATENCY,
    VALUENET_LATENCY,
    output_token_estimate,
)


class TestSchemaSerialization:
    def test_contains_all_tables(self, football):
        text = serialize_schema(football["v1"].schema)
        for table in football["v1"].schema.tables:
            assert f"CREATE TABLE {table.name}" in text

    def test_fk_lines_toggle(self, football):
        with_fk = serialize_schema(football["v1"].schema, include_foreign_keys=True)
        without = serialize_schema(football["v1"].schema, include_foreign_keys=False)
        assert "-- FK:" in with_fk
        assert "-- FK:" not in without
        assert len(with_fk) > len(without)

    def test_sample_rows_included(self, football):
        text = serialize_schema(
            football["v1"].schema, database=football["v1"], sample_rows=2
        )
        assert "-- e.g." in text


class TestPromptBudget:
    def make_pairs(self, count=40):
        question = "What was the score between Germany and Brazil in 2014?"
        sql = (
            "SELECT T2.teamname, T3.teamname, T1.home_team_goals, T1.away_team_goals "
            "FROM match AS T1 JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id "
            "WHERE T1.year = 2014"
        )
        return [(f"{question} ({i})", sql) for i in range(count)]

    def test_gpt_window_fits_thirty_shots(self, football):
        builder = PromptBuilder(football["v1"], context_window=16_384, sample_rows=3)
        prompt = builder.build("Who won in 2014?", self.make_pairs(30))
        assert prompt.shots_used == 30
        assert not prompt.truncated

    def test_llama_window_truncates(self, football):
        """The paper's footnote 2: LLaMA2 cannot fit many examples."""
        builder = PromptBuilder(
            football["v1"], context_window=4_096, sample_rows=5, completion_reserve=512
        )
        prompt = builder.build("Who won in 2014?", self.make_pairs(30))
        assert prompt.truncated
        assert prompt.shots_used < 30

    def test_prompt_tokens_within_window(self, football):
        builder = PromptBuilder(
            football["v1"], context_window=4_096, sample_rows=5, completion_reserve=512
        )
        prompt = builder.build("Who won in 2014?", self.make_pairs(30))
        assert prompt.tokens <= 4_096

    def test_zero_examples(self, football):
        builder = PromptBuilder(football["v1"], context_window=16_384)
        prompt = builder.build("Who won in 2014?", [])
        assert prompt.shots_used == 0
        assert "Who won in 2014?" in prompt.text

    def test_token_estimate_monotone(self):
        assert estimate_tokens("abcd" * 100) > estimate_tokens("abcd" * 10)


class TestLatencyModel:
    QUESTIONS = [f"question number {i} about the world cup?" for i in range(100)]

    def mean_latency(self, model, tokens=58, reparse=0):
        return statistics.fmean(
            model.latency(tokens, question, reparse_count=reparse)
            for question in self.QUESTIONS
        )

    def test_table7_ordering(self):
        """T5-Picard >> T5-Keys >> LLaMA2 >> GPT-3.5 > ValueNet."""
        valuenet = self.mean_latency(VALUENET_LATENCY)
        t5 = self.mean_latency(T5_PICARD_LATENCY, reparse=13)
        t5_keys = self.mean_latency(T5_PICARD_KEYS_LATENCY, reparse=5)
        gpt = self.mean_latency(GPT35_LATENCY)
        llama = self.mean_latency(LLAMA2_LATENCY)
        assert t5 > t5_keys > llama > gpt > valuenet

    def test_paper_magnitudes(self):
        """Means land in the Table 7 ballpark (±40%)."""
        assert 0.6 <= self.mean_latency(VALUENET_LATENCY) <= 1.6
        assert 400 <= self.mean_latency(T5_PICARD_LATENCY, reparse=13) <= 900
        assert 180 <= self.mean_latency(T5_PICARD_KEYS_LATENCY, reparse=5) <= 420
        assert 1.5 <= self.mean_latency(GPT35_LATENCY) <= 3.8
        assert 22 <= self.mean_latency(LLAMA2_LATENCY) <= 55

    def test_deterministic_per_question(self):
        a = GPT35_LATENCY.latency(60, "same question")
        b = GPT35_LATENCY.latency(60, "same question")
        assert a == b

    def test_jitter_varies_across_questions(self):
        values = {GPT35_LATENCY.latency(60, q) for q in self.QUESTIONS[:10]}
        assert len(values) == 10

    def test_longer_output_costs_more(self):
        short = T5_PICARD_LATENCY.latency(20, "q")
        long = T5_PICARD_LATENCY.latency(90, "q")
        assert long > short

    def test_output_token_estimate_floor(self):
        assert output_token_estimate("SELECT 1") == 12
