"""Value finder and schema linking tests."""

import pytest

from repro.systems import ValueFinder, link_schema, linked_tables


@pytest.fixture(scope="module")
def finder(football):
    return ValueFinder(football["v1"])


class TestValueFinder:
    def test_extracts_years(self, finder):
        candidates = finder.find("Who won the world cup in 2014?")
        years = [c for c in candidates if c.value == 2014]
        assert years and years[0].score == 1.0

    def test_exact_team_grounding(self, finder):
        candidates = finder.find("How many goals did Germany score in 2014?")
        teams = [c for c in candidates if c.table == "national_team"]
        assert teams
        assert teams[0].value == "Germany"
        assert teams[0].score == 1.0

    def test_fuzzy_recovers_misspelled_team(self, finder):
        grounded = finder.ground("Germny")
        assert grounded is not None
        assert grounded.value == "Germany"
        assert grounded.score < 1.0

    def test_fuzzy_recovers_misspelled_player(self, finder, football):
        player = football.universe.players[0].full_name
        # Drop one inner letter from the family name.
        family = player.split(" ")[-1]
        typo = player.replace(family, family[:2] + family[3:])
        grounded = finder.ground(typo)
        assert grounded is not None
        assert grounded.value == player

    def test_garbage_is_not_grounded(self, finder):
        assert finder.ground("Xqzvk Wrtplm") is None

    def test_scrambled_corruption_not_grounded(self, finder):
        """The corruption operator's output must stay unrecoverable."""
        assert finder.ground("ynamreG") is None

    def test_interrogatives_are_not_entities(self, finder):
        candidates = finder.find("Who won? What happened? Which team?")
        assert all(c.table is None for c in candidates)

    def test_multi_word_span(self, finder):
        candidates = finder.find("When did South Korea host the world cup?")
        values = {c.value for c in candidates}
        assert "South Korea" in values


class TestSchemaLinking:
    def test_links_named_table(self, football):
        tables = linked_tables("Which stadium hosted the final?", football["v1"].schema)
        assert "stadium" in tables

    def test_links_via_domain_hints(self, football):
        tables = linked_tables(
            "Who won the world cup in 2014?", football["v1"].schema
        )
        assert "world_cup" in tables

    def test_links_card_questions_to_match_fact(self, football):
        tables = linked_tables(
            "How many yellow cards were shown in 2010?", football["v1"].schema
        )
        assert "match_fact" in tables

    def test_column_links_resolve_table(self, football):
        links = link_schema(
            "What is the host country of the 1950 cup?", football["v1"].schema
        )
        column_links = [l for l in links if l.kind == "column"]
        assert any(l.column == "host_country" for l in column_links)

    def test_no_spurious_links_for_unrelated_text(self, football):
        tables = linked_tables("How do I reset my password?", football["v1"].schema)
        assert tables == []
