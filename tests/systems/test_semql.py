"""SemQL encode/decode tests: lossiness, rejection and round trips."""

import pytest

from repro.footballdb import schema_v1, schema_v3
from repro.sqlengine import parse_sql, format_query
from repro.systems import SchemaGraph, SemqlUnsupportedError, decode_semql, encode_sql
from repro.systems.joinpath import AmbiguousEdgeError
from repro.systems.semql import (
    REASON_LEFT_JOIN,
    REASON_PROJECTION,
    REASON_REPEATED_TABLE,
)
from repro.workload import compile_intent, make_intent


@pytest.fixture(scope="module")
def v3_schema():
    return schema_v3.build_schema()


@pytest.fixture(scope="module")
def v1_schema():
    return schema_v1.build_schema()


class TestEncodeRejections:
    def test_repeated_table_instances_rejected(self, v1_schema):
        sql = (
            "SELECT T2.teamname, T3.teamname FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id"
        )
        with pytest.raises(SemqlUnsupportedError) as excinfo:
            encode_sql(parse_sql(sql), v1_schema)
        assert excinfo.value.reason == REASON_REPEATED_TABLE

    def test_left_join_rejected(self, v1_schema):
        sql = "SELECT a FROM match AS T1 LEFT JOIN stadium AS T2 ON T1.stadium_id = T2.stadium_id"
        with pytest.raises(SemqlUnsupportedError) as excinfo:
            encode_sql(parse_sql(sql), v1_schema)
        assert excinfo.value.reason == REASON_LEFT_JOIN

    def test_arithmetic_projection_rejected(self, v1_schema):
        sql = "SELECT avg(home_team_goals + away_team_goals) FROM match AS T1"
        with pytest.raises(SemqlUnsupportedError) as excinfo:
            encode_sql(parse_sql(sql), v1_schema)
        assert excinfo.value.reason == REASON_PROJECTION

    def test_figure4_v1_union_rejected_per_branch(self, v1_schema):
        intent = make_intent("match_score", team_a="Germany", team_b="Brazil", year=2014)
        sql = compile_intent(intent, "v1")
        with pytest.raises(SemqlUnsupportedError):
            encode_sql(parse_sql(sql), v1_schema)


class TestEncodeStructure:
    def test_simple_query_encodes(self, v3_schema):
        sql = "SELECT T1.teamname FROM national_team AS T1 WHERE T1.team_id = 5"
        semql = encode_sql(parse_sql(sql), v3_schema)
        assert len(semql.projections) == 1
        assert semql.mentioned_tables() == ["national_team"]

    def test_group_by_is_dropped(self, v3_schema):
        sql = (
            "SELECT T1.teamname, count(*) FROM national_team AS T1 "
            "GROUP BY T1.teamname HAVING count(*) > 2"
        )
        semql = encode_sql(parse_sql(sql), v3_schema)
        # GROUP BY/HAVING live only implicitly: an agg projection + agg filter.
        assert semql.projections[1].agg == "count"

    def test_or_join_condition_is_lost(self, v3_schema):
        """Disjunctive ON conditions are outside SemQL: silently dropped."""
        sql = (
            "SELECT count(*) FROM plays_match AS T1 JOIN national_team AS T2 "
            "ON T1.team_id = T2.team_id OR T1.opponent_team_id = T2.team_id "
            "WHERE T2.teamname ILIKE '%Brazil%'"
        )
        semql = encode_sql(parse_sql(sql), v3_schema)
        graph = SchemaGraph(v3_schema)
        decoded = format_query(decode_semql(semql, graph))
        assert "OR" not in decoded  # the join disjunction is gone

    def test_union_encodes_as_z_node(self, v3_schema):
        sql = (
            "SELECT T1.teamname FROM national_team AS T1 "
            "UNION SELECT T1.teamname FROM national_opponent_team AS T1"
        )
        semql = encode_sql(parse_sql(sql), v3_schema)
        assert semql.set_operator is not None
        assert semql.set_right is not None


class TestDecodeRoundTrips:
    """encode → decode must preserve semantics where SemQL is lossless."""

    ROUND_TRIP_KINDS = [
        "cup_winner",
        "prize_count_team",
        "top_scorer_cup",
        "squad_list",
        "player_goals_cup",
        "coach_of_team",
        "most_titles",
        "team_goals_cup",
        "cards_in_cup",
    ]

    @pytest.mark.parametrize("kind", ROUND_TRIP_KINDS)
    def test_v3_round_trip_preserves_results(self, football, kind):
        from repro.workload import IntentSampler

        sampler = IntentSampler(football.universe, seed=31)
        schema = football["v3"].schema
        graph = SchemaGraph(schema)
        intent = sampler.sample_intent(kind)
        gold = compile_intent(intent, "v3")
        semql = encode_sql(parse_sql(gold), schema)
        decoded = format_query(decode_semql(semql, graph))
        gold_result = football["v3"].execute(gold).normalized_multiset()
        decoded_result = football["v3"].execute(decoded).normalized_multiset()
        assert gold_result == decoded_result, (kind, decoded)

    def test_v1_podium_decode_fails_on_ambiguous_edge(self, football, v1_schema):
        intent = make_intent("cup_winner", year=2014)
        gold = compile_intent(intent, "v1")
        semql = encode_sql(parse_sql(gold), v1_schema)
        with pytest.raises(AmbiguousEdgeError):
            decode_semql(semql, SchemaGraph(v1_schema))

    def test_decode_rebuilds_group_by(self, football):
        """IRNet heuristic: group by the non-aggregated projections."""
        schema = football["v3"].schema
        graph = SchemaGraph(schema)
        intent = make_intent("teams_multiple_titles")
        gold = compile_intent(intent, "v3")
        decoded = decode_semql(encode_sql(parse_sql(gold), schema), graph)
        assert decoded.group_by, "GROUP BY must be re-derived"
        gold_result = football["v3"].execute(gold).normalized_multiset()
        decoded_result = football["v3"].execute(format_query(decoded)).normalized_multiset()
        assert gold_result == decoded_result

    def test_decode_with_subquery(self, football):
        schema = football["v3"].schema
        graph = SchemaGraph(schema)
        intent = make_intent("never_won")
        gold = compile_intent(intent, "v3")
        decoded = format_query(decode_semql(encode_sql(parse_sql(gold), schema), graph))
        assert "NOT IN" in decoded
        gold_result = football["v3"].execute(gold).normalized_multiset()
        decoded_result = football["v3"].execute(decoded).normalized_multiset()
        assert gold_result == decoded_result
