"""Retrieval index and sketch transfer tests."""

import pytest

from repro.systems import RetrievalIndex, transfer_sketch


class TestRetrievalIndex:
    PAIRS = [
        ("Who won the world cup in 2014?", "SELECT w14"),
        ("Who won the world cup in 2018?", "SELECT w18"),
        ("How tall is Marlu Ferratorez?", "SELECT h"),
        ("Which clubs did Sahoff Morpera play for?", "SELECT c"),
    ]

    def test_retrieves_most_similar_first(self):
        index = RetrievalIndex()
        index.fit(self.PAIRS)
        top = index.retrieve("Who won the world cup in 2010?", k=2)
        assert top[0][2] in ("SELECT w14", "SELECT w18")
        assert top[0][0] > 0.8

    def test_exact_match_is_perfect(self):
        index = RetrievalIndex()
        index.fit(self.PAIRS)
        score, question, _ = index.retrieve("Who won the world cup in 2014?")[0]
        assert question == "Who won the world cup in 2014?"
        assert score == pytest.approx(1.0)

    def test_empty_index(self):
        index = RetrievalIndex()
        index.fit([])
        assert index.retrieve("anything") == []
        assert index.best_similarity("anything") == 0.0

    def test_ranked_examples_order(self):
        index = RetrievalIndex()
        index.fit(self.PAIRS)
        ranked = index.ranked_examples("Who won the world cup in 2014?", k=3)
        assert ranked[0][0] == "Who won the world cup in 2014?"
        assert len(ranked) == 3


class TestSketchTransfer:
    def test_year_substitution(self):
        sketch = "SELECT host_country FROM world_cup WHERE year = 2014"
        adapted = transfer_sketch(
            sketch, "Where was the 2014 cup?", "Where was the 2018 cup?"
        )
        assert "2018" in adapted
        assert "2014" not in adapted

    def test_entity_substitution(self):
        sketch = (
            "SELECT T2.teamname FROM plays_match AS T1 JOIN national_team AS T2 "
            "ON T1.team_id = T2.team_id WHERE T2.teamname ILIKE '%Peru%' "
            "AND T1.year = 2010"
        )
        adapted = transfer_sketch(
            sketch,
            "How many matches did Peru play in 2010?",
            "How many matches did Germany play in 2014?",
        )
        assert "'%Germany%'" in adapted
        assert "Peru" not in adapted
        assert "2014" in adapted

    def test_two_entities_positional(self):
        sketch = (
            "SELECT 1 WHERE a ILIKE '%Peru%' AND b ILIKE '%Chile%' AND year = 2010"
        )
        adapted = transfer_sketch(
            sketch,
            "score of Peru against Chile in 2010",
            "What was the score between Germany and Brazil in 2014?",
        )
        assert "'%Germany%'" in adapted
        assert "'%Brazil%'" in adapted
        assert "2014" in adapted

    def test_no_values_in_target_keeps_sketch(self):
        sketch = "SELECT host_country FROM world_cup WHERE year = 2014"
        assert (
            transfer_sketch(sketch, "source?", "which teams ever won the title?")
            == sketch
        )

    def test_interrogatives_are_not_entities(self):
        sketch = "SELECT 1 WHERE a ILIKE '%Peru%'"
        adapted = transfer_sketch(sketch, "q", "Which players are taller than average?")
        assert "'%Peru%'" in adapted  # 'Which' must not be substituted
