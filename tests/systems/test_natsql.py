"""NatSQL IR tests (the wider-coverage counterpart to SemQL)."""

import pytest

from repro.footballdb import schema_v1
from repro.sqlengine import parse_sql
from repro.systems import (
    SemqlUnsupportedError,
    encode_natsql,
    encode_sql,
    natsql_round_trip,
)
from repro.workload import compile_intent, make_intent


@pytest.fixture(scope="module")
def v1_schema():
    return schema_v1.build_schema()


class TestCoverage:
    def test_repeated_instances_supported(self, v1_schema):
        """The Figure 4 v1 query: SemQL rejects, NatSQL accepts."""
        intent = make_intent("match_score", team_a="Germany", team_b="Brazil", year=2014)
        gold = compile_intent(intent, "v1")
        with pytest.raises(SemqlUnsupportedError):
            encode_sql(parse_sql(gold), v1_schema)
        round_tripped = natsql_round_trip(gold, v1_schema)
        assert round_tripped == gold

    def test_or_join_supported(self, v1_schema):
        intent = make_intent("match_count_team", team="Brazil", year=2014)
        gold = compile_intent(intent, "v1")
        assert natsql_round_trip(gold, v1_schema) == gold

    def test_set_operation_supported(self, v1_schema):
        sql = "SELECT teamname FROM national_team UNION SELECT host_country FROM world_cup"
        assert natsql_round_trip(sql, v1_schema) == sql

    def test_arithmetic_order_by_supported(self, v1_schema):
        intent = make_intent("biggest_win_cup", year=2014)
        gold = compile_intent(intent, "v1")
        assert natsql_round_trip(gold, v1_schema) == gold

    def test_left_join_still_rejected(self, v1_schema):
        sql = (
            "SELECT T1.teamname FROM national_team AS T1 "
            "LEFT JOIN world_cup AS T2 ON T2.winner = T1.team_id"
        )
        with pytest.raises(SemqlUnsupportedError):
            natsql_round_trip(sql, v1_schema)

    def test_case_still_rejected(self, v1_schema):
        sql = "SELECT CASE WHEN founded > 1900 THEN 'new' ELSE 'old' END FROM national_team"
        with pytest.raises(SemqlUnsupportedError):
            natsql_round_trip(sql, v1_schema)


class TestRoundTripSemantics:
    def test_all_v1_gold_kinds_round_trip(self, universe, v1_schema, football):
        """Every trainable v1 gold query survives NatSQL unchanged."""
        from repro.workload import ALL_KINDS, IntentSampler

        sampler = IntentSampler(universe, seed=91)
        for kind in ALL_KINDS:
            gold = compile_intent(sampler.sample_intent(kind), "v1")
            round_tripped = natsql_round_trip(gold, v1_schema)
            a = football["v1"].execute(gold).normalized_multiset()
            b = football["v1"].execute(round_tripped).normalized_multiset()
            assert a == b, kind

    def test_decode_is_a_copy_not_alias(self, v1_schema):
        from repro.systems import decode_natsql, encode_natsql

        ast = parse_sql("SELECT teamname FROM national_team WHERE team_id = 1")
        program = encode_natsql(ast, v1_schema)
        decoded = decode_natsql(program)
        assert decoded is not program.tree


class TestValueNetNatSQL:
    def test_v1_match_questions_survive(self, universe, football):
        from repro.benchmark import build_benchmark
        from repro.systems import GoldOracle, ValueNetNatSQL

        dataset = build_benchmark(universe)
        system = ValueNetNatSQL(
            football["v1"], GoldOracle(dataset.gold_lookup("v1"))
        )
        system.fine_tune(dataset.train_pairs("v1"))
        match_examples = [
            e for e in dataset.test_examples if e.intent.kind == "match_score"
        ]
        assert match_examples
        for example in match_examples:
            prediction = system.predict(example.question)
            assert prediction.sql is not None, example.question

    def test_trainability_gate_is_wider(self, universe, football):
        from repro.benchmark import build_benchmark
        from repro.systems import GoldOracle, ValueNet, ValueNetNatSQL

        dataset = build_benchmark(universe)
        semql_system = ValueNet(football["v1"], GoldOracle({}))
        natsql_system = ValueNetNatSQL(football["v1"], GoldOracle({}))
        pairs = dataset.train_pairs("v1")
        semql_system.fine_tune(pairs)
        natsql_system.fine_tune(pairs)
        assert natsql_system.dropped_pairs < semql_system.dropped_pairs
