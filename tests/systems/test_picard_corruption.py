"""PICARD validation/constrained decoding and corruption operators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.footballdb import schema_v1, schema_v3
from repro.sqlengine import parse_sql
from repro.systems import constrained_decode, corrupt, is_valid_sql, validate_sql
from repro.systems.picard import IncrementalParser
from repro.workload import IntentSampler, compile_intent


@pytest.fixture(scope="module")
def v1_schema():
    return schema_v1.build_schema()


@pytest.fixture(scope="module")
def v3_schema():
    return schema_v3.build_schema()


class TestValidation:
    def test_valid_query(self, v1_schema):
        assert is_valid_sql("SELECT teamname FROM national_team", v1_schema)

    def test_unknown_table(self, v1_schema):
        errors = validate_sql("SELECT x FROM nonexistent", v1_schema)
        assert any("unknown table" in e for e in errors)

    def test_unknown_column(self, v1_schema):
        errors = validate_sql("SELECT wrong_col FROM national_team", v1_schema)
        assert any("unknown column" in e for e in errors)

    def test_wrong_alias_column(self, v1_schema):
        errors = validate_sql(
            "SELECT T1.player_name FROM national_team AS T1", v1_schema
        )
        assert errors

    def test_alias_scoping(self, v1_schema):
        sql = (
            "SELECT T1.teamname FROM national_team AS T1 "
            "JOIN world_cup AS T2 ON T2.winner = T1.team_id WHERE T2.year = 2014"
        )
        assert is_valid_sql(sql, v1_schema)

    def test_subquery_correlated_reference_valid(self, v1_schema):
        sql = (
            "SELECT T1.teamname FROM national_team AS T1 WHERE EXISTS "
            "(SELECT * FROM world_cup AS T2 WHERE T2.winner = T1.team_id)"
        )
        assert is_valid_sql(sql, v1_schema)

    def test_syntax_error(self, v1_schema):
        errors = validate_sql("SELEC x FRM t", v1_schema)
        assert any("parse" in e for e in errors)

    def test_ambiguous_unqualified_column(self, v1_schema):
        sql = (
            "SELECT year FROM match AS T1 JOIN world_cup AS T2 ON T1.year = T2.year"
        )
        errors = validate_sql(sql, v1_schema)
        assert any("ambiguous" in e for e in errors)


class TestIncrementalParser:
    def test_extendable_prefixes_are_feasible(self, v1_schema):
        parser = IncrementalParser(v1_schema)
        prefixes = [
            "SELECT",
            "SELECT teamname",
            "SELECT teamname FROM",
            "SELECT teamname FROM national_team WHERE",
            "SELECT teamname FROM national_team WHERE team_id =",
        ]
        for prefix in prefixes:
            assert parser.feasible(prefix), prefix

    def test_complete_statement_is_feasible(self, v1_schema):
        parser = IncrementalParser(v1_schema)
        assert parser.feasible("SELECT teamname FROM national_team")

    def test_broken_prefix_is_infeasible(self, v1_schema):
        parser = IncrementalParser(v1_schema)
        assert not parser.feasible("SELECT FROM FROM")
        assert not parser.feasible("SELECT a b c d")

    def test_first_infeasible_token(self, v1_schema):
        parser = IncrementalParser(v1_schema)
        index = parser.first_infeasible_token("SELECT a WHERE WHERE x")
        assert index is not None
        assert parser.first_infeasible_token("SELECT a FROM t") is None


class TestConstrainedDecode:
    def test_picks_first_valid(self, v1_schema):
        beam = [
            "SELECT nope FROM nowhere",
            "SELECT teamname FROM national_team",
            "SELECT founded FROM national_team",
        ]
        sql, attempts = constrained_decode(beam, v1_schema)
        assert sql == "SELECT teamname FROM national_team"
        assert attempts == 2

    def test_rejects_all(self, v1_schema):
        beam = ["SELECT x FROM nope", "garbage ( select"]
        sql, attempts = constrained_decode(beam, v1_schema)
        assert sql is None
        assert attempts == 2


class TestCorruption:
    def sample_gold(self, universe, version, count=20):
        sampler = IntentSampler(universe, seed=77)
        return [compile_intent(sampler.sample_intent(), version) for _ in range(count)]

    def test_candidates_differ_from_gold(self, universe, v3_schema):
        for gold in self.sample_gold(universe, "v3"):
            for candidate in corrupt(gold, v3_schema, seed=5):
                assert candidate != gold

    def test_candidates_are_valid_sql(self, universe, v3_schema):
        for gold in self.sample_gold(universe, "v3"):
            for candidate in corrupt(gold, v3_schema, seed=6):
                assert is_valid_sql(candidate, v3_schema), candidate

    def test_invalid_candidates_when_allowed(self, universe, v1_schema):
        invalid_seen = False
        for index, gold in enumerate(self.sample_gold(universe, "v1", count=40)):
            beam = corrupt(gold, v1_schema, seed=index, allow_invalid=True)
            if any(not is_valid_sql(c, v1_schema) for c in beam):
                invalid_seen = True
                break
        assert invalid_seen

    def test_deterministic(self, universe, v3_schema):
        gold = self.sample_gold(universe, "v3", count=1)[0]
        assert corrupt(gold, v3_schema, seed=42) == corrupt(gold, v3_schema, seed=42)

    def test_different_seeds_vary(self, universe, v3_schema):
        gold = self.sample_gold(universe, "v3", count=1)[0]
        outcomes = {tuple(corrupt(gold, v3_schema, seed=s)) for s in range(8)}
        assert len(outcomes) > 1

    def test_never_empty(self, v3_schema):
        beam = corrupt("SELECT teamname FROM national_team", v3_schema, seed=1)
        assert beam

    def test_union_branch_drop_applies_to_set_queries(self, universe, v1_schema):
        from repro.workload import make_intent

        gold = compile_intent(
            make_intent("match_score", team_a="Germany", team_b="Brazil", year=2014),
            "v1",
        )
        dropped = [
            c
            for s in range(12)
            for c in corrupt(gold, v1_schema, seed=s)
            if "UNION" not in c
        ]
        assert dropped, "some corruption should drop the UNION branch"

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_property_corruption_always_differs(self, seed):
        from repro.footballdb import schema_v3

        schema = schema_v3.build_schema()
        gold = (
            "SELECT T2.teamname FROM world_cup_result AS T1 "
            "JOIN national_team AS T2 ON T1.team_id = T2.team_id "
            "WHERE T1.year = 2014 AND T1.winner = 'True'"
        )
        for candidate in corrupt(gold, schema, seed=seed):
            assert candidate != gold


# ---------------------------------------------------------------------------
# Per-operator corruption semantics (table-driven)
# ---------------------------------------------------------------------------
#
# Each mechanistic operator must, on every seed schema where its trigger
# structure exists, produce candidates that are *executable but wrong*
# (different result multiset than gold) or *invalid and filtered* (caught
# by the PICARD validator).  Where a data model removes the trigger
# structure entirely (v3 has no set operations), the operator must
# decline (return None) rather than emit a broken query.

import random as _random

from repro.footballdb import schema_v2
from repro.footballdb.morph import result_signature
from repro.sqlengine import EngineError, format_query
from repro.systems.corruption import (
    _drop_filter,
    _drop_order_and_limit,
    _drop_union_branch,
    _truncate_value,
    _wrong_aggregate,
    _wrong_join_column,
    _wrong_projection_column,
    _wrong_year,
)
from repro.workload import make_intent

#: operator -> (intent kwargs, versions where the trigger structure exists)
OPERATOR_CASES = {
    _wrong_year: (
        dict(kind="cup_winner", year=2014),
        ("v1", "v2", "v3"),
    ),
    _drop_filter: (
        dict(kind="squad_list", team="Germany", year=2014),
        ("v1", "v2", "v3"),
    ),
    _wrong_join_column: (
        # On v2 the team_id -> opponent_team_id confusion references a
        # column the bridge tables don't have: every candidate is
        # schema-invalid and PICARD-filtered, which the test accepts.
        dict(kind="match_score", team_a="Germany", team_b="Brazil", year=2014),
        ("v1", "v2", "v3"),
    ),
    _drop_union_branch: (
        dict(kind="match_score", team_a="Germany", team_b="Brazil", year=2014),
        ("v1", "v2"),  # v3 eliminates every set operation (Table 3)
    ),
    _wrong_aggregate: (
        dict(kind="team_goals_cup", team="Germany", year=2014),
        ("v1", "v2", "v3"),
    ),
    _truncate_value: (
        dict(kind="squad_list", team="Germany", year=2014),
        ("v1", "v2", "v3"),
    ),
    _drop_order_and_limit: (
        dict(kind="top_scorer_cup", year=2014),
        ("v1", "v2", "v3"),
    ),
    _wrong_projection_column: (
        dict(kind="final_score", year=2014),
        ("v1", "v2", "v3"),
    ),
}

_SCHEMAS = {
    "v1": schema_v1.build_schema,
    "v2": schema_v2.build_schema,
    "v3": schema_v3.build_schema,
}


class TestOperatorTable:
    @pytest.mark.parametrize(
        "operator", list(OPERATOR_CASES), ids=lambda op: op.__name__
    )
    @pytest.mark.parametrize("version", ["v1", "v2", "v3"])
    def test_operator_yields_wrong_or_filtered_candidates(
        self, operator, version, football
    ):
        intent_kwargs, applicable = OPERATOR_CASES[operator]
        schema = _SCHEMAS[version]()
        gold = compile_intent(make_intent(**intent_kwargs), version)
        database = football[version]
        gold_result = result_signature(database.execute(gold))
        wrong, filtered, applied = 0, 0, 0
        for seed in range(6):
            mutated = operator(parse_sql(gold), _random.Random(seed))
            if mutated is None:
                continue
            applied += 1
            candidate = format_query(mutated)
            assert candidate != gold, (operator.__name__, version)
            if not is_valid_sql(candidate, schema):
                filtered += 1  # PICARD removes it from the beam
                continue
            try:
                observed = result_signature(database.execute(candidate))
            except EngineError:  # executable-but-failing is also filtered
                filtered += 1
                continue
            if observed != gold_result:
                wrong += 1
        if version not in applicable:
            assert applied == 0, (
                f"{operator.__name__} should not trigger on {version}"
            )
            return
        assert applied > 0, f"{operator.__name__} never applied on {version}"
        assert wrong + filtered > 0, (
            f"{operator.__name__} on {version}: no wrong or filtered candidate"
        )
        # The dominant error class is executable-but-wrong; every operator
        # must produce at least one such candidate somewhere in the sweep
        # unless everything it emitted was schema-invalid (and filtered).
        assert wrong > 0 or filtered == applied

    @pytest.mark.parametrize("version", ["v1", "v2", "v3"])
    def test_full_beam_candidates_execute_or_are_invalid(self, version, football):
        """corrupt() end to end: every beam member parses+executes or is
        schema-invalid; none equals the gold text."""
        schema = _SCHEMAS[version]()
        database = football[version]
        intents = [
            make_intent(kind="cup_winner", year=2014),
            make_intent(kind="squad_list", team="Germany", year=2014),
            make_intent(kind="match_score", team_a="Germany", team_b="Brazil", year=2014),
        ]
        for intent in intents:
            gold = compile_intent(intent, version)
            for seed in (0, 3):
                for candidate in corrupt(
                    gold, schema, seed=seed, allow_invalid=True
                ):
                    assert candidate != gold
                    if is_valid_sql(candidate, schema):
                        database.execute(candidate)  # must not raise
