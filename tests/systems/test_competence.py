"""Competence model unit tests (monotonicity and feature handling)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.systems import CompetenceProfile, build_features
from repro.systems.competence import (
    CompetenceFeatures,
    fuzzy_grounding_fraction,
    grounding_fraction,
)

PROFILE = CompetenceProfile(
    base=-2.0,
    train_curve=1.0,
    train_tail=0.3,
    retrieval=0.5,
    shots_curve=0.4,
    hardness_penalty=0.4,
    join_penalty=0.2,
    set_penalty=0.5,
    subquery_penalty=0.3,
    grounding_gain=0.8,
    keys_join_gain=0.3,
    version_adjust={"v1": 0.1, "v3": -0.1},
)


def features(**overrides) -> CompetenceFeatures:
    defaults = dict(
        hardness=2, joins=1, has_set_operation=False, subqueries=0,
        grounding=1.0, retrieval_similarity=0.8, train_size=100, shots=0,
    )
    defaults.update(overrides)
    return CompetenceFeatures(**defaults)


class TestProbability:
    def test_bounded(self):
        p = PROFILE.probability(features(), "v1", True)
        assert 0.0 < p < 1.0

    def test_more_training_helps(self):
        low = PROFILE.probability(features(train_size=0), "v1", True)
        mid = PROFILE.probability(features(train_size=100), "v1", True)
        high = PROFILE.probability(features(train_size=300), "v1", True)
        assert low < mid < high

    def test_harder_queries_are_less_likely(self):
        easy = PROFILE.probability(features(hardness=1), "v1", True)
        extra = PROFILE.probability(features(hardness=4), "v1", True)
        assert extra < easy

    def test_set_operations_penalized(self):
        plain = PROFILE.probability(features(), "v1", True)
        with_set = PROFILE.probability(features(has_set_operation=True), "v1", True)
        assert with_set < plain

    def test_keys_bonus_requires_fk_flag(self):
        with_keys = PROFILE.probability(features(joins=3), "v1", True)
        without = PROFILE.probability(features(joins=3), "v1", False)
        assert with_keys > without

    def test_keys_bonus_grows_with_joins(self):
        few = PROFILE.probability(features(joins=1), "v1", True) / PROFILE.probability(
            features(joins=1), "v1", False
        )
        many = PROFILE.probability(features(joins=3), "v1", True) / PROFILE.probability(
            features(joins=3), "v1", False
        )
        assert many > few

    def test_version_adjust(self):
        v1 = PROFILE.probability(features(), "v1", True)
        v2 = PROFILE.probability(features(), "v2", True)
        v3 = PROFILE.probability(features(), "v3", True)
        assert v1 > v2 > v3

    def test_shots_help(self):
        zero = PROFILE.probability(features(shots=0), "v1", True)
        ten = PROFILE.probability(features(shots=10), "v1", True)
        assert ten > zero

    @given(
        st.integers(min_value=0, max_value=895),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_probability_in_unit_interval(self, train, hardness, grounding):
        p = PROFILE.probability(
            features(train_size=train, hardness=hardness, grounding=grounding),
            "v2",
            True,
        )
        assert 0.0 <= p <= 1.0


class TestGrounding:
    def test_fully_grounded(self):
        question = "How many goals did Germany score in 2014?"
        sql = "SELECT count(*) FROM t WHERE name ILIKE '%Germany%' AND year = 2014"
        assert grounding_fraction(question, sql) == 1.0

    def test_lexical_gap_detected(self):
        """'second place' vs prize = 'runner_up' — the v2 problem."""
        question = "How many times did Germany finish second place?"
        sql = (
            "SELECT count(*) FROM world_cup_result WHERE prize = 'runner_up' "
            "AND teamname ILIKE '%Germany%'"
        )
        assert grounding_fraction(question, sql) < 1.0

    def test_boolean_columns_always_grounded(self):
        """v3's winner = 'True' carries no content literal."""
        question = "How many times did Germany win the world cup?"
        sql = (
            "SELECT count(*) FROM world_cup_result WHERE winner = 'True' "
            "AND teamname ILIKE '%Germany%'"
        )
        assert grounding_fraction(question, sql) == 1.0

    def test_no_literals_is_fully_grounded(self):
        assert grounding_fraction("list all teams", "SELECT teamname FROM t") == 1.0

    def test_fuzzy_recovers_typo(self):
        question = "How many goals did Germny score in 2014?"  # typo
        sql = "SELECT count(*) FROM t WHERE name ILIKE '%Germany%' AND year = 2014"
        strict = grounding_fraction(question, sql)
        fuzzy = fuzzy_grounding_fraction(question, sql)
        assert strict < 1.0
        assert fuzzy > strict

    def test_fuzzy_does_not_invent_groundings(self):
        question = "Who coached Brazil?"
        sql = "SELECT coach FROM t WHERE name ILIKE '%Argentina%'"
        assert fuzzy_grounding_fraction(question, sql) == 0.0


class TestBuildFeatures:
    def test_features_from_gold(self):
        sql = (
            "SELECT a FROM t JOIN u ON t.x = u.x WHERE t.name ILIKE '%Brazil%' "
            "UNION SELECT a FROM t JOIN u ON t.x = u.x WHERE u.name ILIKE '%Brazil%'"
        )
        f = build_features("score of Brazil?", sql, 0.7, 200)
        assert f.has_set_operation is True
        assert f.joins == 2
        assert f.train_size == 200
        assert f.retrieval_similarity == 0.7
