"""Shared fixtures for system tests (session FootballDB + schemas)."""

from __future__ import annotations

import pytest

from repro.footballdb import FootballDB, Universe, build_universe, load_all
from repro.footballdb import schema_v1, schema_v2, schema_v3
from repro.systems import SchemaGraph


@pytest.fixture(scope="session")
def universe() -> Universe:
    return build_universe(seed=2022)


@pytest.fixture(scope="session")
def football(universe) -> FootballDB:
    return load_all(universe=universe)


@pytest.fixture(scope="session")
def graph_v1() -> SchemaGraph:
    return SchemaGraph(schema_v1.build_schema())


@pytest.fixture(scope="session")
def graph_v2() -> SchemaGraph:
    return SchemaGraph(schema_v2.build_schema())


@pytest.fixture(scope="session")
def graph_v3() -> SchemaGraph:
    return SchemaGraph(schema_v3.build_schema())
