"""Join-path inference tests — the v1 pathology in isolation."""

import pytest

from repro.systems import AmbiguousEdgeError, NoPathError, SchemaGraph
from repro.systems.joinpath import JoinEdge


class TestEdgeResolution:
    def test_single_edge_resolves(self, graph_v3):
        edge = graph_v3.edge_between("plays_match", "national_team")
        assert {edge.left_table, edge.right_table} == {"plays_match", "national_team"}
        assert "team_id" in (edge.left_column, edge.right_column)

    def test_v1_match_team_pair_is_ambiguous(self, graph_v1):
        """Two FK edges (home/away) — the paper's core failure."""
        with pytest.raises(AmbiguousEdgeError):
            graph_v1.edge_between("match", "national_team")

    def test_v1_world_cup_team_pair_is_ambiguous(self, graph_v1):
        """Four FK edges (winner … fourth)."""
        with pytest.raises(AmbiguousEdgeError):
            graph_v1.edge_between("world_cup", "national_team")

    def test_v2_remodeling_removes_ambiguity(self, graph_v2):
        edge = graph_v2.edge_between("plays_as_home", "national_team")
        assert isinstance(edge, JoinEdge)
        edge = graph_v2.edge_between("world_cup_result", "national_team")
        assert isinstance(edge, JoinEdge)

    def test_no_edge_raises(self, graph_v1):
        with pytest.raises(NoPathError):
            graph_v1.edge_between("player", "stadium")

    def test_edge_is_oriented_from_left_argument(self, graph_v3):
        a = graph_v3.edge_between("plays_match", "world_cup")
        b = graph_v3.edge_between("world_cup", "plays_match")
        assert a.left_table.lower() == "plays_match"
        assert b.left_table.lower() == "world_cup"


class TestShortestPath:
    def test_direct_neighbours(self, graph_v3):
        path = graph_v3.shortest_path("plays_match", "national_team")
        assert path == ["plays_match", "national_team"]

    def test_two_hop_path(self, graph_v3):
        path = graph_v3.shortest_path("match_fact", "national_team")
        assert path[0] == "match_fact"
        assert path[-1] == "national_team"
        assert len(path) == 3  # via plays_match

    def test_same_table(self, graph_v3):
        assert graph_v3.shortest_path("player", "player") == ["player"]

    def test_disconnected_raises(self, graph_v1):
        # club_league_hist has no declared FKs in v1.
        with pytest.raises(NoPathError):
            graph_v1.shortest_path("club_league_hist", "player")


class TestJoinPath:
    def test_connects_three_tables(self, graph_v3):
        edges = graph_v3.join_path(["match_fact", "plays_match", "stadium"])
        tables = {edge.left_table.lower() for edge in edges} | {
            edge.right_table.lower() for edge in edges
        }
        assert tables == {"match_fact", "plays_match", "stadium"}

    def test_intermediate_tables_added(self, graph_v3):
        # player and national_team connect only through player_fact.
        edges = graph_v3.join_path(["player", "national_team"])
        touched = {edge.left_table.lower() for edge in edges} | {
            edge.right_table.lower() for edge in edges
        }
        assert "player_fact" in touched

    def test_v1_podium_join_fails(self, graph_v1):
        with pytest.raises(AmbiguousEdgeError):
            graph_v1.join_path(["world_cup", "national_team"])

    def test_v1_undeclared_bridge_fails(self, graph_v1):
        """player -> club needs player_club_team, which has no FKs in v1."""
        with pytest.raises(NoPathError):
            graph_v1.join_path(["player", "club"])

    def test_v3_declared_bridge_succeeds(self, graph_v3):
        """The v3 redesign declared the bridge FKs."""
        edges = graph_v3.join_path(["player", "club"])
        touched = {edge.left_table.lower() for edge in edges} | {
            edge.right_table.lower() for edge in edges
        }
        assert "player_club_team" in touched

    def test_empty_and_single_inputs(self, graph_v3):
        assert graph_v3.join_path([]) == []
        assert graph_v3.join_path(["player"]) == []

    def test_deterministic(self, graph_v3):
        a = graph_v3.join_path(["match_fact", "stadium", "national_team"])
        b = graph_v3.join_path(["match_fact", "stadium", "national_team"])
        assert a == b
