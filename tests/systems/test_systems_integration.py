"""System-level integration tests.

These verify *mechanisms*, not calibrated accuracy numbers: the shape
constraints the paper's analysis rests on (pipeline failure modes per
data model, keys effects, determinism, spec metadata).
"""

import pytest

from repro.benchmark import build_benchmark
from repro.systems import (
    ALL_SYSTEMS,
    GPT35,
    GoldOracle,
    Llama2,
    T5Picard,
    T5PicardKeys,
    ValueNet,
    is_valid_sql,
)
from repro.workload import compile_intent, make_intent, realize


@pytest.fixture(scope="module")
def dataset(universe):
    return build_benchmark(universe)


@pytest.fixture(scope="module")
def oracles(dataset):
    return {
        version: GoldOracle(dataset.gold_lookup(version))
        for version in ("v1", "v2", "v3")
    }


class TestSpecs:
    def test_table4_dimensions(self):
        """The Table 4 matrix of the paper."""
        specs = {cls.spec.name: cls.spec for cls in ALL_SYSTEMS}
        assert specs["ValueNet"].output_space == "IR"
        assert specs["ValueNet"].uses_db_content is True
        assert specs["T5-Picard"].uses_foreign_keys is False
        assert specs["T5-Picard_Keys"].uses_foreign_keys is True
        assert specs["GPT-3.5"].post_processing == "N/A"
        assert specs["LLaMA2-70B"].gpu_count == 4

    def test_table4_rows_render(self):
        for cls in ALL_SYSTEMS:
            row = cls.spec.table4_row()
            assert set(row) == {
                "Scale (#Params)", "DB Schema w/ FK", "DB Content",
                "Output Specification", "Query Normalization", "Value Finder",
                "Conversion to IR", "Post-processing",
            }


class TestValueNetPipeline:
    def test_figure4_question_fails_in_v1(self, football, oracles, dataset):
        """The paper's running example must die in v1 post-processing."""
        system = ValueNet(football["v1"], oracles["v1"])
        system.fine_tune(dataset.train_pairs("v1"))
        example = next(
            e for e in dataset.examples if e.intent.kind == "match_score"
        )
        prediction = system.predict(example.question)
        assert prediction.sql is None
        assert prediction.failure in ("ir_unsupported", "join_path_ambiguous")

    def test_same_question_survives_in_v3(self, football, oracles, dataset):
        system = ValueNet(football["v3"], oracles["v3"])
        system.fine_tune(dataset.train_pairs("v3"))
        failures = 0
        for example in dataset.test_examples:
            if example.intent.kind != "match_score":
                continue
            prediction = system.predict(example.question)
            if prediction.sql is None:
                failures += 1
        assert failures == 0

    def test_training_pairs_dropped_by_spider_gate(self, football, oracles, dataset):
        """The paper's '105 of 1K cannot be processed' phenomenon."""
        system = ValueNet(football["v1"], oracles["v1"])
        system.fine_tune(dataset.train_pairs("v1"))
        assert system.dropped_pairs > 0
        assert system.effective_train_size < len(dataset.train_pairs("v1"))

    def test_v3_drops_fewer_training_pairs(self, football, oracles, dataset):
        v1 = ValueNet(football["v1"], oracles["v1"])
        v1.fine_tune(dataset.train_pairs("v1"))
        v3 = ValueNet(football["v3"], oracles["v3"])
        v3.fine_tune(dataset.train_pairs("v3"))
        assert v3.dropped_pairs < v1.dropped_pairs

    def test_predictions_are_valid_sql(self, football, oracles, dataset):
        system = ValueNet(football["v3"], oracles["v3"])
        system.fine_tune(dataset.train_pairs("v3"))
        for example in dataset.test_examples[:30]:
            prediction = system.predict(example.question)
            if prediction.sql is not None:
                assert is_valid_sql(prediction.sql, football["v3"].schema)


class TestPicardSystems:
    def test_never_emits_invalid_sql(self, football, oracles, dataset):
        """PICARD's guarantee: every emission parses and resolves."""
        for version in ("v1", "v3"):
            system = T5Picard(football[version], oracles[version])
            system.fine_tune(dataset.train_pairs(version, limit=100))
            for example in dataset.test_examples[:40]:
                prediction = system.predict(example.question)
                if prediction.sql is not None:
                    assert is_valid_sql(prediction.sql, football[version].schema), (
                        prediction.sql
                    )

    def test_unconstrained_ablation_can_emit_invalid(self, football, oracles, dataset):
        system = T5Picard(football["v1"], oracles["v1"], use_picard=False)
        system.fine_tune(dataset.train_pairs("v1", limit=100))
        invalid = 0
        for example in dataset.test_examples:
            prediction = system.predict(example.question)
            if prediction.sql is not None and not is_valid_sql(
                prediction.sql, football["v1"].schema
            ):
                invalid += 1
        assert invalid > 0

    def test_keys_variant_latency_is_lower(self, football, oracles, dataset):
        base = T5Picard(football["v1"], oracles["v1"])
        keys = T5PicardKeys(football["v1"], oracles["v1"])
        base.fine_tune(dataset.train_pairs("v1"))
        keys.fine_tune(dataset.train_pairs("v1"))
        base_latency = sum(
            base.predict(e.question).latency_seconds for e in dataset.test_examples[:25]
        )
        keys_latency = sum(
            keys.predict(e.question).latency_seconds for e in dataset.test_examples[:25]
        )
        assert keys_latency < base_latency


class TestLlmSystems:
    def test_llama_shot_truncation(self, football, oracles, dataset):
        """4K context cannot hold 30 FootballDB examples."""
        system = Llama2(football["v1"], oracles["v1"])
        system.fine_tune(dataset.train_pairs("v1", limit=30))
        assert system.shots_that_fit() < 30

    def test_gpt_holds_thirty_shots(self, football, oracles, dataset):
        system = GPT35(football["v1"], oracles["v1"])
        system.fine_tune(dataset.train_pairs("v1", limit=30))
        assert system.shots_that_fit() == 30

    def test_zero_shot_still_predicts(self, football, oracles):
        system = GPT35(football["v1"], oracles["v1"])
        system.fine_tune([])
        prediction = system.predict("Who won the world cup in 2014?")
        assert prediction.sql is not None


class TestDeterminism:
    @pytest.mark.parametrize("system_cls", [ValueNet, T5Picard, GPT35])
    def test_same_seed_same_predictions(self, football, oracles, dataset, system_cls):
        def run():
            system = system_cls(football["v3"], oracles["v3"], fold=1)
            system.fine_tune(dataset.train_pairs("v3", limit=100))
            return [
                system.predict(e.question).sql for e in dataset.test_examples[:20]
            ]

        assert run() == run()

    def test_folds_differ(self, football, oracles, dataset):
        def run(fold):
            system = GPT35(football["v3"], oracles["v3"], fold=fold)
            system.fine_tune(dataset.train_pairs("v3", limit=20))
            return [
                system.predict(e.question).sql for e in dataset.test_examples[:40]
            ]

        assert run(0) != run(1)


class TestDeploymentFallback:
    """Without the oracle, systems fall back to genuine retrieval."""

    def test_retrieval_transfer_answers_seen_template(self, football, dataset):
        system = T5Picard(football["v3"], oracle=None)
        system.fine_tune(dataset.train_pairs("v3"))
        # A fresh question matching a trained template with a new year.
        example = next(
            e for e in dataset.train_examples if e.intent.kind == "cup_winner"
        )
        prediction = system.predict(example.question)
        assert prediction.sql is not None

    def test_no_training_no_candidate(self, football):
        system = T5Picard(football["v3"], oracle=None)
        system.fine_tune([])
        prediction = system.predict("Who won the world cup in 2014?")
        assert prediction.sql is None
        assert prediction.failure is not None
