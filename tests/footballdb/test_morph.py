"""Schema morphing: validity, determinism, migration and equivalence.

The heavyweight execution-equivalence sweeps live in
``tests/sqlengine/test_differential_sqlite.py`` (engine vs sqlite3 on a
compact mirror schema) and ``scripts/verify_morphs.py`` (full benchmark,
run by the CI morph smoke job); here we pin down the morpher's contract
on the real FootballDB: every derived schema is valid and distinct, the
migrated data is complete, rewrites stay executable, and a seeded probe
workload returns base-identical results.
"""

from __future__ import annotations

import pytest

from repro.footballdb import (
    DEFAULT_OPERATORS,
    MorphError,
    SchemaMorpher,
    load_version,
    verify_morph,
)
from repro.footballdb.morph import result_signature
from repro.sqlengine import Database, Schema, make_column, parse_sql
from repro.workload import compile_intent
from repro.workload.catalogue import IntentSampler

#: a cross-section of intent kinds covering every structural family the
#: gold compiler emits: UNION symmetry, OR-joins, EXCEPT, NOT IN,
#: GROUP BY/HAVING, scalar subqueries, ORDER BY + LIMIT, plain lookups.
PROBE_KINDS = (
    "match_score",
    "match_count_team",
    "cup_winner",
    "never_won",
    "teams_multiple_titles",
    "taller_than_avg",
    "top_scorer_cup",
    "squad_list",
    "club_league",
    "final_stadium",
    "cards_in_cup",
    "matches_in_cup",
)


@pytest.fixture(scope="module")
def probe_queries(universe):
    sampler = IntentSampler(universe, seed=13)
    intents = [sampler.sample_intent(kind) for kind in PROBE_KINDS]
    return sorted({compile_intent(intent, "v1") for intent in intents})


@pytest.fixture(scope="module")
def morphs(football):
    return SchemaMorpher(seed=2022).derive(football["v1"], count=5, steps=3)


class TestDerivation:
    def test_produces_five_distinct_valid_schemas(self, morphs):
        assert len(morphs) == 5
        descriptions = {morph.schema.describe() for morph in morphs}
        assert len(descriptions) == 5, "morph chains must differ"
        for morph in morphs:
            assert morph.schema.version == morph.version
            assert morph.base_version == "v1"
            assert 1 <= morph.distance <= 3
            # Schema validity is rebuilt through the catalog API; spot
            # check the invariants it guarantees.
            for table in morph.schema.tables:
                assert table.columns
                assert len({c.name.lower() for c in table.columns}) == len(
                    table.columns
                )
            for fk in morph.schema.foreign_keys:
                assert morph.schema.table(fk.table).has_column(fk.column)
                assert morph.schema.table(fk.ref_table).has_column(fk.ref_column)

    def test_same_seed_is_deterministic(self, football, morphs):
        again = SchemaMorpher(seed=2022).derive(football["v1"], count=5, steps=3)
        for first, second in zip(morphs, again):
            assert first.schema.describe() == second.schema.describe()
            assert first.operator_names == second.operator_names
            assert [s.detail for s in first.steps] == [s.detail for s in second.steps]

    def test_different_seeds_diverge(self, football, morphs):
        other = SchemaMorpher(seed=4).morph(football["v1"], "v1~other", steps=3)
        assert all(
            other.schema.describe() != morph.schema.describe() for morph in morphs
        )

    def test_migration_preserves_total_row_count_for_lossless_chains(self, morphs):
        for morph in morphs:
            # Splits and clones add rows, inlines remove a table; but no
            # morphed database may ever be empty or lose an entity table's
            # contents: every table must be populated.
            for table in morph.schema.tables:
                assert morph.database.row_count(table.name) > 0, (
                    morph.version,
                    table.name,
                )

    def test_no_operator_applicable_raises(self):
        schema = Schema("noop", version="base")
        schema.create_table("only", [make_column("id", "int", primary_key=True)])
        db = Database(schema)
        db.insert("only", (1,))
        # Only offer an operator that cannot apply (no FK to drop).
        from repro.footballdb.morph import DropForeignKey

        with pytest.raises(MorphError):
            SchemaMorpher(seed=1, operators=[DropForeignKey()]).morph(db, "x")


class TestRewriter:
    def test_rewrites_parse_and_execute(self, morphs, probe_queries):
        for morph in morphs:
            for sql in probe_queries:
                rewritten = morph.rewrite_sql(sql)
                parse_sql(rewritten)  # must stay parseable
                morph.database.execute(rewritten)  # and executable

    def test_probe_workload_matches_base(self, football, morphs, probe_queries):
        base = football["v1"]
        for morph in morphs:
            mismatches = verify_morph(morph, base, probe_queries)
            assert not mismatches, (morph.describe(), mismatches[:2])

    def test_rewrite_is_identity_for_unmorphed_tables(self, morphs):
        sql = "SELECT count(*) FROM player_club_team"
        for morph in morphs:
            touched = {
                step.detail for step in morph.steps if step.operator in
                ("rename_tables", "rename_columns")
            }
            if touched:
                continue  # renames rewrite everything by design
            rewritten = morph.rewrite_sql(sql)
            if not any(
                step.operator in ("split_table", "inline_child")
                and "player_club_team" in step.detail
                for step in morph.steps
            ):
                assert "player_club_team" in rewritten


class TestOperatorCatalogue:
    def test_every_operator_has_a_unique_name(self):
        names = [operator.name for operator in DEFAULT_OPERATORS]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("version", ["v1", "v2", "v3"])
    def test_chains_apply_on_every_handwritten_model(
        self, universe, football, version
    ):
        morph = SchemaMorpher(seed=5).morph(football[version], f"{version}~x", steps=2)
        assert morph.distance >= 1
        assert morph.database.row_count() > 0

    def test_signature_folds_numeric_and_boolean_representation(self, football):
        base = football["v1"]
        ours = result_signature(base.execute("SELECT count(*) FROM match"))
        as_float = result_signature(
            base.execute("SELECT count(*) + 0.0 FROM match")
        )
        assert ours == as_float
