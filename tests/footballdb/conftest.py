"""Session-scoped FootballDB fixtures (built once, reused everywhere)."""

from __future__ import annotations

import pytest

from repro.footballdb import FootballDB, Universe, build_universe, load_all


@pytest.fixture(scope="session")
def universe() -> Universe:
    return build_universe(seed=2022)


@pytest.fixture(scope="session")
def football(universe) -> FootballDB:
    return load_all(universe=universe)
