"""Schema shape tests: the three data models must match Table 2 and the
structural pathologies the paper builds its analysis on."""

import pytest

from repro.footballdb import compute_stats, table2
from repro.footballdb import schema_v1, schema_v2, schema_v3


class TestTable2Shape:
    """Exact schema-level numbers from the paper's Table 2."""

    def test_v1_tables_and_fks(self):
        schema = schema_v1.build_schema()
        assert len(schema.tables) == 13
        assert schema.foreign_key_count == 14
        assert schema.column_count == 97

    def test_v2_tables_and_fks(self):
        schema = schema_v2.build_schema()
        assert len(schema.tables) == 16
        assert schema.foreign_key_count == 13
        assert schema.column_count == 98

    def test_v3_tables_and_fks(self):
        schema = schema_v3.build_schema()
        assert len(schema.tables) == 15
        assert schema.foreign_key_count == 16
        assert schema.column_count == 107

    def test_row_counts_in_paper_range(self, football):
        stats = table2(football.databases)
        # Paper: 104,531 / 106,547 / 106,111. Synthetic generation lands
        # within a few percent; v2 must be largest, v1 smallest.
        for version in ("v1", "v2", "v3"):
            assert 95_000 <= stats[version].rows <= 115_000
        assert stats["v2"].rows > stats["v3"].rows > stats["v1"].rows

    def test_mean_columns_ordering(self, football):
        stats = table2(football.databases)
        # v2 has the lowest mean #columns/table (6.13 in the paper).
        assert stats["v2"].mean_columns_per_table < stats["v3"].mean_columns_per_table
        assert stats["v2"].mean_columns_per_table < stats["v1"].mean_columns_per_table


class TestV1Pathologies:
    def test_match_has_two_fk_edges_to_national_team(self):
        schema = schema_v1.build_schema()
        assert len(schema.foreign_keys_between("match", "national_team")) == 2

    def test_world_cup_has_four_fk_edges_to_national_team(self):
        schema = schema_v1.build_schema()
        assert len(schema.foreign_keys_between("world_cup", "national_team")) == 4


class TestV2Remodeling:
    def test_single_fk_edge_between_any_pair(self):
        schema = schema_v2.build_schema()
        for a in schema.table_names:
            for b in schema.table_names:
                if a < b:
                    assert len(schema.foreign_keys_between(a, b)) <= 1, (a, b)

    def test_prize_is_text(self, football):
        values = football["v2"].column_values("world_cup_result", "prize")
        assert values == {"winner", "runner_up", "third", "fourth"}


class TestV3Remodeling:
    def test_prize_becomes_boolean_columns(self):
        schema = schema_v3.build_schema()
        table = schema.table("world_cup_result")
        for column in ("winner", "runner_up", "third", "fourth"):
            assert table.has_column(column)

    def test_no_match_table(self):
        schema = schema_v3.build_schema()
        assert not schema.has_table("match")
        assert schema.has_table("plays_match")
        assert schema.has_table("national_opponent_team")

    def test_plays_match_two_rows_per_match(self, football):
        matches = len(football.universe.matches)
        assert football["v3"].row_count("plays_match") == 2 * matches

    def test_opponent_team_is_copy(self, football):
        db = football["v3"]
        a = db.execute("SELECT team_id, teamname FROM national_team ORDER BY team_id")
        b = db.execute(
            "SELECT team_id, teamname FROM national_opponent_team ORDER BY team_id"
        )
        assert a.rows == b.rows


class TestCrossModelConsistency:
    """The same question must have the same answer in every data model."""

    def test_england_win_count(self, football):
        v1 = football["v1"].execute(
            "SELECT count(*) FROM world_cup AS T1 JOIN national_team AS T2 "
            "ON T1.winner = T2.team_id WHERE T2.teamname = 'England'"
        )
        v3 = football["v3"].execute(
            "SELECT count(*) FROM world_cup_result AS T1 JOIN national_team AS T2 "
            "ON T1.team_id = T2.team_id WHERE T2.teamname = 'England' "
            "AND T1.winner = 'True'"
        )
        assert v1.rows == v3.rows == [(1,)]

    def test_figure4_same_result_in_all_models(self, football):
        """The paper's running example: Germany vs Brazil, 2014."""
        v1_sql = (
            "SELECT T1.home_team_goals, T1.away_team_goals FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id "
            "WHERE T2.teamname ILIKE '%Germany%' AND T3.teamname ILIKE '%Brazil%' "
            "AND T1.year = 2014 "
            "UNION SELECT T1.home_team_goals, T1.away_team_goals FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id "
            "WHERE T2.teamname ILIKE '%Brazil%' AND T3.teamname ILIKE '%Germany%' "
            "AND T1.year = 2014"
        )
        v3_sql = (
            "SELECT T2.team_goals, T2.opponent_team_goals "
            "FROM national_team AS T1 "
            "JOIN plays_match AS T2 ON T2.team_id = T1.team_id "
            "JOIN national_opponent_team AS T3 ON T3.team_id = T2.opponent_team_id "
            "WHERE T1.teamname ILIKE '%Germany%' AND T3.teamname ILIKE '%Brazil%' "
            "AND T2.year = 2014"
        )
        v1_result = football["v1"].execute(v1_sql)
        v3_result = football["v3"].execute(v3_sql)
        assert v1_result.rows == [(7, 1)]
        assert v3_result.rows == [(7, 1)]

    def test_total_goals_consistent_v1_v2(self, football):
        v1 = football["v1"].execute(
            "SELECT sum(home_team_goals) + sum(away_team_goals) FROM match "
            "WHERE year = 2018"
        )
        v2 = football["v2"].execute(
            "SELECT (SELECT sum(home_team_goals) FROM plays_as_home AS h "
            "JOIN match AS m ON m.match_id = h.match_id WHERE m.year = 2018) + "
            "(SELECT sum(away_team_goals) FROM plays_as_away AS a "
            "JOIN match AS m ON m.match_id = a.match_id WHERE m.year = 2018)"
        )
        v3 = football["v3"].execute(
            "SELECT sum(team_goals) FROM plays_match WHERE year = 2018"
        )
        assert v1.rows[0][0] == v2.rows[0][0] == v3.rows[0][0]

    def test_match_fact_references_resolve(self, football):
        v1 = football["v1"].execute(
            "SELECT count(*) FROM match_fact AS f JOIN match AS m "
            "ON f.match_id = m.match_id"
        )
        v3 = football["v3"].execute(
            "SELECT count(*) FROM match_fact AS f JOIN plays_match AS p "
            "ON f.match_team_id = p.match_team_id"
        )
        assert v1.rows == v3.rows

    def test_goal_events_equal_goal_columns(self, football):
        """Event-level and match-level goal counts agree (2014)."""
        db = football["v1"]
        via_events = db.execute(
            "SELECT count(*) FROM match_fact AS f JOIN match AS m "
            "ON f.match_id = m.match_id WHERE m.year = 2014 AND f.goal = 'True'"
        )
        via_scores = db.execute(
            "SELECT sum(home_team_goals) + sum(away_team_goals) FROM match "
            "WHERE year = 2014"
        )
        assert via_events.rows[0][0] == via_scores.rows[0][0]
