"""Universe generator invariants (counts, consistency, determinism)."""

import pytest

from repro.footballdb import (
    NATIONAL_TEAMS,
    WORLD_CUP_HISTORY,
    UniverseGenerator,
    build_universe,
)
from repro.footballdb.universe import (
    TARGET_CLUBS,
    TARGET_COACHES,
    TARGET_LEAGUES,
    TARGET_PLAYERS,
)


class TestInventory:
    """Section 3.1 inventory: 22 cups, 86 teams, 8,891 players, …"""

    def test_world_cup_count(self, universe):
        assert len(universe.world_cups) == 22

    def test_team_count(self, universe):
        assert len(universe.teams) == 86
        assert len(NATIONAL_TEAMS) == 86

    def test_player_count(self, universe):
        assert len(universe.players) == TARGET_PLAYERS == 8891

    def test_club_count(self, universe):
        assert len(universe.clubs) == TARGET_CLUBS == 1874

    def test_league_count(self, universe):
        assert len(universe.leagues) == TARGET_LEAGUES == 89

    def test_coach_count(self, universe):
        assert len(universe.coaches) == TARGET_COACHES == 1966

    def test_match_count_roughly_historical(self, universe):
        # ~964 matches were actually played 1930-2022; the synthetic
        # scheduler lands in the same range.
        assert 900 <= len(universe.matches) <= 1100


class TestHistoricalFacts:
    """The public facts user questions reference must be real."""

    @pytest.mark.parametrize(
        "year,winner",
        [(1930, "Uruguay"), (1966, "England"), (2014, "Germany"), (2022, "Argentina")],
    )
    def test_winners(self, universe, year, winner):
        cup = universe.cup(year)
        assert universe.team(cup.winner_id).name == winner

    def test_2014_semi_final_score(self, universe):
        """Germany 7:1 Brazil — the Figure 4 example."""
        germany = universe.team_by_name("Germany").team_id
        brazil = universe.team_by_name("Brazil").team_id
        semis = [
            m
            for m in universe.matches_in(2014)
            if m.stage == "semi_final" and m.involves(germany) and m.involves(brazil)
        ]
        assert len(semis) == 1
        match = semis[0]
        assert {match.home_goals, match.away_goals} == {7, 1}

    def test_hosts(self, universe):
        assert universe.cup(2022).host == "Qatar"
        assert universe.cup(1930).host == "Uruguay"

    def test_former_nations_not_in_modern_cups(self, universe):
        soviet = universe.team_by_name("Soviet Union").team_id
        for match in universe.matches_in(2018):
            assert not match.involves(soviet)

    def test_podium_teams_participate(self, universe):
        for cup in universe.world_cups:
            participants = set()
            for match in universe.matches_in(cup.year):
                participants.add(match.home_team_id)
                participants.add(match.away_team_id)
            for team_id in (cup.winner_id, cup.runner_up_id, cup.third_id, cup.fourth_id):
                assert team_id in participants


class TestTournamentStructure:
    def test_exactly_one_final_per_cup(self, universe):
        for cup in universe.world_cups:
            finals = [m for m in universe.matches_in(cup.year) if m.stage == "final"]
            assert len(finals) == 1
            final = finals[0]
            # Winner beats runner-up in the final.
            assert final.home_team_id == cup.winner_id
            assert final.away_team_id == cup.runner_up_id
            assert final.home_goals > final.away_goals

    def test_third_place_match(self, universe):
        for cup in universe.world_cups:
            third = [m for m in universe.matches_in(cup.year) if m.stage == "third_place"]
            assert len(third) == 1
            assert third[0].home_team_id == cup.third_id
            assert third[0].home_goals > third[0].away_goals

    def test_knockout_matches_have_winners(self, universe):
        for match in universe.matches:
            if match.stage != "group":
                assert match.home_goals != match.away_goals

    def test_team_count_matches_participants(self, universe):
        for cup in universe.world_cups:
            participants = set()
            for match in universe.matches_in(cup.year):
                participants.add(match.home_team_id)
                participants.add(match.away_team_id)
            assert len(participants) == cup.team_count


class TestEventConsistency:
    """Aggregates must be derivable from events (any join path agrees)."""

    def test_goal_events_match_scores(self, universe):
        for match in universe.matches_in(2014):
            events = universe.events_for_match(match.match_id)
            home_goals = sum(
                1
                for e in events
                if e.team_id == match.home_team_id and e.event_type in ("goal", "penalty", "own_goal")
            )
            away_goals = sum(
                1
                for e in events
                if e.team_id == match.away_team_id and e.event_type in ("goal", "penalty", "own_goal")
            )
            assert (home_goals, away_goals) == (match.home_goals, match.away_goals)

    def test_squad_goals_match_events(self, universe):
        scored = {}
        for event in universe.events:
            if event.event_type in ("goal", "penalty"):
                match = universe.matches[event.match_id - 1]
                key = (match.year, event.player_id)
                scored[key] = scored.get(key, 0) + 1
        for member in universe.squads[:2000]:
            assert member.goals == scored.get((member.year, member.player_id), 0)

    def test_event_players_belong_to_squads(self, universe):
        squad_index = {(m.year, m.team_id, m.player_id) for m in universe.squads}
        for event in universe.events[:3000]:
            match = universe.matches[event.match_id - 1]
            if event.event_type == "own_goal":
                # Credited to the scoring team, struck by an opponent.
                other = (
                    match.away_team_id
                    if event.team_id == match.home_team_id
                    else match.home_team_id
                )
                assert (match.year, other, event.player_id) in squad_index
            else:
                assert (match.year, event.team_id, event.player_id) in squad_index

    def test_squads_are_23_players(self, universe):
        by_participation = {}
        for member in universe.squads:
            key = (member.year, member.team_id)
            by_participation[key] = by_participation.get(key, 0) + 1
        assert set(by_participation.values()) == {23}


class TestDeterminism:
    def test_same_seed_same_universe(self):
        a = UniverseGenerator(seed=7).generate()
        b = UniverseGenerator(seed=7).generate()
        assert [m.home_goals for m in a.matches] == [m.home_goals for m in b.matches]
        assert [p.full_name for p in a.players[:50]] == [p.full_name for p in b.players[:50]]

    def test_different_seed_different_universe(self):
        a = UniverseGenerator(seed=7).generate()
        b = UniverseGenerator(seed=8).generate()
        assert [m.home_goals for m in a.matches] != [m.home_goals for m in b.matches]

    def test_podium_is_seed_independent(self):
        a = UniverseGenerator(seed=7).generate()
        b = UniverseGenerator(seed=8).generate()
        assert [c.winner_id for c in a.world_cups] == [c.winner_id for c in b.world_cups]
