"""Loader and stats module tests (FK integrity of the loaded data)."""

import pytest

from repro.footballdb import (
    VERSIONS,
    compute_stats,
    load_all,
    load_version,
)


class TestLoader:
    def test_load_version_unknown_raises(self, universe):
        with pytest.raises(ValueError):
            load_version(universe, "v9")

    def test_load_all_indexable(self, football):
        for version in VERSIONS:
            assert football[version] is football.database(version)

    def test_declared_foreign_keys_hold(self, football):
        """Every declared FK edge has zero dangling references."""
        for version in VERSIONS:
            db = football[version]
            for fk in db.schema.foreign_keys:
                dangling = db.execute(
                    f"SELECT count(*) FROM {fk.table} AS c WHERE "
                    f"c.{fk.column} IS NOT NULL AND c.{fk.column} NOT IN "
                    f"(SELECT p.{fk.ref_column} FROM {fk.ref_table} AS p)"
                )
                assert dangling.rows[0][0] == 0, (version, fk.describe())

    def test_undeclared_bridge_references_also_hold(self, football):
        """v1 leaves bridge FKs undeclared, but the data is still clean
        (the deployment's data pipeline enforced them out of band)."""
        db = football["v1"]
        dangling = db.execute(
            "SELECT count(*) FROM player_club_team AS b WHERE b.player_id NOT IN "
            "(SELECT p.player_id FROM player AS p)"
        )
        assert dangling.rows[0][0] == 0

    def test_same_universe_same_answers_across_loads(self, universe):
        a = load_version(universe, "v1")
        b = load_version(universe, "v1")
        sql = "SELECT sum(home_team_goals) FROM match"
        assert a.execute(sql).rows == b.execute(sql).rows


class TestStats:
    def test_compute_stats_consistency(self, football):
        for version in VERSIONS:
            stats = compute_stats(football[version])
            assert stats.version == version
            assert stats.rows == football[version].row_count()
            assert stats.mean_columns_per_table == pytest.approx(
                stats.columns / stats.tables
            )

    def test_paper_orderings(self, football):
        stats = {v: compute_stats(football[v]) for v in VERSIONS}
        # v2 has the most tables, v3 the most columns and FKs (Table 2).
        assert stats["v2"].tables == max(s.tables for s in stats.values())
        assert stats["v3"].columns == max(s.columns for s in stats.values())
        assert stats["v3"].foreign_keys == max(s.foreign_keys for s in stats.values())
