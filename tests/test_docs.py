"""Docs stay truthful: referenced paths exist, README covers the layout."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_readme_exists_with_quickstart_and_verify_command():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "examples/quickstart.py" in readme
    assert "PYTHONPATH=src python -m pytest -x -q" in readme


def test_architecture_doc_exists():
    text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "PlanCache" in text
    assert "evaluate_grid" in text


def test_no_dangling_doc_references():
    checker = load_checker()
    missing = []
    for doc in checker.doc_paths():
        missing.extend(checker.check_file(doc))
    assert not missing, f"dangling doc references: {missing}"


def test_readme_names_every_package_directory():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for package_dir in sorted((REPO_ROOT / "src" / "repro").iterdir()):
        if package_dir.is_dir() and (package_dir / "__init__.py").exists():
            assert f"src/repro/{package_dir.name}" in readme, (
                f"README repository-layout table is missing src/repro/{package_dir.name}"
            )
