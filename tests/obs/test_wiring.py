"""One registry sees the whole stack; webapp operational routes."""

from __future__ import annotations

import asyncio

import pytest

from repro.deployment import WebBackend
from repro.obs import MetricsRegistry, Tracer, bind_database, bind_serving, bind_service
from repro.serving import AsyncTextToSQLService
from repro.serving.shards import DomainSpec, build_service


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


@pytest.fixture()
def service():
    return build_service(
        DomainSpec("hospital", train=4, response_cache_size=16)
    )


class TestBindDatabase:
    def test_engine_families_present(self, toy_db):
        registry = MetricsRegistry()
        bind_database(registry, toy_db)
        toy_db.execute("SELECT name FROM team")
        snapshot = registry.snapshot()
        for family in (
            "engine_plan_cache_hits",
            "engine_plan_cache_misses",
            "engine_optimizer_optimizations",
            "engine_mode_vectorized_statements",
            "engine_column_store_tables_cached",
        ):
            assert family in snapshot, family
        statements = snapshot["engine_mode_vectorized_statements"]["samples"]
        assert statements == [{"labels": {"schema": "toy", "version": ""}, "value": 1}]

    def test_double_bind_is_noop(self, toy_db):
        registry = MetricsRegistry()
        bind_database(registry, toy_db)
        bind_database(registry, toy_db)
        toy_db.execute("SELECT name FROM team")
        samples = registry.snapshot()["engine_plan_cache_misses"]["samples"]
        assert len(samples) == 1

    def test_shared_plan_cache_counted_once(self):
        from repro.sqlengine import Database, PlanCache, Schema, make_column

        schema_a = Schema("shared", "v1")
        schema_a.create_table("t", [make_column("id", "int", primary_key=True)])
        schema_b = Schema("shared", "v2")
        schema_b.create_table("t", [make_column("id", "int", primary_key=True)])
        cache = PlanCache(32)
        db_a = Database(schema_a, plan_cache=cache)
        db_b = Database(schema_b, plan_cache=cache)
        db_a.execute("SELECT id FROM t")
        db_b.execute("SELECT id FROM t")
        registry = MetricsRegistry()
        bind_database(registry, db_a)
        bind_database(registry, db_b)
        samples = registry.snapshot()["engine_plan_cache_misses"]["samples"]
        # one sample (the shared storage), not one per view
        assert len(samples) == 1
        assert samples[0]["value"] == 2


class TestBindService:
    def test_one_snapshot_covers_service_and_engine(self, service):
        registry = MetricsRegistry()
        bind_service(registry, service)
        service.ask("How many patients are there?")
        snapshot = registry.snapshot()
        assert snapshot["service_questions_served"]["samples"][0]["value"] == 1
        assert "engine_plan_cache_misses" in snapshot
        assert "service_response_cache_hits" in snapshot
        # histogram attached and observing
        assert snapshot["service_latency_seconds"]["samples"][0]["count"] == 1

    def test_render_includes_service_and_engine(self, service):
        registry = MetricsRegistry()
        bind_service(registry, service)
        service.ask("How many patients are there?")
        text = registry.render()
        assert "service_questions_served 1" in text
        assert "engine_plan_cache_misses" in text
        assert text.endswith("\n")


class TestBindServing:
    def test_serving_counters_and_domains(self):
        registry = MetricsRegistry()

        async def drive():
            serving = AsyncTextToSQLService.from_specs(
                [DomainSpec("hospital", train=4)], shard_count=1
            )
            bind_serving(registry, serving)
            async with serving:
                await serving.ask("How many patients are there?")
            serving.close()

        asyncio.run(drive())
        snapshot = registry.snapshot()
        assert snapshot["serving_admitted"]["samples"][0]["value"] == 1
        assert snapshot["serving_completed"]["samples"][0]["value"] == 1
        domain_samples = snapshot["serving_questions_per_domain"]["samples"]
        assert domain_samples == [{"labels": {"domain": "hospital"}, "value": 1}]
        assert snapshot["serving_wall_latency_seconds"]["samples"][0]["count"] == 1


class TestServingTracing:
    def test_ask_produces_span_tree(self):
        tracer = Tracer(clock=FakeClock())

        async def drive():
            serving = AsyncTextToSQLService.from_specs(
                [DomainSpec("hospital", train=4)], shard_count=1, tracer=tracer
            )
            async with serving:
                return await serving.ask(
                    "How many patients are there?", tenant="acme"
                )

        response = asyncio.run(drive())
        assert response.ok
        trees = [tracer.store.tree(tid) for tid in tracer.store.trace_ids()]
        ask_tree = next(t for t in trees if t[0]["name"] == "serving.ask")
        root = ask_tree[0]
        assert root["labels"]["tenant"] == "acme"
        assert root["labels"]["status"] == "ok"
        assert root["labels"]["domain"] == "hospital"
        children = [child["name"] for child in root["children"]]
        assert children == ["serving.route", "serving.queued"]
        # the dispatcher's batch span is its own trace
        batch_roots = [t[0]["name"] for t in trees]
        assert "serving.batch" in batch_roots


class TestWebBackend:
    def test_metrics_routes(self, service):
        registry = MetricsRegistry()
        app = WebBackend(service, registry=registry)
        app.ask("How many patients are there?")
        text = app.metrics_text()
        assert "service_questions_served 1" in text
        assert "engine_plan_cache_misses" in text
        snapshot = app.metrics_json()
        assert snapshot["service_questions_served"]["samples"][0]["value"] == 1

    def test_trace_routes(self, service):
        registry = MetricsRegistry()
        tracer = Tracer(clock=FakeClock(), registry=registry)
        app = WebBackend(service, registry=registry, tracer=tracer)
        app.ask("How many patients are there?")
        ids = app.traces()
        assert ids
        tree = app.trace(ids[0])
        assert tree[0]["name"] == "service.ask"
        names = {span["name"] for span in tracer.store.get(ids[0])}
        assert "service.predict" in names
        assert "db.execute" in names

    def test_unknown_trace_raises(self, service):
        app = WebBackend(
            service, registry=MetricsRegistry(), tracer=Tracer(clock=FakeClock())
        )
        with pytest.raises(KeyError):
            app.trace("t-999999")

    def test_routes_require_configuration(self, service):
        app = WebBackend(service)
        with pytest.raises(RuntimeError):
            app.metrics_text()
        with pytest.raises(RuntimeError):
            app.traces()

    def test_legacy_routes_unchanged(self, service):
        app = WebBackend(service)
        out = app.ask("How many patients are there?")
        assert set(out) >= {"log_id", "sql", "columns", "rows", "error"}
        assert app.statistics() is not None
