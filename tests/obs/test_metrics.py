"""MetricsRegistry unit behaviour, exposition goldens, concurrency."""

from __future__ import annotations

import math
import sys
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    dict_collector,
    flatten_numeric,
    percentile,
)


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pending")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("shed_total", labelnames=("reason",))
        family.labels(reason="quota").inc(2)
        family.labels(reason="queue").inc()
        values = {
            dict(pairs)["reason"]: child.value
            for pairs, child in family.children()
        }
        assert values == {"quota": 2, "queue": 1}

    def test_unlabeled_ops_on_labeled_family_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("shed_total", labelnames=("reason",))
        with pytest.raises(ValueError):
            family.inc()

    def test_same_name_same_kind_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        assert registry.counter("x_total") is first

    def test_same_name_different_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.buckets() == [
            (1.0, 2),  # 0.5, 1.0 (inclusive upper bound)
            (2.0, 3),
            (4.0, 4),
            (math.inf, 5),
        ]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 1.5):
            hist.observe(value)
        # p50 lands inside the (1, 2] bucket
        assert 1.0 <= hist.quantile(0.5) <= 2.0

    def test_quantile_empty_is_zero(self):
        assert Histogram(bounds=(1.0,)).quantile(0.99) == 0.0

    def test_quantile_clamps_to_last_finite_bound(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 2.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_default_latency_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestExpositionGolden:
    """The Prometheus text format is an interface: golden-pinned."""

    def test_render_golden(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "served requests").inc(3)
        shed = registry.counter("shed_total", "shed requests", labelnames=("reason",))
        shed.labels(reason="quota").inc(2)
        registry.gauge("pending", "queued requests").set(7)
        hist = registry.histogram(
            "latency_seconds", "request latency", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert registry.render() == (
            "# HELP latency_seconds request latency\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.1"} 1\n'
            'latency_seconds_bucket{le="1"} 2\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 5.55\n"
            "latency_seconds_count 3\n"
            "# HELP pending queued requests\n"
            "# TYPE pending gauge\n"
            "pending 7\n"
            "# HELP requests_total served requests\n"
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# HELP shed_total shed requests\n"
            "# TYPE shed_total counter\n"
            'shed_total{reason="quota"} 2\n'
        )

    def test_callback_samples_render(self):
        registry = MetricsRegistry()
        registry.register_callback(
            lambda: [("engine_hits", {"schema": "toy"}, 12)], key="k"
        )
        text = registry.render()
        assert 'engine_hits{schema="toy"} 12\n' in text

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        hist = registry.histogram("h_seconds", buckets=(1.0,))
        hist.observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["a_total"]["kind"] == "counter"
        assert snapshot["a_total"]["samples"][0]["value"] == 1
        sample = snapshot["h_seconds"]["samples"][0]
        assert sample["count"] == 1
        assert sample["buckets"][0] == {"le": 1.0, "count": 1}


class TestCallbacks:
    def test_callback_key_dedup(self):
        registry = MetricsRegistry()
        calls = []

        def collector():
            calls.append(1)
            return [("x", {}, 1)]

        assert registry.register_callback(collector, key="same") is True
        assert registry.register_callback(collector, key="same") is False
        registry.snapshot()
        assert len(calls) == 1

    def test_dict_collector_flattens_nested(self):
        source = {"hits": 3, "inner": {"misses": 2, "label": "text"}, "on": True}
        samples = dict_collector("cache", lambda: source, {"schema": "s"})()
        assert ("cache_hits", {"schema": "s"}, 3) in samples
        assert ("cache_inner_misses", {"schema": "s"}, 2) in samples
        assert ("cache_on", {"schema": "s"}, 1) in samples
        assert not any(name == "cache_inner_label" for name, _, _ in samples)

    def test_flatten_numeric_skips_non_numeric(self):
        flat = flatten_numeric("p", {"a": 1, "b": "no", "c": {"d": 2.5}})
        assert flat == {"p_a": 1, "p_c_d": 2.5}


class TestPercentile:
    """The single shared implementation (satellite: dedup)."""

    def test_reexported_everywhere(self):
        from repro.deployment import percentile as deployment_percentile
        from repro.deployment.service import percentile as service_percentile
        from repro.obs.metrics import percentile as obs_percentile

        assert deployment_percentile is obs_percentile
        assert service_percentile is obs_percentile

    def test_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0


class TestConcurrency:
    """Exact totals under a hostile switch interval."""

    def test_counter_and_histogram_exact_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")
        family = registry.counter("hammer_labeled_total", labelnames=("worker",))
        hist = registry.histogram("hammer_seconds", buckets=(0.5,))
        threads, per_thread = 8, 2000
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            def work(index: int) -> None:
                child = family.labels(worker=str(index % 2))
                for i in range(per_thread):
                    counter.inc()
                    child.inc()
                    hist.observe(0.25 if i % 2 else 0.75)

            pool = [
                threading.Thread(target=work, args=(index,))
                for index in range(threads)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        total = threads * per_thread
        assert counter.value == total
        assert sum(child.value for _, child in family.children()) == total
        assert hist.count == total
        # bucket sums must match exactly: half below 0.5, half above
        assert hist.buckets()[0][1] == total // 2
        assert hist.buckets()[-1][1] == total
