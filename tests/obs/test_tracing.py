"""Tracer behaviour: nesting, determinism, sampling, the store."""

from __future__ import annotations

import threading

import pytest

from repro.obs import NOOP_SPAN, MetricsRegistry, TraceStore, Tracer


class FakeClock:
    """Monotonic fake: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpans:
    def test_nesting_and_ordering_with_fake_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("child-a") as a:
                pass
            with tracer.span("child-b") as b:
                pass
        assert root.trace_id == a.trace_id == b.trace_id == "t-000001"
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        # fake clock ticks once per read: start/end stamps are exact
        assert (root.start, a.start, a.end, b.start, b.end, root.end) == (
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0,
        )
        assert a.duration == 1.0
        assert root.duration == 5.0

    def test_ids_are_sequential(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second") as second:
            pass
        assert second.trace_id == "t-000002"
        assert second.span_id == "s-000002"

    def test_current_span_follows_context(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("nope")
        assert span.status == "error"
        assert span.end is not None

    def test_explicit_parent_crosses_thread(self):
        """Executor-boundary pattern: pass parent= explicitly."""
        tracer = Tracer(clock=FakeClock())
        seen = {}

        with tracer.span("root") as root:
            def worker():
                # contextvars don't cross threads: without parent= this
                # would start a fresh trace
                with tracer.span("remote", parent=root) as span:
                    seen["span"] = span
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["span"].trace_id == root.trace_id
        assert seen["span"].parent_id == root.span_id

    def test_finish_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("once")
        span.finish()
        end = span.end
        span.finish("error")
        assert span.end == end
        assert span.status == "ok"

    def test_labels(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("labeled", tenant="acme") as span:
            span.set_label("rows", 7)
        assert span.labels == {"tenant": "acme", "rows": 7}


class TestSampling:
    def test_rate_zero_drops_everything(self):
        tracer = Tracer(clock=FakeClock(), sample_rate=0.0)
        span = tracer.span("dropped")
        assert span is NOOP_SPAN
        assert not span.recording
        # children of an unsampled root are absorbed too
        with span:
            child = tracer.span("child", parent=span)
        assert child is NOOP_SPAN
        assert tracer.stats()["dropped_traces"] == 1
        assert len(tracer.store) == 0

    def test_seeded_sampling_is_deterministic(self):
        def verdicts(seed: int):
            tracer = Tracer(clock=FakeClock(), sample_rate=0.5, seed=seed)
            return [tracer.span("s") is not NOOP_SPAN for _ in range(32)]

        assert verdicts(7) == verdicts(7)
        mixed = verdicts(7)
        assert any(mixed) and not all(mixed)

    def test_registry_counters(self):
        registry = MetricsRegistry()
        tracer = Tracer(clock=FakeClock(), sample_rate=1.0, registry=registry)
        with tracer.span("a"):
            pass
        snapshot = registry.snapshot()
        samples = snapshot["obs_traces_total"]["samples"]
        assert samples == [{"labels": {"verdict": "sampled"}, "value": 1}]
        assert snapshot["obs_spans_total"]["samples"][0]["value"] == 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestTraceStore:
    def test_tree_renests_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        tree = tracer.store.tree(root.trace_id)
        assert len(tree) == 1
        top = tree[0]
        assert top["name"] == "root"
        assert [child["name"] for child in top["children"]] == ["a", "b"]
        assert [g["name"] for g in top["children"][0]["children"]] == ["a1"]

    def test_capacity_evicts_oldest(self):
        store = TraceStore(capacity=2)
        tracer = Tracer(clock=FakeClock(), store=store)
        ids = []
        for index in range(3):
            with tracer.span(f"t{index}") as span:
                pass
            ids.append(span.trace_id)
        assert store.get(ids[0]) is None
        assert store.get(ids[1]) is not None
        assert store.get(ids[2]) is not None
        assert store.trace_ids() == ids[1:]

    def test_get_returns_span_dicts(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root", tenant="t1") as root:
            pass
        spans = tracer.store.get(root.trace_id)
        assert spans[0]["name"] == "root"
        assert spans[0]["labels"] == {"tenant": "t1"}
        assert spans[0]["duration"] == 1.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)
