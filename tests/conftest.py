"""Shared fixtures.

The session-scoped fixtures build the FootballDB universe and the three
database instances exactly once — generating ~100K rows is cheap but not
free, and dozens of test modules want the same objects.
"""

from __future__ import annotations

import pytest

from repro.sqlengine import Database, Schema, make_column


@pytest.fixture()
def toy_db() -> Database:
    """A small two-table database used by engine unit tests."""
    schema = Schema("toy")
    schema.create_table(
        "team",
        [
            make_column("team_id", "int", primary_key=True),
            make_column("name", "text"),
            make_column("founded", "int"),
        ],
    )
    schema.create_table(
        "player",
        [
            make_column("player_id", "int", primary_key=True),
            make_column("team_id", "int"),
            make_column("name", "text"),
            make_column("goals", "int"),
            make_column("height", "real"),
        ],
    )
    schema.add_foreign_key("player", "team_id", "team", "team_id")
    db = Database(schema)
    db.insert_many(
        "team",
        [
            (1, "Brazil", 1914),
            (2, "Germany", 1900),
            (3, "Uruguay", 1900),
        ],
    )
    db.insert_many(
        "player",
        [
            (1, 1, "Alder", 12, 1.82),
            (2, 1, "Bruno", 7, 1.75),
            (3, 2, "Caspar", 7, 1.90),
            (4, 2, "Dario", 0, 1.68),
            (5, 3, "Emilio", None, 1.80),
        ],
    )
    return db
