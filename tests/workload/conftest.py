"""Workload test fixtures (share the session FootballDB)."""

from __future__ import annotations

import pytest

from repro.footballdb import FootballDB, Universe, build_universe, load_all
from repro.workload import IntentSampler


@pytest.fixture(scope="session")
def universe() -> Universe:
    return build_universe(seed=2022)


@pytest.fixture(scope="session")
def football(universe) -> FootballDB:
    return load_all(universe=universe)


@pytest.fixture()
def sampler(universe) -> IntentSampler:
    return IntentSampler(universe, seed=11)
