"""Intent sampler tests (slot validity and realism constraints)."""

import pytest

from repro.workload import ALL_KINDS, IntentSampler, REGISTRY


class TestSlotValidity:
    def test_all_kinds_sample_with_valid_slots(self, sampler):
        for kind in ALL_KINDS:
            intent = sampler.sample_intent(kind)
            assert intent.kind == kind
            assert set(name for name, _ in intent.slots) == set(
                REGISTRY[kind].slot_names
            )

    def test_year_slots_are_cup_years(self, universe, sampler):
        years = set(universe.years)
        for _ in range(50):
            intent = sampler.sample_intent("cup_winner")
            assert intent.slot("year") in years

    def test_team_names_exist(self, universe, sampler):
        names = {team.name for team in universe.teams}
        for _ in range(30):
            intent = sampler.sample_intent("match_count_team")
            assert intent.slot("team") in names

    def test_pair_teams_are_distinct_participants(self, universe, sampler):
        for _ in range(30):
            intent = sampler.sample_intent("match_score")
            year = intent.slot("year")
            participants = {
                universe.team(m.home_team_id).name for m in universe.matches_in(year)
            } | {universe.team(m.away_team_id).name for m in universe.matches_in(year)}
            assert intent.slot("team_a") in participants
            assert intent.slot("team_b") in participants
            assert intent.slot("team_a") != intent.slot("team_b")


class TestRealismConstraints:
    def test_players_with_year_actually_played(self, universe, sampler):
        """player_goals_cup questions reference real squad members."""
        squad_names = {}
        for member in universe.squads:
            squad_names.setdefault(member.year, set()).add(
                universe.player(member.player_id).full_name
            )
        for _ in range(30):
            intent = sampler.sample_intent("player_goals_cup")
            assert intent.slot("player") in squad_names[intent.slot("year")]

    def test_prize_questions_favor_podium_teams(self, universe, sampler):
        podium = {
            universe.team(team_id).name
            for cup in universe.world_cups
            for team_id in (cup.winner_id, cup.runner_up_id, cup.third_id, cup.fourth_id)
        }
        hits = sum(
            1
            for _ in range(100)
            if sampler.sample_intent("prize_count_team").slot("team") in podium
        )
        assert hits >= 70

    def test_match_card_questions_skew_yellow(self, sampler):
        yellows = sum(
            1
            for _ in range(100)
            if sampler.sample_intent("cards_in_match").slot("card") == "yellow_card"
        )
        assert yellows >= 70

    def test_most_pairs_actually_played(self, universe, sampler):
        pairings = set()
        for match in universe.matches:
            pairings.add((match.year, match.home_team_id, match.away_team_id))
            pairings.add((match.year, match.away_team_id, match.home_team_id))
        played = 0
        for _ in range(100):
            intent = sampler.sample_intent("match_score")
            a = universe.team_by_name(intent.slot("team_a")).team_id
            b = universe.team_by_name(intent.slot("team_b")).team_id
            if (intent.slot("year"), a, b) in pairings:
                played += 1
        assert played >= 80


class TestDeterminism:
    def test_same_seed_same_population(self, universe):
        a = IntentSampler(universe, seed=3).population(50)
        b = IntentSampler(universe, seed=3).population(50)
        assert a == b

    def test_weighted_mix_covers_many_kinds(self, universe):
        population = IntentSampler(universe, seed=4).population(500)
        kinds = {intent.kind for intent in population}
        assert len(kinds) >= 25
