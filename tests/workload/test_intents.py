"""Intent model tests (registry integrity, slot access, topics)."""

import pytest

from repro.workload import (
    ALL_KINDS,
    PRIZE_SYNONYMS,
    REGISTRY,
    TOPICS,
    Intent,
    kinds_for_topic,
    make_intent,
)


class TestRegistry:
    def test_kinds_are_unique(self):
        assert len(ALL_KINDS) == len(set(ALL_KINDS))

    def test_every_spec_has_templates(self):
        for spec in REGISTRY.values():
            assert len(spec.templates) >= 2, spec.kind
            assert spec.weight > 0

    def test_templates_reference_only_known_slots(self):
        import string

        formatter = string.Formatter()
        allowed_extra = {"prize_phrase", "prize_phrase_past"}
        for spec in REGISTRY.values():
            for template in spec.templates:
                fields = {
                    field
                    for _, field, _, _ in formatter.parse(template)
                    if field is not None
                }
                unknown = fields - set(spec.slot_names) - allowed_extra
                assert not unknown, (spec.kind, unknown)

    def test_symmetric_flags(self):
        """Symmetric kinds are exactly the home/away-sensitive ones."""
        symmetric = {spec.kind for spec in REGISTRY.values() if spec.symmetric}
        assert "match_score" in symmetric
        assert "cards_in_match" in symmetric
        assert "cup_winner" not in symmetric

    def test_topics_cover_all_kinds(self):
        covered = {kind for topic in TOPICS for kind in kinds_for_topic(topic)}
        assert covered == set(ALL_KINDS)

    def test_prize_synonyms_complete(self):
        assert set(PRIZE_SYNONYMS) == {"winner", "runner_up", "third", "fourth"}
        for phrases in PRIZE_SYNONYMS.values():
            assert len(phrases) >= 2


class TestIntentObject:
    def test_slot_access(self):
        intent = make_intent("cup_winner", year=2014)
        assert intent.slot("year") == 2014
        assert intent.has_slot("year")
        assert not intent.has_slot("team")

    def test_missing_slot_raises(self):
        intent = make_intent("cup_winner", year=2014)
        with pytest.raises(KeyError):
            intent.slot("team")

    def test_make_intent_validates_slots(self):
        with pytest.raises(ValueError):
            make_intent("cup_winner")  # missing year
        with pytest.raises(ValueError):
            make_intent("cup_winner", year=2014, extra="nope")

    def test_intents_are_hashable_and_equal(self):
        a = make_intent("cup_winner", year=2014)
        b = make_intent("cup_winner", year=2014)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_slot_order_is_canonical(self):
        a = make_intent("match_score", team_a="A", team_b="B", year=2014)
        b = make_intent("match_score", year=2014, team_b="B", team_a="A")
        assert a == b

    def test_spec_property(self):
        intent = make_intent("cup_winner", year=2014)
        assert intent.spec.topic == "winners"
