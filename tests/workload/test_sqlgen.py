"""Gold-SQL compiler tests: every intent kind, every data model.

The central guarantees:

* every compiled query parses and *executes* on its data model;
* the Figure 4 structural story holds (UNION + repeated instances in
  v1/v2, flat single-select in v3);
* answers are consistent with the underlying universe.
"""

import pytest

from repro.analysis import analyze_query, spider_parse, SpiderParseError
from repro.footballdb import VERSIONS
from repro.sqlengine import SetOperation, parse_sql
from repro.workload import (
    ALL_KINDS,
    SUPPORTED_KINDS,
    IntentSampler,
    compile_ast,
    compile_intent,
    make_intent,
)


def test_every_registered_kind_has_a_compiler():
    assert set(ALL_KINDS) == set(SUPPORTED_KINDS)


@pytest.mark.parametrize("version", VERSIONS)
def test_all_kinds_compile_and_execute(football, sampler, version):
    """Each kind × version produces SQL the engine runs without error."""
    db = football[version]
    for kind in ALL_KINDS:
        intent = sampler.sample_intent(kind)
        sql = compile_intent(intent, version)
        parse_sql(sql)  # parseable
        db.execute(sql)  # executable (result may legitimately be empty)


class TestFigure4:
    def make(self):
        return make_intent("match_score", team_a="Germany", team_b="Brazil", year=2014)

    def test_v1_uses_union_and_repeated_instances(self):
        ast = compile_ast(self.make(), "v1")
        assert isinstance(ast, SetOperation)
        with pytest.raises(SpiderParseError):
            spider_parse(ast)

    def test_v2_uses_union_and_more_joins(self):
        intent = self.make()
        v1 = analyze_query(compile_ast(intent, "v1"))
        v2 = analyze_query(compile_ast(intent, "v2"))
        assert v2.set_operations >= 1
        assert v2.joins > v1.joins

    def test_v3_is_flat_and_spider_parseable(self):
        ast = compile_ast(self.make(), "v3")
        assert not isinstance(ast, SetOperation)
        parsed = spider_parse(ast)
        assert parsed.set_operation is None

    def test_v3_query_is_shortest(self):
        intent = self.make()
        lengths = {
            version: len(compile_intent(intent, version)) for version in VERSIONS
        }
        assert lengths["v3"] < lengths["v1"] < lengths["v2"]

    def test_all_three_find_the_mineirazo(self, football):
        intent = self.make()
        for version in VERSIONS:
            result = football[version].execute(compile_intent(intent, version))
            scores = {tuple(row[-2:]) for row in result.rows}
            assert (7, 1) in scores or (1, 7) in scores, version


class TestAnswerConsistency:
    """Gold answers must agree across data models (scalar intents)."""

    SCALAR_KINDS = [
        "prize_count_team",
        "team_goals_cup",
        "match_count_team",
        "cards_in_cup",
        "penalties_in_cup",
        "matches_in_cup",
        "cup_winner",
        "cup_host",
        "top_scorer_cup",
    ]

    @pytest.mark.parametrize("kind", SCALAR_KINDS)
    def test_cross_model_agreement(self, football, kind):
        sampler = IntentSampler(football.universe, seed=23)
        for _ in range(5):
            intent = sampler.sample_intent(kind)
            results = {
                version: football[version]
                .execute(compile_intent(intent, version))
                .normalized_multiset()
                for version in VERSIONS
            }
            assert results["v1"] == results["v2"] == results["v3"], str(intent)

    def test_listing1_england_count(self, football):
        intent = make_intent("prize_count_team", team="England", prize="winner")
        for version in VERSIONS:
            result = football[version].execute(compile_intent(intent, version))
            assert result.rows == [(1,)], version

    def test_second_place_lexical_target(self, football):
        """'How many times did Germany finish second?'"""
        intent = make_intent("prize_count_team", team="Germany", prize="runner_up")
        expected = sum(
            1
            for cup in football.universe.world_cups
            if football.universe.team(cup.runner_up_id).name == "Germany"
        )
        for version in VERSIONS:
            result = football[version].execute(compile_intent(intent, version))
            assert result.rows == [(expected,)], version


class TestStructuralProperties:
    def test_v3_never_needs_set_operations(self, sampler):
        for kind in ALL_KINDS:
            for _ in range(3):
                intent = sampler.sample_intent(kind)
                assert analyze_query(compile_ast(intent, "v3")).set_operations == 0, kind

    def test_symmetric_kinds_need_sets_in_v1(self, sampler):
        intent = sampler.sample_intent("match_score")
        assert analyze_query(compile_ast(intent, "v1")).set_operations == 1
        assert analyze_query(compile_ast(intent, "v2")).set_operations == 1

    def test_v2_has_most_joins_on_average(self, sampler):
        totals = {version: 0 for version in VERSIONS}
        for kind in ALL_KINDS:
            intent = sampler.sample_intent(kind)
            for version in VERSIONS:
                totals[version] += analyze_query(compile_ast(intent, version)).joins
        assert totals["v2"] > totals["v1"]
        assert totals["v2"] > totals["v3"]
        assert totals["v3"] < totals["v1"]

    def test_unknown_kind_raises(self):
        from repro.workload import UnsupportedIntentError
        from repro.workload.intents import Intent

        with pytest.raises(UnsupportedIntentError):
            compile_intent(Intent("no_such_kind", ()), "v1")

    def test_unknown_version_raises(self, sampler):
        from repro.workload import UnsupportedIntentError

        with pytest.raises(UnsupportedIntentError):
            compile_intent(sampler.sample_intent("cup_winner"), "v9")
