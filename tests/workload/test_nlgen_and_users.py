"""NL realization, noise generation and the deployment log (Table 1)."""

import random

import pytest

from repro.workload import (
    ALL_KINDS,
    DeploymentSimulator,
    QuestionCategory,
    make_intent,
    misspell,
    realize,
    realize_all,
    summarize,
)


class TestRealization:
    def test_every_kind_realizes(self, sampler):
        rng = random.Random(3)
        for kind in ALL_KINDS:
            question = realize(sampler.sample_intent(kind), rng)
            assert question
            assert "{" not in question and "}" not in question

    def test_slots_appear_in_question(self):
        intent = make_intent("match_score", team_a="Germany", team_b="Brazil", year=2014)
        for question in realize_all(intent):
            assert "Germany" in question
            assert "Brazil" in question
            assert "2014" in question

    def test_prize_synonyms_surface(self):
        intent = make_intent("prize_count_team", team="Germany", prize="runner_up")
        questions = " ".join(realize_all(intent))
        # The lexical gap: questions say "second place"/"final", never
        # the column name "runner_up".
        assert "runner_up" not in questions

    def test_paraphrases_differ(self):
        intent = make_intent("cup_winner", year=2014)
        assert len(set(realize_all(intent))) > 1


class TestMisspelling:
    def test_misspelling_changes_text(self):
        rng = random.Random(5)
        text = "How many goals did Marlu Ferratorez score in 2014?"
        corrupted = misspell(text, rng)
        assert corrupted != text
        # Length changes by at most one character.
        assert abs(len(corrupted) - len(text)) <= 1

    def test_short_text_unchanged(self):
        rng = random.Random(5)
        assert misspell("Who won?", rng) == "Who won?"

    def test_deterministic(self):
        text = "How many goals did Marlu Ferratorez score in 2014?"
        assert misspell(text, random.Random(9)) == misspell(text, random.Random(9))


class TestDeploymentLog:
    @pytest.fixture(scope="class")
    def records(self, universe):
        return DeploymentSimulator(universe, seed=2022).run(5_900)

    def test_question_count(self, records):
        assert len(records) == 5_900

    def test_table1_statistics_in_paper_band(self, records):
        """Paper: 5,900 / 5,275 / 625 / 174 / 949 / 1,287."""
        stats = summarize(records)
        assert stats.questions_issued == 5_900
        assert stats.sql_generated + stats.no_sql_generated == 5_900
        assert 0.85 <= stats.generation_rate <= 0.93  # paper: 0.894
        assert 120 <= stats.thumbs_up <= 240  # paper: 174
        assert 800 <= stats.thumbs_down <= 1_100  # paper: 949
        assert 1_050 <= stats.corrected_queries <= 1_500  # paper: 1,287

    def test_non_english_questions_present(self, records):
        non_english = [
            r for r in records if r.category is QuestionCategory.NON_ENGLISH
        ]
        assert len(non_english) > 200
        assert any("Weltmeisterschaft" in r.question or "gewonnen" in r.question
                   for r in non_english)

    def test_non_english_rarely_generates_sql(self, records):
        non_english = [r for r in records if r.category is QuestionCategory.NON_ENGLISH]
        rate = sum(1 for r in non_english if r.sql_generated) / len(non_english)
        clean = [r for r in records if r.category is QuestionCategory.CLEAN]
        clean_rate = sum(1 for r in clean if r.sql_generated) / len(clean)
        assert rate < 0.5 < clean_rate

    def test_corrections_only_for_wrong_predictions(self, records):
        for record in records:
            if record.corrected_sql is not None:
                assert record.prediction_correct is False

    def test_corrected_sql_is_gold(self, records, football):
        """Expert corrections execute and differ from the prediction."""
        corrected = [r for r in records if r.corrected_sql is not None][:25]
        assert corrected
        for record in corrected:
            football["v1"].execute(record.corrected_sql)
            assert record.corrected_sql != record.predicted_sql

    def test_deterministic(self, universe):
        a = DeploymentSimulator(universe, seed=5).run(200)
        b = DeploymentSimulator(universe, seed=5).run(200)
        assert [r.question for r in a] == [r.question for r in b]
