"""Deterministic admission-control tests (fake monotonic clock)."""

import pytest

from repro.serving import QuotaPolicy, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.5)  # one token accrues
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == 2.0

    def test_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.retry_after() == 0.0
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after() == float("inf")
        clock.advance(1e9)
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestQuotaPolicy:
    def test_tenants_are_isolated(self):
        clock = FakeClock()
        policy = QuotaPolicy(rate=1.0, burst=1.0, clock=clock)
        assert policy.admit("alice") == (True, 0.0)
        admitted, retry_after = policy.admit("alice")
        assert not admitted
        assert retry_after == pytest.approx(1.0)
        # bob has his own (full) bucket
        assert policy.admit("bob") == (True, 0.0)

    def test_overrides(self):
        clock = FakeClock()
        policy = QuotaPolicy(
            rate=1.0, burst=1.0, overrides={"partner": (1.0, 3.0)}, clock=clock
        )
        assert [policy.admit("partner")[0] for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]
        assert [policy.admit("anon")[0] for _ in range(2)] == [True, False]

    def test_tenants_snapshot(self):
        clock = FakeClock()
        policy = QuotaPolicy(rate=1.0, burst=2.0, clock=clock)
        policy.admit("alice")
        assert policy.tenants() == {"alice": pytest.approx(1.0)}
