"""Load-generator tests: schedules, summaries and one open-loop run."""

import asyncio
import threading

import pytest

from repro.deployment import TextToSQLService
from repro.serving import (
    AsyncTextToSQLService,
    LoadReport,
    ThreadShard,
    max_sustainable_qps,
    poisson_arrivals,
    question_stream,
    run_open_loop,
    summarize,
)
from repro.serving.service import ServingResponse
from repro.sqlengine import Database, Schema, make_column
from repro.systems import Prediction


class TestPoissonArrivals:
    def test_deterministic_per_seed(self):
        assert poisson_arrivals(50, 2.0, seed=7) == poisson_arrivals(50, 2.0, seed=7)
        assert poisson_arrivals(50, 2.0, seed=7) != poisson_arrivals(50, 2.0, seed=8)

    def test_rate_and_bounds(self):
        arrivals = poisson_arrivals(100, 10.0, seed=1)
        assert all(0 < offset < 10.0 for offset in arrivals)
        assert sorted(arrivals) == arrivals
        # ~1000 expected; Poisson σ≈32, so ±5σ is a safe deterministic band
        assert 840 < len(arrivals) < 1160

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0)


class TestQuestionStream:
    def test_shape_and_determinism(self):
        stream = question_stream(["hospital", "retail"], size=40, seed=3)
        assert len(stream) == 40
        assert {domain for domain, _ in stream} == {"hospital", "retail"}
        assert stream == question_stream(["hospital", "retail"], size=40, seed=3)

    def test_requires_domains(self):
        with pytest.raises(ValueError):
            question_stream([], size=10)


def _response(status="ok", latency=0.01, coalesced=False):
    return ServingResponse(
        question="q",
        tenant="t",
        domain="d",
        status=status,
        latency_seconds=latency,
        coalesced=coalesced,
    )


class TestSummarize:
    def test_counts_and_percentiles(self):
        responses = [
            _response(latency=0.010),
            _response(latency=0.020),
            _response(status="overloaded"),
            _response(status="error"),
            _response(status="timeout"),
            _response(latency=0.030, coalesced=True),
        ]
        report = summarize(responses, offered_qps=10.0, wall_seconds=2.0)
        assert report.requests == 6
        assert report.completed == 3
        assert report.shed == 1 and report.errors == 1 and report.timeouts == 1
        assert report.coalesced == 1
        assert report.shed_rate == pytest.approx(1 / 6)
        assert report.achieved_qps == pytest.approx(1.5)
        assert report.p50_seconds == pytest.approx(0.020)
        case = report.as_case()
        assert case["p50_ms"] == pytest.approx(20.0)
        assert case["offered_qps"] == 10.0


class TestMaxSustainableQps:
    def _report(self, qps, shed_rate=0.0, p99=0.01):
        return LoadReport(
            offered_qps=qps,
            duration_seconds=1.0,
            requests=100,
            completed=100,
            shed=0,
            errors=0,
            timeouts=0,
            coalesced=0,
            achieved_qps=qps,
            shed_rate=shed_rate,
            p50_seconds=p99 / 2,
            p95_seconds=p99,
            p99_seconds=p99,
            mean_seconds=p99 / 2,
        )

    def test_shed_gate(self):
        reports = [
            self._report(50),
            self._report(100),
            self._report(200, shed_rate=0.05),
        ]
        assert max_sustainable_qps(reports) == 100

    def test_p99_slo_gate(self):
        reports = [self._report(50, p99=0.01), self._report(100, p99=0.9)]
        assert max_sustainable_qps(reports, p99_slo_seconds=0.5) == 50
        assert max_sustainable_qps(reports) == 100  # no SLO: shed only

    def test_no_rate_qualifies(self):
        assert max_sustainable_qps([self._report(50, shed_rate=1.0)]) == 0.0


class TestOpenLoopRun:
    def test_open_loop_over_stub_tier(self):
        schema = Schema("lg")
        schema.create_table(
            "team",
            [
                make_column("team_id", "int", primary_key=True),
                make_column("name", "text"),
            ],
        )
        database = Database(schema)
        database.insert("team", (1, "Brazil"))

        class Stub:
            def __init__(self):
                self._lock = threading.Lock()
                self.predictions = 0

            def predict(self, question):
                with self._lock:
                    self.predictions += 1
                return Prediction(sql="SELECT name FROM team", latency_seconds=0.01)

        service = TextToSQLService(Stub(), database)
        serving = AsyncTextToSQLService([ThreadShard({"teams": service})])
        traffic = [("teams", f"q{i}") for i in range(5)]
        arrivals = poisson_arrivals(200, 0.5, seed=11)

        async def scenario():
            async with serving:
                return await run_open_loop(
                    serving,
                    traffic,
                    arrivals,
                    tenants=("a", "b"),
                    explicit_domain=True,
                    offered_qps=200.0,
                )

        report = asyncio.run(scenario())
        serving.close()
        assert report.offered_qps == 200.0
        assert report.requests == len(arrivals)
        # single-flight coalesces wrapped-around repeats; every request
        # still completes
        assert report.completed == len(arrivals)
        assert report.shed == 0
        assert report.p99_seconds >= report.p50_seconds >= 0.0
