"""Async serving-tier tests: single-flight, backpressure, batching.

Everything here runs on stub systems over tiny private databases, so
the assertions are exact: prediction counts, shed reasons and batch
shapes are all deterministic.  ``asyncio.run`` drives each scenario
(no event-loop plugin needed).
"""

import asyncio
import threading

import pytest

from repro.deployment import TextToSQLService, UnroutableQuestionError
from repro.serving import (
    AsyncTextToSQLService,
    DomainSpec,
    Overloaded,
    QuotaPolicy,
    ThreadShard,
    assign_shards,
)
from repro.serving.shards import _system_class
from repro.sqlengine import Database, Schema, make_column
from repro.systems import Prediction


def _database(name="srv", table="team", rows=(("Brazil",), ("Chile",))):
    schema = Schema(name)
    schema.create_table(
        table,
        [
            make_column(f"{table}_id", "int", primary_key=True),
            make_column("name", "text"),
        ],
    )
    database = Database(schema)
    for index, (value,) in enumerate(rows, start=1):
        database.insert(table, (index, value))
    return database


class StubSystem:
    """Deterministic stand-in; optionally gated or exploding."""

    def __init__(self, answers, gate=None, boom=False):
        self.answers = dict(answers)
        self.gate = gate  # threading.Event every predict waits on
        self.boom = boom
        self._lock = threading.Lock()
        self.predictions = 0

    def predict(self, question):
        if self.gate is not None:
            self.gate.wait(timeout=30)
        if self.boom:
            raise RuntimeError("model exploded")
        with self._lock:
            self.predictions += 1
        sql = self.answers.get(question)
        if sql is None:
            return Prediction(sql=None, failure="no_candidate", latency_seconds=0.1)
        return Prediction(sql=sql, latency_seconds=0.5)


TEAMS = "list the teams"
TEAMS_SQL = "SELECT name FROM team ORDER BY team_id"


def _serving(system=None, cache=0, **kwargs):
    system = system or StubSystem({TEAMS: TEAMS_SQL})
    service = TextToSQLService(system, _database(), response_cache_size=cache)
    return AsyncTextToSQLService([ThreadShard({"teams": service})], **kwargs), system


class TestAssignShards:
    def test_round_robin(self):
        assert assign_shards(["a", "b", "c", "d", "e"], 2) == [
            ["a", "c", "e"],
            ["b", "d"],
        ]

    def test_capped_at_domain_count(self):
        assert assign_shards(["a", "b"], 8) == [["a"], ["b"]]

    def test_positive_count_required(self):
        with pytest.raises(ValueError):
            assign_shards(["a"], 0)

    def test_unknown_system_name(self):
        with pytest.raises(ValueError, match="unknown system"):
            _system_class("not-a-system")


class TestSingleFlight:
    def test_identical_concurrent_questions_predict_once(self):
        # the ISSUE acceptance test: N identical concurrent questions,
        # exactly one underlying prediction.  Response cache is OFF, so
        # coalescing is the only thing that can explain the count.
        serving, system = _serving(cache=0)

        async def scenario():
            async with serving:
                return await serving.ask_many([TEAMS] * 8)

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == ["ok"] * 8
        assert system.predictions == 1
        assert sum(r.coalesced for r in responses) == 7
        first = responses[0].response
        assert all(r.response.rows == first.rows for r in responses)
        assert serving.metrics()["coalesced"] == 7

    def test_inflight_key_released_after_completion(self):
        serving, system = _serving(cache=0)

        async def scenario():
            async with serving:
                await serving.ask(TEAMS)
                await serving.ask(TEAMS)

        asyncio.run(scenario())
        # sequential asks must not coalesce: the key is popped on resolve
        assert system.predictions == 2
        assert serving.metrics()["inflight_keys"] == 0

    def test_single_flight_can_be_disabled(self):
        serving, system = _serving(cache=0, single_flight=False)

        async def scenario():
            async with serving:
                return await serving.ask_many([TEAMS] * 4)

        responses = asyncio.run(scenario())
        assert all(r.status == "ok" for r in responses)
        assert not any(r.coalesced for r in responses)
        # the batch layer still dedups identical questions downstream
        assert system.predictions == 1


class TestBackpressure:
    def test_tenant_quota_sheds_typed_overloaded(self):
        clock_now = [0.0]
        quota = QuotaPolicy(rate=1.0, burst=2.0, clock=lambda: clock_now[0])
        serving, system = _serving(quota=quota)

        async def scenario():
            async with serving:
                first = await serving.ask(TEAMS, tenant="alice")
                second = await serving.ask(TEAMS, tenant="alice")
                shed = await serving.ask(TEAMS, tenant="alice")
                other = await serving.ask(TEAMS, tenant="bob")
                return first, second, shed, other

        first, second, shed, other = asyncio.run(scenario())
        assert first.status == second.status == "ok"
        assert isinstance(shed, Overloaded)
        assert shed.reason == "tenant_quota"
        assert shed.retry_after == pytest.approx(1.0)
        assert shed.response is None
        assert other.status == "ok"  # bob is not throttled by alice
        metrics = serving.metrics()
        assert metrics["shed"] == {"tenant_quota": 1, "queue_full": 0, "total": 1}
        assert metrics["shed_rate"] == pytest.approx(1 / 4)

    def test_queue_full_sheds_instead_of_hanging(self):
        gate = threading.Event()
        answers = {f"q{i}": TEAMS_SQL for i in range(3)}
        serving, system = _serving(
            system=StubSystem(answers, gate=gate), max_pending=2
        )

        async def scenario():
            async with serving:
                blocked = [
                    asyncio.create_task(serving.ask(f"q{i}", domain="teams"))
                    for i in range(2)
                ]
                await asyncio.sleep(0)  # let both enqueue against the gated worker
                shed = await serving.ask("q2", domain="teams")
                assert isinstance(shed, Overloaded)
                assert shed.reason == "queue_full"
                gate.set()
                done = await asyncio.gather(*blocked)
                return shed, done

        shed, done = asyncio.run(scenario())
        assert [r.status for r in done] == ["ok", "ok"]
        assert serving.metrics()["shed"]["queue_full"] == 1
        assert serving.metrics()["pending"] == 0

    def test_request_timeout_is_typed_not_hung(self):
        gate = threading.Event()
        serving, system = _serving(
            system=StubSystem({TEAMS: TEAMS_SQL}, gate=gate), request_timeout=0.05
        )

        async def scenario():
            async with serving:
                response = await serving.ask(TEAMS)
                gate.set()  # unblock the worker before teardown
                await asyncio.sleep(0.05)
                return response

        response = asyncio.run(scenario())
        assert response.status == "timeout"
        assert serving.metrics()["timeouts"] == 1


class TestBatching:
    def test_queued_requests_coalesce_into_one_batch(self):
        gate = threading.Event()
        answers = {f"q{i}": TEAMS_SQL for i in range(4)}
        serving, system = _serving(system=StubSystem(answers, gate=gate), max_batch=8)

        async def scenario():
            async with serving:
                head = asyncio.create_task(serving.ask("q0", domain="teams"))
                await asyncio.sleep(0)  # q0 dispatched; worker gated
                rest = [
                    asyncio.create_task(serving.ask(f"q{i}", domain="teams"))
                    for i in range(1, 4)
                ]
                await asyncio.sleep(0)  # q1..q3 pile up in the shard queue
                gate.set()
                return await asyncio.gather(head, *rest)

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == ["ok"] * 4
        metrics = serving.metrics()
        assert metrics["max_batch_size"] == 3  # q1..q3 shipped as one ask_batch
        assert metrics["batched_questions"] == 4

    def test_worker_failure_is_typed_error(self):
        serving, system = _serving(system=StubSystem({}, boom=True))

        async def scenario():
            async with serving:
                return await serving.ask(TEAMS)

        response = asyncio.run(scenario())
        assert response.status == "error"
        assert "model exploded" in response.error
        assert serving.metrics()["errors"] == 1


class TestRoutingIntegration:
    def _two_domain_serving(self, **kwargs):
        teams = TextToSQLService(StubSystem({TEAMS: TEAMS_SQL}), _database())
        planets = TextToSQLService(
            StubSystem({"list the planets": "SELECT name FROM planet"}),
            _database(name="astro", table="planet", rows=(("Mars",), ("Venus",))),
        )
        shard_a = ThreadShard({"teams": teams})
        shard_b = ThreadShard({"planets": planets})
        return AsyncTextToSQLService([shard_a, shard_b], **kwargs)

    def test_lexicon_routing_across_shards(self):
        serving = self._two_domain_serving()

        async def scenario():
            async with serving:
                team = await serving.ask(TEAMS)
                planet = await serving.ask("list the planets")
                return team, planet

        team, planet = asyncio.run(scenario())
        assert team.domain == "teams" and team.response.rows == (("Brazil",), ("Chile",))
        assert planet.domain == "planets" and planet.response.rows == (
            ("Mars",),
            ("Venus",),
        )
        per_domain = serving.metrics()["questions_per_domain"]
        assert per_domain == {"teams": 1, "planets": 1}

    def test_explicit_unknown_domain_raises(self):
        serving = self._two_domain_serving()

        async def scenario():
            async with serving:
                with pytest.raises(UnroutableQuestionError):
                    await serving.ask(TEAMS, domain="nope")

        asyncio.run(scenario())

    def test_duplicate_domain_across_shards_rejected(self):
        service = TextToSQLService(StubSystem({}), _database())
        with pytest.raises(ValueError, match="two shards"):
            AsyncTextToSQLService(
                [ThreadShard({"teams": service}), ThreadShard({"teams": service})]
            )

    def test_from_router_shards_existing_services(self):
        from repro.deployment import DomainRouter

        router = DomainRouter()
        router.add_domain(
            "teams", TextToSQLService(StubSystem({TEAMS: TEAMS_SQL}), _database())
        )
        router.add_domain(
            "planets",
            TextToSQLService(
                StubSystem({"list the planets": "SELECT name FROM planet"}),
                _database(name="astro", table="planet", rows=(("Mars",),)),
            ),
        )
        serving = AsyncTextToSQLService.from_router(router, shard_count=2)
        assert serving.metrics()["shard_count"] == 2

        async def scenario():
            async with serving:
                return await serving.ask(TEAMS)

        assert asyncio.run(scenario()).status == "ok"

    def test_constructor_validation(self):
        service = TextToSQLService(StubSystem({}), _database())
        with pytest.raises(ValueError):
            AsyncTextToSQLService([ThreadShard({"teams": service})], max_batch=0)
        with pytest.raises(ValueError):
            AsyncTextToSQLService([ThreadShard({"teams": service})], max_pending=0)
        with pytest.raises(ValueError, match="workers"):
            AsyncTextToSQLService.from_specs(
                [DomainSpec(domain="football")], workers="fiber"
            )


class TestRealDomainSmoke:
    """One end-to-end pass over a real registered domain (thread shards)."""

    def test_football_thread_shard(self):
        serving = AsyncTextToSQLService.from_specs(
            [DomainSpec(domain="football", train=2, response_cache_size=16)],
            shard_count=1,
            workers="thread",
        )

        async def scenario():
            async with serving:
                return await serving.ask_many(
                    ["how many teams are there", "how many teams are there"]
                )

        responses = asyncio.run(scenario())
        serving.close()
        assert all(r.status == "ok" for r in responses)
        assert responses[0].domain == "football"
        assert serving.metrics()["completed"] == 2
