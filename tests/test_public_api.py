"""Public API integrity: __all__ exports exist and import cleanly.

Catches export drift — a renamed symbol that stays listed in __all__,
or a documented entry point that silently disappears.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sqlengine",
    "repro.footballdb",
    "repro.workload",
    "repro.nlp",
    "repro.analysis",
    "repro.systems",
    "repro.evaluation",
    "repro.benchmark",
    "repro.deployment",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    """Sorted __all__ keeps diffs reviewable."""
    module = importlib.import_module(package)
    exported = list(getattr(module, "__all__", []))
    assert exported == sorted(exported), package


def test_documented_quickstart_symbols_exist():
    """Every symbol the README quickstart uses must be importable."""
    from repro.benchmark import build_benchmark  # noqa: F401
    from repro.evaluation import ExecutionEvaluator  # noqa: F401
    from repro.footballdb import build_universe, load_all  # noqa: F401
    from repro.systems import GoldOracle, T5PicardKeys  # noqa: F401


def test_all_five_paper_systems_exported():
    from repro.systems import ALL_SYSTEMS

    names = {cls.spec.name for cls in ALL_SYSTEMS}
    assert names == {
        "ValueNet", "T5-Picard", "T5-Picard_Keys", "GPT-3.5", "LLaMA2-70B",
    }
