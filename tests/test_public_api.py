"""Public API integrity: __all__ exports exist and import cleanly.

Catches export drift — a renamed symbol that stays listed in __all__,
or a documented entry point that silently disappears.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sqlengine",
    "repro.domains",
    "repro.footballdb",
    "repro.workload",
    "repro.nlp",
    "repro.analysis",
    "repro.systems",
    "repro.evaluation",
    "repro.benchmark",
    "repro.deployment",
    "repro.serving",
    "repro.obs",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    """Sorted __all__ keeps diffs reviewable."""
    module = importlib.import_module(package)
    exported = list(getattr(module, "__all__", []))
    assert exported == sorted(exported), package


def test_documented_quickstart_symbols_exist():
    """Every symbol the README quickstart uses must be importable."""
    from repro.benchmark import build_benchmark  # noqa: F401
    from repro.evaluation import ExecutionEvaluator  # noqa: F401
    from repro.footballdb import build_universe, load_all  # noqa: F401
    from repro.systems import GoldOracle, T5PicardKeys  # noqa: F401


def test_all_five_paper_systems_exported():
    from repro.systems import ALL_SYSTEMS

    names = {cls.spec.name for cls in ALL_SYSTEMS}
    assert names == {
        "ValueNet", "T5-Picard", "T5-Picard_Keys", "GPT-3.5", "LLaMA2-70B",
    }


class TestFootballDecouplingBackwardCompat:
    """The footballdb → domain-registry refactor must not move the
    public surface: historical imports, signatures and aliases hold."""

    def test_footballdb_is_a_domain_instance(self):
        from repro.domains import DomainInstance
        from repro.footballdb import FootballDB

        assert issubclass(FootballDB, DomainInstance)

    def test_football_registered_in_domain_registry(self):
        from repro.domains import available_domains

        assert "football" in available_domains()

    def test_morph_shim_reexports_the_domain_generic_machinery(self):
        import repro.domains.morph as generic
        import repro.footballdb.morph as shim

        for name in ("SchemaMorpher", "MorphedModel", "verify_morph",
                     "result_signature", "DEFAULT_OPERATORS"):
            assert getattr(shim, name) is getattr(generic, name), name

    def test_identifier_styles_reexported(self):
        from repro.domains.naming import IDENTIFIER_STYLES as generic
        from repro.footballdb.naming import IDENTIFIER_STYLES as football

        assert football is generic

    def test_harness_keeps_football_alias(self):
        import inspect

        from repro.evaluation import Harness

        harness = Harness.__new__(Harness)
        harness.domain = marker = object()
        assert harness.football is marker
        # first parameter is still positional, so Harness(football, dataset)
        # call sites keep working
        parameters = list(inspect.signature(Harness.__init__).parameters)
        assert parameters[1:3] == ["domain", "dataset"]

    def test_benchmark_dataset_default_versions(self):
        from repro.benchmark import BenchmarkDataset

        dataset = BenchmarkDataset(
            train_examples=[], test_examples=[], pool_examples=[]
        )
        assert dataset.versions == ("v1", "v2", "v3")

    def test_perturb_events_importable_from_both_homes(self):
        from repro.evaluation import perturb_events  # noqa: F401
        from repro.footballdb.perturb import perturb_events  # noqa: F401,F811

    def test_no_module_level_footballdb_imports(self):
        """The refactored modules route through the domain registry: no
        eager ``repro.footballdb`` imports remain (lazy, inside-function
        imports for the football-specific paths are fine)."""
        import inspect

        import repro.benchmark.dataset
        import repro.evaluation.crossdomain
        import repro.evaluation.harness
        import repro.evaluation.parallel
        import repro.evaluation.test_suite

        for module in (
            repro.benchmark.dataset,
            repro.evaluation.crossdomain,
            repro.evaluation.harness,
            repro.evaluation.parallel,
            repro.evaluation.test_suite,
        ):
            for line in inspect.getsource(module).splitlines():
                if line.startswith(("import repro.footballdb", "from repro.footballdb")):
                    raise AssertionError(f"{module.__name__}: {line.strip()}")
