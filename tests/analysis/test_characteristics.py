"""Tests for the query characteristics extractor (Table 3 / Figure 8)."""

import pytest

from repro.analysis import analyze_query, mean_characteristics
from repro.analysis.characteristics import FIGURE8_BUCKETS


class TestCounts:
    def test_simple_query(self):
        c = analyze_query("SELECT a FROM t")
        assert (c.joins, c.projections, c.filters) == (0, 1, 0)
        assert (c.aggregations, c.set_operations, c.subqueries) == (0, 0, 0)

    def test_projection_count_uses_first_core(self):
        c = analyze_query("SELECT a, b FROM t UNION SELECT c, d FROM u")
        assert c.projections == 2

    def test_join_count_spans_union_branches(self):
        sql = (
            "SELECT a FROM t JOIN u ON t.x = u.x "
            "UNION SELECT a FROM t JOIN u ON t.x = u.x"
        )
        assert analyze_query(sql).joins == 2

    def test_filters_flatten_conjunctions(self):
        sql = "SELECT a FROM t WHERE x = 1 AND y ILIKE '%b%' AND z BETWEEN 1 AND 2"
        assert analyze_query(sql).filters == 3

    def test_filters_count_or_atoms(self):
        sql = "SELECT a FROM t WHERE x = 1 OR y = 2"
        assert analyze_query(sql).filters == 2

    def test_join_on_predicates_are_not_filters(self):
        sql = "SELECT a FROM t JOIN u ON t.x = u.x WHERE t.y = 1"
        assert analyze_query(sql).filters == 1

    def test_aggregations_in_projection_having_order(self):
        sql = (
            "SELECT a, count(*) FROM t GROUP BY a "
            "HAVING sum(b) > 3 ORDER BY max(c)"
        )
        assert analyze_query(sql).aggregations == 3

    def test_set_operations_counted(self):
        sql = "SELECT a FROM t UNION SELECT a FROM u UNION SELECT a FROM v"
        assert analyze_query(sql).set_operations == 2

    def test_subqueries_counted(self):
        sql = (
            "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = "
            "(SELECT max(w) FROM v))"
        )
        assert analyze_query(sql).subqueries == 2

    def test_length_is_characters(self):
        sql = "SELECT a FROM t"
        assert analyze_query(sql).length == len(sql)

    def test_figure4_v1_query_shape(self):
        sql = (
            "SELECT T2.teamname, T3.teamname, T1.home_team_goals, T1.away_team_goals "
            "FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id "
            "WHERE T2.teamname ILIKE '%Germany%' AND T3.teamname ILIKE '%Brazil%' "
            "AND T1.year = 2014 "
            "UNION "
            "SELECT T2.teamname, T3.teamname, T1.home_team_goals, T1.away_team_goals "
            "FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id "
            "WHERE T2.teamname ILIKE '%Brazil%' AND T3.teamname ILIKE '%Germany%' "
            "AND T1.year = 2014"
        )
        c = analyze_query(sql)
        assert c.joins == 4  # two per branch
        assert c.projections == 4
        assert c.set_operations == 1
        assert c.filters == 6


class TestBuckets:
    def test_bucket_labels(self):
        c = analyze_query(
            "SELECT a, count(*) FROM t JOIN u ON t.x = u.x WHERE y = 1 GROUP BY a"
        )
        labels = c.bucket_labels()
        assert "1 filter" in labels
        assert ">=2 project" in labels
        assert "1 join" in labels
        assert ">=1 agg" in labels
        assert ">=1 set" not in labels

    def test_bucket_labels_are_known(self):
        c = analyze_query("SELECT a FROM t UNION SELECT a FROM u")
        assert set(c.bucket_labels()) <= set(FIGURE8_BUCKETS)

    def test_zero_filter_query_in_no_filter_bucket(self):
        c = analyze_query("SELECT a FROM t")
        assert not any("filter" in label for label in c.bucket_labels())


class TestMeans:
    def test_mean_characteristics(self):
        queries = ["SELECT a FROM t", "SELECT a FROM t JOIN u ON t.x = u.x"]
        means = mean_characteristics(queries)
        assert means["joins"] == 0.5
        assert means["projections"] == 1.0

    def test_mean_of_empty_set(self):
        means = mean_characteristics([])
        assert means["joins"] == 0.0
