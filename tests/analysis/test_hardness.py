"""Tests for the Spider hardness classifier (Figure 7 support)."""

import pytest

from repro.analysis import Hardness, classify_hardness, hardness_score


class TestLevels:
    def test_easy_single_projection_no_join(self):
        assert classify_hardness("SELECT name FROM team") is Hardness.EASY
        assert classify_hardness("SELECT count(*) FROM team") is Hardness.EASY
        assert (
            classify_hardness("SELECT name FROM team WHERE year = 2014")
            is Hardness.EASY
        )

    def test_medium_examples(self):
        assert (
            classify_hardness("SELECT name, year FROM team WHERE year = 2014")
            is Hardness.MEDIUM
        )
        assert (
            classify_hardness(
                "SELECT t.name FROM team AS t JOIN player AS p ON t.id = p.team_id"
            )
            is Hardness.MEDIUM
        )

    def test_hard_examples(self):
        sql = (
            "SELECT t.name, count(*) FROM team AS t JOIN player AS p "
            "ON t.id = p.team_id WHERE p.goals > 2 AND p.height > 1.8 "
            "GROUP BY t.name"
        )
        assert classify_hardness(sql) is Hardness.HARD

    def test_extra_with_set_operation_and_joins(self):
        sql = (
            "SELECT t.name, p.name FROM team AS t JOIN player AS p ON t.id = p.team_id "
            "WHERE p.goals > 2 AND t.year = 2014 "
            "UNION "
            "SELECT t.name, p.name FROM team AS t JOIN player AS p ON t.id = p.team_id "
            "WHERE p.goals > 5 AND t.year = 2018"
        )
        assert classify_hardness(sql) is Hardness.EXTRA

    def test_subquery_alone_is_hard(self):
        sql = "SELECT name FROM team WHERE id IN (SELECT team_id FROM player)"
        assert classify_hardness(sql) is Hardness.HARD

    def test_subquery_plus_complexity_is_extra(self):
        sql = (
            "SELECT name, year FROM team WHERE id IN (SELECT team_id FROM player) "
            "AND year > 1990 ORDER BY year LIMIT 3"
        )
        assert classify_hardness(sql) is Hardness.EXTRA


class TestMonotonicity:
    def test_adding_complexity_never_decreases_hardness(self):
        base = "SELECT name FROM team"
        richer = "SELECT name, year FROM team WHERE year = 2014 ORDER BY year LIMIT 1"
        richest = (
            "SELECT t.name, count(*) FROM team AS t JOIN player AS p "
            "ON t.id = p.team_id WHERE t.year = 2014 AND p.goals > 1 "
            "GROUP BY t.name ORDER BY count(*) DESC LIMIT 1"
        )
        scores = [hardness_score(q) for q in (base, richer, richest)]
        assert scores == sorted(scores)

    def test_numeric_mapping(self):
        assert Hardness.EASY.numeric == 1
        assert Hardness.EXTRA.numeric == 4
