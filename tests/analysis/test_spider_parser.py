"""Tests for the Spider-parser limitations that gate ValueNet."""

import pytest

from repro.analysis import SpiderParseError, spider_parse
from repro.analysis.spider_parser import (
    REASON_INVALID_SQL,
    REASON_REPEATED_TABLE,
    REASON_UNSUPPORTED_EXPR,
    REASON_UNSUPPORTED_JOIN,
    can_spider_parse,
)


class TestAccepted:
    def test_simple_query(self):
        parsed = spider_parse("SELECT a FROM t WHERE x = 1")
        assert parsed.tables == ["t"]
        assert parsed.where_conditions == 1

    def test_single_instance_join(self):
        parsed = spider_parse(
            "SELECT t.a FROM t JOIN u ON t.x = u.x WHERE u.y = 2 GROUP BY t.a"
        )
        assert parsed.tables == ["t", "u"]
        assert parsed.join_count == 1
        assert parsed.group_by is True

    def test_union_with_distinct_tables(self):
        parsed = spider_parse("SELECT a FROM t UNION SELECT a FROM u")
        assert parsed.set_operation == "UNION"

    def test_nested_flag(self):
        parsed = spider_parse("SELECT a FROM t WHERE x IN (SELECT y FROM u)")
        assert parsed.nested is True


class TestRejected:
    def test_repeated_table_instances(self):
        """The Figure 4 v1 pattern must be rejected."""
        sql = (
            "SELECT T2.teamname, T3.teamname FROM match AS T1 "
            "JOIN national_team AS T2 ON T2.team_id = T1.home_team_id "
            "JOIN national_team AS T3 ON T3.team_id = T1.away_team_id"
        )
        with pytest.raises(SpiderParseError) as excinfo:
            spider_parse(sql)
        assert excinfo.value.reason == REASON_REPEATED_TABLE

    def test_self_join_rejected(self):
        with pytest.raises(SpiderParseError):
            spider_parse("SELECT * FROM t AS a JOIN t AS b ON a.x = b.y")

    def test_repeated_table_in_one_union_branch_rejected(self):
        sql = (
            "SELECT a FROM t UNION "
            "SELECT T1.a FROM t AS T1 JOIN t AS T2 ON T1.x = T2.x"
        )
        with pytest.raises(SpiderParseError) as excinfo:
            spider_parse(sql)
        assert excinfo.value.reason == REASON_REPEATED_TABLE

    def test_left_join_rejected(self):
        with pytest.raises(SpiderParseError) as excinfo:
            spider_parse("SELECT a FROM t LEFT JOIN u ON t.x = u.x")
        assert excinfo.value.reason == REASON_UNSUPPORTED_JOIN

    def test_case_rejected(self):
        with pytest.raises(SpiderParseError) as excinfo:
            spider_parse("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t")
        assert excinfo.value.reason == REASON_UNSUPPORTED_EXPR

    def test_cast_rejected(self):
        with pytest.raises(SpiderParseError) as excinfo:
            spider_parse("SELECT CAST(a AS INTEGER) FROM t")
        assert excinfo.value.reason == REASON_UNSUPPORTED_EXPR

    def test_invalid_sql(self):
        with pytest.raises(SpiderParseError) as excinfo:
            spider_parse("SELEC a FRM t")
        assert excinfo.value.reason == REASON_INVALID_SQL


class TestPredicate:
    def test_can_spider_parse(self):
        assert can_spider_parse("SELECT a FROM t") is True
        assert can_spider_parse("SELECT * FROM t AS a JOIN t AS b ON a.x = b.y") is False
