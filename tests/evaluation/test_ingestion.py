"""Continuous evaluation under ingestion: pacing, epoch pinning, report.

A fake, thread-safe clock replaces real time so the replay is
deterministic in shape: the ingestor drains its event budget at full
speed while the evaluation rounds snapshot concurrently, and the
torn-epoch invariant (every pinned ``data_epoch`` is a whole multiple
of ``batch_size`` past the freshly-loaded base) is asserted on every
round record.
"""

import threading
import time

import pytest

from repro.evaluation import (
    IngestionReplayDriver,
    IngestionReport,
    ReplayConfig,
)
from repro.obs import MetricsRegistry, bind_ingestion


class FakeClock:
    """Monotonic virtual time; ``sleep`` advances it and yields the GIL."""

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self._now += max(0.0, seconds)
        time.sleep(0)  # let the other threads run


CONFIG = ReplayConfig(
    domains=("hospital",),
    systems=("GPT-3.5",),
    seed=2022,
    rate=200.0,
    batch_size=8,
    max_events=160,
    rounds=3,
    shots=4,
)


@pytest.fixture(scope="module")
def report() -> IngestionReport:
    clock = FakeClock()
    driver = IngestionReplayDriver(CONFIG, clock=clock, sleep=clock.sleep)
    return driver.run()


def test_no_round_observes_a_torn_epoch(report):
    assert report.rounds, "no evaluation rounds ran"
    for record in report.rounds:
        assert record.rows_ingested >= 0
        assert record.rows_ingested % CONFIG.batch_size == 0, (
            f"round {record.round_index} pinned a torn epoch: "
            f"{record.rows_ingested} rows past base"
        )


def test_epochs_monotonic_across_rounds(report):
    deltas = [record.rows_ingested for record in report.rounds]
    assert deltas == sorted(deltas)


def test_only_full_batches_reach_the_database(report):
    assert report.rows_inserted % CONFIG.batch_size == 0
    assert report.rows_inserted <= report.events_replayed
    assert report.events_replayed <= CONFIG.max_events


def test_rounds_report_accuracy_and_latency(report):
    for record in report.rounds:
        assert record.domain == "hospital"
        assert record.cells == len(CONFIG.systems)
        assert 0.0 <= record.accuracy <= 1.0
        assert record.latency_p50 <= record.latency_p95 <= record.latency_p99


def test_summary_shape(report):
    summary = report.summary()
    assert summary["rounds"] == len(report.rounds)
    assert summary["rows_inserted"] == report.rows_inserted
    assert 0.0 <= summary["accuracy_mean"] <= 1.0
    assert summary["latency_p50_ms"] <= summary["latency_p99_ms"]
    assert report.accuracy_curve() == [
        (r.rows_ingested, r.accuracy) for r in report.rounds
    ]


def test_stats_feed_the_metrics_registry():
    clock = FakeClock()
    config = ReplayConfig(
        domains=("hospital",),
        systems=("GPT-3.5",),
        rate=500.0,
        batch_size=4,
        max_events=20,
        rounds=1,
        shots=2,
    )
    driver = IngestionReplayDriver(config, clock=clock, sleep=clock.sleep)
    registry = MetricsRegistry()
    bind_ingestion(registry, driver)
    driver.run()
    snapshot = registry.snapshot()
    families = {name for name in snapshot if name.startswith("ingestion_")}
    assert {
        "ingestion_events_replayed",
        "ingestion_rows_inserted",
        "ingestion_batches_flushed",
        "ingestion_snapshots_taken",
        "ingestion_rounds_completed",
    } <= families


def test_config_validation():
    with pytest.raises(ValueError):
        IngestionReplayDriver(ReplayConfig(rate=0))
    with pytest.raises(ValueError):
        IngestionReplayDriver(ReplayConfig(batch_size=0))
