"""Process-pool grid evaluation: byte-identity, recipes, counters.

Process workers rebuild the whole evaluation stack from a
:class:`HarnessRecipe`, so these tests lock the core promise: the same
grid evaluated serially, through the thread pool, and through the
process pool produces byte-identical ``EvaluationResult`` fingerprints
and identical deterministic ``GridSummary`` fields.  A cheap generated
domain (hospital) keeps the worker start-up affordable.
"""

import multiprocessing
import pickle

import pytest

from repro.evaluation import (
    GridConfig,
    Harness,
    HarnessRecipe,
    ParallelHarness,
    ProcessGridExecutor,
    build_harness,
    evaluate_grid_in_processes,
)
from repro.systems import GPT35, T5Picard


def outcome_fingerprint(result):
    """Everything observable about one configuration's outcomes."""
    return (
        result.system,
        result.version,
        result.train_size,
        result.shots,
        result.fold,
        tuple(result.outcomes),
    )

RECIPE = HarnessRecipe(domain="hospital", seed=2022, morph_count=1, morph_steps=2)


@pytest.fixture(scope="module")
def recipe_harness():
    return build_harness(RECIPE)


@pytest.fixture(scope="module")
def grid(recipe_harness):
    configs = []
    for version in recipe_harness.domain.versions:
        configs.append(GridConfig.make(GPT35, version, shots=4, fold=0))
        configs.append(GridConfig.make(GPT35, version, shots=4, fold=1))
        configs.append(GridConfig.make(T5Picard, version, train_size=16))
    return configs


@pytest.fixture(scope="module")
def serial_results(recipe_harness, grid):
    return [
        recipe_harness.evaluate(
            config.system_cls,
            config.version,
            train_size=config.train_size,
            shots=config.shots,
            fold=config.fold,
        )
        for config in grid
    ]


@pytest.fixture(scope="module")
def process_run(grid):
    with ProcessGridExecutor(RECIPE, max_workers=2) as executor:
        results, summary = executor.run(grid)
        stats = executor.stats()
    return results, summary, stats


def test_recipe_is_picklable_and_frozen():
    clone = pickle.loads(pickle.dumps(RECIPE))
    assert clone == RECIPE
    with pytest.raises(Exception):
        clone.domain = "retail"


def test_recipe_rebuild_is_deterministic(recipe_harness):
    again = build_harness(RECIPE)
    assert again.domain.versions == recipe_harness.domain.versions
    for version in again.domain.versions:
        assert (
            again.domain[version].data_epoch()
            == recipe_harness.domain[version].data_epoch()
        )


def test_process_pool_matches_serial(serial_results, process_run):
    results, _, _ = process_run
    assert [outcome_fingerprint(r) for r in results] == [
        outcome_fingerprint(r) for r in serial_results
    ]


def test_process_pool_matches_thread_pool(grid, process_run):
    # a fresh recipe-built harness on this side, thread-pooled
    harness = build_harness(RECIPE)
    runner = ParallelHarness(harness.domain, harness.dataset)
    runner.seed_pool(harness)
    thread_results, thread_summary = runner.run(grid, max_workers=3)
    process_results, process_summary, _ = process_run
    assert [outcome_fingerprint(r) for r in process_results] == [
        outcome_fingerprint(r) for r in thread_results
    ]
    # deterministic summary fields agree; wall-clock naturally differs
    assert process_summary.configs == thread_summary.configs
    assert process_summary.questions == thread_summary.questions


def test_summary_and_stats(process_run, grid):
    _, summary, stats = process_run
    assert summary.configs == len(grid)
    assert summary.workers == 2
    assert summary.engine is None  # worker-local counters stay worker-side
    assert stats["runs"] == 1
    assert stats["cells_completed"] == len(grid)
    assert stats["questions_evaluated"] == summary.questions
    assert stats["wall_seconds_total"] > 0


def test_one_shot_wrapper(grid, serial_results):
    results, summary = evaluate_grid_in_processes(
        RECIPE, grid[:2], max_workers=2
    )
    assert [outcome_fingerprint(r) for r in results] == [
        outcome_fingerprint(r) for r in serial_results[:2]
    ]
    assert summary.configs == 2


def test_executor_requires_recipe_or_parent():
    with pytest.raises(ValueError):
        ProcessGridExecutor()


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="inherit_from needs fork copy-on-write",
)
def test_fork_inherit_mode(recipe_harness, grid, serial_results):
    with ProcessGridExecutor(inherit_from=recipe_harness, max_workers=2) as ex:
        results, summary = ex.run(grid)
    assert [outcome_fingerprint(r) for r in results] == [
        outcome_fingerprint(r) for r in serial_results
    ]
    assert summary.configs == len(grid)


def test_grid_config_pickles_by_reference():
    config = GridConfig.make(GPT35, "base", shots=4, fold=1)
    clone = pickle.loads(pickle.dumps(config))
    assert clone.system_cls is GPT35
    assert clone == config
