"""Regression: the figures' best-config memo must live on the harness.

The historical implementation memoized ``_best_config_results`` in a
module-level dict keyed on ``id(harness)``.  Two failure modes: after
the original harness was garbage-collected, CPython could hand its id
to a *new* harness, which then silently received the old harness's
results; and forked grid workers inherited (and grew) the parent's
dict.  The memo now hangs off the harness instance.
"""

import repro.evaluation.experiments as experiments
from repro.evaluation.experiments import _best_config_results
from repro.evaluation.harness import EvaluationResult


class CountingHarness:
    """Just enough surface for ``_best_config_results``."""

    def __init__(self) -> None:
        self.calls = 0

    def evaluate(self, system_cls, version, **kwargs):
        self.calls += 1
        return EvaluationResult(
            system=system_cls.spec.name,
            version=version,
            train_size=kwargs.get("train_size") or 0,
            shots=kwargs.get("shots"),
            fold=kwargs.get("fold", 0),
        )


def test_no_module_level_cache_remains():
    assert not hasattr(experiments, "_BEST_CONFIG_CACHE")


def test_memoized_per_instance_not_per_id():
    first = CountingHarness()
    once = _best_config_results(first, ("base",))
    evaluations = first.calls
    assert evaluations > 0
    # second call on the same instance: served from the instance memo
    assert _best_config_results(first, ("base",)) is once
    assert first.calls == evaluations

    # a distinct harness — even one reusing the first's id after GC —
    # must evaluate for itself, never inherit another's results
    del first
    second = CountingHarness()
    theirs = _best_config_results(second, ("base",))
    assert second.calls == evaluations
    assert theirs is not once


def test_distinct_version_axes_memoize_separately():
    harness = CountingHarness()
    base_only = _best_config_results(harness, ("base",))
    per_axis = harness.calls
    both = _best_config_results(harness, ("base", "other"))
    assert harness.calls == per_axis * 3  # ("base","other") re-ran both versions
    assert set(base_only) == {"base"}
    assert set(both) == {"base", "other"}
