"""Harness behaviour tests (shape constraints, not calibrated values)."""

import pytest

from repro.evaluation import EvaluationResult, Harness
from repro.evaluation.experiments import keys_ablation, picard_ablation, value_finder_ablation
from repro.systems import GPT35, Llama2, T5Picard, T5PicardKeys, ValueNet


class TestEvaluationResultEmpty:
    """Aggregates over zero outcomes must degrade, not raise."""

    def test_empty_mean_latency_is_zero(self):
        result = EvaluationResult(
            system="T5-Picard", version="v1", train_size=0, shots=None, fold=0
        )
        assert result.mean_latency == 0.0

    def test_empty_accuracy_and_spread(self):
        result = EvaluationResult(
            system="T5-Picard", version="v1", train_size=0, shots=None, fold=0
        )
        assert result.accuracy == 0.0
        assert result.generation_rate == 0.0
        assert result.latency_stdev == 0.0


class TestEvaluate:
    def test_outcome_count_equals_test_set(self, harness, dataset):
        result = harness.evaluate(ValueNet, "v3", train_size=100)
        assert len(result.outcomes) == len(dataset.test_examples)

    def test_accuracy_in_unit_interval(self, harness):
        result = harness.evaluate(T5Picard, "v1", train_size=100)
        assert 0.0 <= result.accuracy <= 1.0

    def test_train_size_monotonicity(self, harness):
        """The deterministic-draw design guarantees monotone curves."""
        accuracies = [
            harness.evaluate(T5PicardKeys, "v3", train_size=size).accuracy
            for size in (0, 100, 200, 300)
        ]
        assert accuracies == sorted(accuracies)

    def test_deterministic_across_runs(self, harness):
        a = harness.evaluate(ValueNet, "v2", train_size=100)
        b = harness.evaluate(ValueNet, "v2", train_size=100)
        assert [o.correct for o in a.outcomes] == [o.correct for o in b.outcomes]

    def test_hardness_breakdown_covers_all_questions(self, harness):
        result = harness.evaluate(T5Picard, "v1", train_size=100)
        by_hardness = result.accuracy_by_hardness()
        assert sum(count for _, count in by_hardness.values()) == len(result.outcomes)

    def test_bucket_breakdown(self, harness):
        result = harness.evaluate(T5Picard, "v3", train_size=100)
        buckets = result.accuracy_by_bucket()
        # v3 eliminates set operations: that bucket must be absent.
        assert ">=1 set" not in buckets
        assert "1 join" in buckets or ">=2 join" in buckets


class TestFolds:
    def test_fold_mean_and_spread(self, harness):
        mean, spread, results = harness.evaluate_folds(
            Llama2, "v1", shots=4, folds=3
        )
        assert len(results) == 3
        assert 0.0 <= mean <= 1.0
        assert spread >= 0.0

    def test_folds_use_different_samples(self, harness):
        _, spread, results = harness.evaluate_folds(GPT35, "v1", shots=10, folds=3)
        accuracies = {round(result.accuracy, 4) for result in results}
        # Three random 10-shot samples virtually never tie exactly.
        assert len(accuracies) > 1 or spread == 0.0


class TestPaperShapeConstraints:
    """Qualitative findings that must hold regardless of calibration."""

    def test_keys_help_everywhere(self, harness):
        report = keys_ablation(harness)
        for version, cells in report.items():
            assert cells["gain"] > 0, version

    def test_keys_gain_largest_in_v3(self, harness):
        """The optimized data model rewards FK-aware encoders most."""
        report = keys_ablation(harness)
        assert report["v3"]["gain"] >= report["v1"]["gain"] - 0.05

    def test_valuenet_improves_v1_to_v3(self, harness):
        v1 = harness.evaluate(ValueNet, "v1", train_size=300).accuracy
        v3 = harness.evaluate(ValueNet, "v3", train_size=300).accuracy
        assert v3 > v1

    def test_valuenet_generation_rate_rises_with_model_version(self, harness):
        """Fewer pipeline kills after each redesign."""
        rates = [
            harness.evaluate(ValueNet, version, train_size=300).generation_rate
            for version in ("v1", "v2", "v3")
        ]
        assert rates[2] > rates[0]
        assert rates[1] > rates[0]

    def test_picard_raises_validity_not_necessarily_accuracy(self, harness):
        report = picard_ablation(harness)
        assert report["picard_generation_rate"] >= report["unconstrained_generation_rate"]

    def test_value_finder_helps_valuenet(self, harness):
        report = value_finder_ablation(harness)
        assert report["with_value_finder"] >= report["without_value_finder"]

    def test_llm_latency_ordering(self, harness):
        gpt = harness.evaluate(GPT35, "v1", shots=10, fold=0)
        llama = harness.evaluate(Llama2, "v1", shots=4, fold=0)
        assert llama.mean_latency > gpt.mean_latency
