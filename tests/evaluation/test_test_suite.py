"""Distilled test-suite evaluation tests (the EX false-positive catcher)."""

import pytest

from repro.evaluation import TestSuiteEvaluator, perturb_events
from repro.footballdb import load_version


@pytest.fixture(scope="module")
def variant(universe):
    return perturb_events(universe, seed=7_001)


@pytest.fixture(scope="module")
def suite(universe, football):
    return TestSuiteEvaluator.build(
        universe, "v1", football["v1"], variant_seeds=(7_001,)
    )


class TestPerturbation:
    def test_entities_are_shared(self, universe, variant):
        assert variant.players is universe.players
        assert variant.teams is universe.teams
        assert variant.world_cups is universe.world_cups

    def test_fixtures_preserved(self, universe, variant):
        assert len(variant.matches) == len(universe.matches)
        for original, perturbed in zip(universe.matches, variant.matches):
            assert original.match_id == perturbed.match_id
            assert original.home_team_id == perturbed.home_team_id
            assert original.away_team_id == perturbed.away_team_id
            assert original.stage == perturbed.stage

    def test_scores_differ(self, universe, variant):
        differing = sum(
            1
            for original, perturbed in zip(universe.matches, variant.matches)
            if (original.home_goals, original.away_goals)
            != (perturbed.home_goals, perturbed.away_goals)
        )
        assert differing > len(universe.matches) * 0.4

    def test_podium_preserved(self, variant):
        """Knockout winners must still win: history cannot change."""
        for cup in variant.world_cups:
            final = next(
                m for m in variant.matches_in(cup.year) if m.stage == "final"
            )
            assert final.home_team_id == cup.winner_id
            assert final.home_goals > final.away_goals

    def test_events_consistent_with_new_scores(self, variant):
        for match in variant.matches_in(2014):
            events = variant.events_for_match(match.match_id)
            home = sum(
                1
                for e in events
                if e.team_id == match.home_team_id
                and e.event_type in ("goal", "penalty", "own_goal")
            )
            assert home == match.home_goals

    def test_variant_loads_into_all_schemas(self, variant):
        for version in ("v1", "v3"):
            db = load_version(variant, version)
            assert db.row_count() > 90_000

    def test_deterministic(self, universe):
        a = perturb_events(universe, seed=5)
        b = perturb_events(universe, seed=5)
        assert [m.home_goals for m in a.matches] == [m.home_goals for m in b.matches]


class TestSuiteEvaluation:
    def test_gold_matches_itself_on_suite(self, suite):
        sql = "SELECT count(*) FROM match WHERE year = 2014"
        assert suite.matches(sql, sql)

    def test_entity_facts_survive_perturbation(self, suite):
        """Podium questions have perturbation-invariant answers."""
        gold = (
            "SELECT T2.teamname FROM world_cup AS T1 JOIN national_team AS T2 "
            "ON T1.winner = T2.team_id WHERE T1.year = 2014"
        )
        assert suite.matches(gold, gold)

    def test_coincidental_count_match_is_caught(self, suite, football):
        """A wrong-year count that collides on the primary DB must fail
        the suite (the scores differ on the variant)."""
        gold = "SELECT sum(home_team_goals) FROM match WHERE year = 2014"
        db = football["v1"]
        target = db.execute(gold).rows[0][0]
        impostor = None
        for year in (1930, 1934, 1938, 1950, 1954, 1958, 1962, 1966, 1970):
            candidate = f"SELECT sum(home_team_goals) FROM match WHERE year = {year}"
            if db.execute(candidate).rows[0][0] == target:
                impostor = candidate
                break
        if impostor is None:
            pytest.skip("no coincidental collision in this universe")
        verdict = suite.verdict(impostor, gold)
        assert verdict.matches_primary is True
        assert verdict.false_positive is True

    def test_wrong_prediction_fails_both(self, suite):
        # 2014 hosted 32 teams, 1954 only 16 — the match counts differ,
        # so this wrong query cannot coincidentally collide (unlike
        # 2014 vs 2018, which both have 64 matches!).
        gold = "SELECT count(*) FROM match WHERE year = 2014"
        wrong = "SELECT count(*) FROM match WHERE year = 1954"
        verdict = suite.verdict(wrong, gold)
        assert not verdict.matches_primary
        assert not verdict.matches_suite

    def test_none_prediction(self, suite):
        verdict = suite.verdict(None, "SELECT 1")
        assert not verdict.matches_suite
