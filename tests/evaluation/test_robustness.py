"""Morphed data models as a first-class grid axis (acceptance path).

Installs seeded morphs of v1 into an isolated copy of the shared
harness fixtures, checks the rewritten gold labels are
execution-equivalent to the base on the test split, runs an
``evaluate_grid`` sweep across base + morphed versions and renders the
robustness curve — the N-point generalization of the paper's
three-model comparison.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.benchmark import BenchmarkDataset
from repro.evaluation import GridConfig, Harness, robustness_curve, robustness_points
from repro.footballdb import FootballDB, SchemaMorpher
from repro.footballdb.morph import result_signature
from repro.systems import GPT35

MORPH_COUNT = 3


@pytest.fixture(scope="module")
def iso_football(football):
    """Shallow copy: install_morphs must not leak registered versions
    into the session-scoped FootballDB shared with other modules."""
    return FootballDB(universe=football.universe, databases=dict(football.databases))


@pytest.fixture(scope="module")
def iso_dataset(dataset):
    """Examples with copied gold dicts, so add_version stays local."""

    def clone(examples):
        return [dataclasses.replace(e, gold=dict(e.gold)) for e in examples]

    return BenchmarkDataset(
        train_examples=clone(dataset.train_examples),
        test_examples=clone(dataset.test_examples),
        pool_examples=clone(dataset.pool_examples),
    )


@pytest.fixture(scope="module")
def iso_harness(iso_football, iso_dataset):
    return Harness(iso_football, iso_dataset)


@pytest.fixture(scope="module")
def morphs(iso_football):
    return SchemaMorpher(seed=2022).derive(
        iso_football["v1"], count=MORPH_COUNT, steps=3
    )


@pytest.fixture(scope="module")
def installed(iso_harness, morphs):
    return iso_harness.install_morphs(morphs)


class TestInstallation:
    def test_versions_registered(self, iso_football, iso_harness, installed, morphs):
        for morph, version in zip(morphs, installed):
            assert version in iso_football.versions
            assert iso_football[version] is morph.database
            assert iso_harness.oracle(version).get is not None

    def test_session_fixtures_untouched(self, football, dataset, installed):
        for version in installed:
            assert version not in football.versions
        assert all(
            version not in example.gold
            for version in installed
            for example in dataset.examples
        )

    def test_dataset_labeled_for_all_examples(self, iso_dataset, installed):
        for example in iso_dataset.examples:
            for version in installed:
                assert version in example.gold

    def test_double_install_rejected(self, iso_football, installed, morphs):
        with pytest.raises(ValueError):
            iso_football.register(installed[0], morphs[0].database)

    def test_gold_labels_execution_equivalent_on_test_split(
        self, iso_football, iso_dataset, morphs, installed
    ):
        """Rewritten gold returns base-identical results (EX semantics)."""
        base = iso_football["v1"]
        probe = iso_dataset.test_examples[:40]
        expected = {
            example.qid: result_signature(base.execute(example.gold["v1"]))
            for example in probe
        }
        for morph in morphs:
            for example in probe:
                observed = result_signature(
                    morph.database.execute(example.gold[morph.version])
                )
                assert observed == expected[example.qid], (
                    morph.version,
                    example.gold["v1"],
                )


class TestMorphGrid:
    @pytest.fixture(scope="class")
    def grid_run(self, iso_harness, installed):
        configs = [
            GridConfig.make(GPT35, version, shots=8, fold=0)
            for version in ["v1"] + list(installed)
        ]
        results, summary = iso_harness.evaluate_grid(configs, max_workers=4)
        return configs, results, summary

    def test_grid_covers_base_and_morphs(self, grid_run, iso_dataset):
        configs, results, summary = grid_run
        assert [r.version for r in results] == [c.version for c in configs]
        for result in results:
            assert len(result.outcomes) == len(iso_dataset.test_examples)
            assert 0.0 <= result.accuracy <= 1.0
        assert summary.configs == 1 + MORPH_COUNT

    def test_robustness_curve_renders_every_version(self, grid_run, morphs):
        _, results, _ = grid_run
        points = robustness_points(results)
        distances = {"v1": 0}
        distances.update({m.version: m.distance for m in morphs})
        text = robustness_curve(points, distances)
        assert "d=0  v1" in text
        for morph in morphs:
            assert morph.version in text
        assert "spread=" in text

    def test_morph_accuracy_stays_plausible(self, grid_run):
        """Morphs change accuracy but cannot nuke the system to zero:
        the simulated pipeline still answers schema-independent
        questions, so accuracy stays within a broad plausible band."""
        _, results, _ = grid_run
        by_version = {r.version: r.accuracy for r in results}
        for version, accuracy in by_version.items():
            assert 0.05 <= accuracy <= 0.95, (version, accuracy)
