"""Parallel grid evaluation: determinism, ordering, summaries.

The grid runs are expensive (each configuration fine-tunes a system
and evaluates the full test split), so serial and parallel sweeps are
computed once in module-scoped fixtures and every assertion reads from
them.
"""

import pytest

from repro.evaluation import GridConfig, GridSummary, default_worker_count
from repro.systems import GPT35, Llama2, T5Picard


def outcome_fingerprint(result):
    """Everything observable about one configuration's outcomes."""
    return (
        result.system,
        result.version,
        result.train_size,
        result.shots,
        result.fold,
        tuple(result.outcomes),
    )


SMALL_GRID = (
    GridConfig.make(GPT35, "v1", shots=10, fold=0),
    GridConfig.make(GPT35, "v1", shots=10, fold=1),
    GridConfig.make(Llama2, "v3", shots=4, fold=0),
    GridConfig.make(T5Picard, "v2", train_size=100),
)


@pytest.fixture(scope="module")
def serial_results(harness):
    return [
        harness.evaluate(
            config.system_cls,
            config.version,
            train_size=config.train_size,
            shots=config.shots,
            fold=config.fold,
        )
        for config in SMALL_GRID
    ]


@pytest.fixture(scope="module")
def parallel_run(harness):
    return harness.evaluate_grid(SMALL_GRID, max_workers=4)


@pytest.fixture(scope="module")
def parallel_run_two_workers(harness):
    return harness.evaluate_grid(SMALL_GRID, max_workers=2)


class TestEvaluateGrid:
    def test_parallel_equals_serial(self, serial_results, parallel_run):
        """Acceptance: byte-identical results regardless of worker count."""
        results, summary = parallel_run
        assert [outcome_fingerprint(r) for r in results] == [
            outcome_fingerprint(r) for r in serial_results
        ]
        assert summary.configs == len(SMALL_GRID)

    def test_worker_count_does_not_change_results(
        self, parallel_run, parallel_run_two_workers
    ):
        first, _ = parallel_run
        second, _ = parallel_run_two_workers
        assert [outcome_fingerprint(r) for r in first] == [
            outcome_fingerprint(r) for r in second
        ]

    def test_results_in_input_order(self, parallel_run):
        results, _ = parallel_run
        for config, result in zip(SMALL_GRID, results):
            assert result.system == config.system_cls.spec.name
            assert result.version == config.version
            assert result.fold == config.fold

    def test_summary_accounting(self, dataset, parallel_run_two_workers):
        results, summary = parallel_run_two_workers
        assert isinstance(summary, GridSummary)
        assert summary.questions == sum(len(r.outcomes) for r in results)
        assert summary.questions == len(SMALL_GRID) * len(dataset.test_examples)
        assert summary.wall_seconds > 0
        assert summary.workers == 2
        assert summary.questions_per_second > 0
        assert "workers" in summary.describe()

    def test_summary_engine_observability(self, parallel_run):
        """Plan-cache and optimizer counters surface on the summary."""
        _, summary = parallel_run
        assert summary.engine is not None
        plan_cache = summary.engine["plan_cache"]
        assert 0.0 <= plan_cache["hit_rate"] <= 1.0
        optimizer = summary.engine["optimizer"]
        assert optimizer["optimize_seconds"] >= 0.0
        assert "plan cache" in summary.describe()
        assert "optimizer" in summary.describe()

    def test_summary_engine_counters_are_per_run(self, harness):
        """A warm re-run reports its own (near-zero) engine traffic,
        not the cumulative lifetime counters."""
        config = [SMALL_GRID[0]]
        _, first = harness.evaluate_grid(config)
        _, second = harness.evaluate_grid(config)
        # the EX result caches are warm: the repeat run plans nothing new
        assert second.engine["optimizer"]["optimizations"] == 0
        assert second.engine["plan_cache"]["misses"] == 0


class TestEngineReport:
    def test_shared_plan_cache_counted_once(self):
        """for_scope views share one physical cache; the report must
        not multiply its counters by the number of versions."""
        from repro.evaluation import engine_report
        from repro.sqlengine import Database, PlanCache, Schema, make_column

        shared = PlanCache(capacity=16)
        databases = {}
        for version in ("v1", "v1~m1"):
            schema = Schema("shared", version=version)
            schema.create_table(
                "t", [make_column("id", "int", primary_key=True)]
            )
            db = Database(schema, plan_cache=shared)
            db.insert("t", (1,))
            db.execute("SELECT id FROM t WHERE id = 1")
            databases[version] = db

        class Fleet:
            versions = list(databases)

            def __getitem__(self, version):
                return databases[version]

        report = engine_report(Fleet())
        stats = shared.stats()
        assert report["plan_cache"]["hits"] == stats["hits"]
        assert report["plan_cache"]["misses"] == stats["misses"]
        # optimizer counters are per-database and still sum
        assert report["optimizer"]["optimizations"] == 2


class TestEvaluateFolds:
    def test_folds_match_manual_loop(self, harness, serial_results):
        """The grid rewrite must reproduce the historical fold seeds.

        ``serial_results[0:2]`` are GPT-3.5 v1 shots=10 folds 0 and 1,
        evaluated through plain ``Harness.evaluate`` — the exact values
        ``evaluate_folds`` must return for its first two folds.
        """
        mean, spread, results = harness.evaluate_folds(
            GPT35, "v1", shots=10, folds=2, max_workers=2
        )
        assert [r.accuracy for r in results] == [
            r.accuracy for r in serial_results[:2]
        ]
        accuracies = [r.accuracy for r in results]
        assert mean == pytest.approx(sum(accuracies) / len(accuracies))
        assert spread >= 0.0


class TestGridConfig:
    def test_make_sorts_system_kwargs(self):
        config = GridConfig.make(T5Picard, "v1", train_size=100, b=2, a=1)
        assert config.system_kwargs == (("a", 1), ("b", 2))

    def test_label_mentions_budget(self):
        shots = GridConfig.make(GPT35, "v1", shots=10, fold=2)
        train = GridConfig.make(T5Picard, "v3", train_size=300)
        assert "shots=10" in shots.label() and "fold=2" in shots.label()
        assert "train=300" in train.label()

    def test_hashable(self):
        a = GridConfig.make(GPT35, "v1", shots=10)
        b = GridConfig.make(GPT35, "v1", shots=10)
        assert len({a, b}) == 1


class TestWorkerCount:
    def test_bounded_by_grid_size(self):
        assert default_worker_count(1) == 1

    def test_at_least_one(self):
        assert default_worker_count(0) == 1
