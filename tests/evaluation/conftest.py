"""Evaluation test fixtures: one harness shared across the module."""

from __future__ import annotations

import pytest

from repro.benchmark import build_benchmark
from repro.evaluation import Harness
from repro.footballdb import build_universe, load_all


@pytest.fixture(scope="session")
def universe():
    return build_universe(seed=2022)


@pytest.fixture(scope="session")
def football(universe):
    return load_all(universe=universe)


@pytest.fixture(scope="session")
def dataset(universe):
    return build_benchmark(universe)


@pytest.fixture(scope="session")
def harness(football, dataset):
    return Harness(football, dataset)
