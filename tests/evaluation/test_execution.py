"""EX metric tests."""

import pytest

from repro.evaluation import ExecutionEvaluator


@pytest.fixture()
def evaluator(football):
    return ExecutionEvaluator(football["v1"])


class TestMatches:
    def test_identical_query_matches(self, evaluator):
        sql = "SELECT teamname FROM national_team WHERE team_id = 1"
        assert evaluator.matches(sql, sql)

    def test_semantically_equal_queries_match(self, evaluator):
        a = "SELECT teamname FROM national_team WHERE team_id = 1"
        b = "SELECT T1.teamname FROM national_team AS T1 WHERE T1.team_id = 1"
        assert evaluator.matches(a, b)

    def test_row_order_is_ignored(self, evaluator):
        a = "SELECT teamname FROM national_team ORDER BY teamname"
        b = "SELECT teamname FROM national_team ORDER BY team_id"
        assert evaluator.matches(a, b)

    def test_different_results_do_not_match(self, evaluator):
        a = "SELECT teamname FROM national_team WHERE team_id = 1"
        b = "SELECT teamname FROM national_team WHERE team_id = 2"
        assert not evaluator.matches(a, b)

    def test_none_prediction_never_matches(self, evaluator):
        assert not evaluator.matches(None, "SELECT 1")

    def test_execution_error_never_matches(self, evaluator):
        assert not evaluator.matches("SELECT x FROM nope", "SELECT 1")

    def test_two_failing_queries_do_not_match(self, evaluator):
        assert not evaluator.matches("SELECT x FROM nope", "SELECT y FROM nada")

    def test_duplicate_multiplicity_matters(self, evaluator):
        a = "SELECT founded FROM national_team WHERE team_id IN (1, 2)"
        b = "SELECT DISTINCT founded FROM national_team WHERE team_id IN (1, 2)"
        # Matches only if the two founding years differ; both cases are
        # legitimate — just assert the metric is consistent with the data.
        years = evaluator.database.execute(
            "SELECT founded FROM national_team WHERE team_id IN (1, 2)"
        ).rows
        expectation = len({row[0] for row in years}) == len(years)
        assert evaluator.matches(a, b) is expectation

    def test_int_float_normalization(self, evaluator):
        assert evaluator.matches("SELECT 4 / 2", "SELECT 2")


class TestCaching:
    def test_results_are_cached(self, football):
        evaluator = ExecutionEvaluator(football["v1"])
        sql = "SELECT count(*) FROM match"
        evaluator.result_key(sql)
        executed = evaluator.executed
        evaluator.result_key(sql)
        assert evaluator.executed == executed
        assert evaluator.cache_hits >= 1
