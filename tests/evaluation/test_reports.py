"""Report renderer tests (tables and ASCII bar figures)."""

import pytest

from repro.evaluation import (
    format_mean_std,
    format_percent,
    render_bar_chart,
    render_table,
)


class TestRenderTable:
    def test_basic_table(self):
        text = render_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = render_table(["col"], [["short"], ["a much longer cell"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows padded to the same width

    def test_float_formatting(self):
        text = render_table(["x"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatters:
    def test_format_percent(self):
        assert format_percent(0.415) == "41.50%"
        assert format_percent(0.415, decimals=0) == "42%"

    def test_format_mean_std_percent(self):
        assert format_mean_std(0.41, 0.034) == "41.00% (±3.40%)"

    def test_format_mean_std_plain(self):
        assert format_mean_std(652.16, 165.94, percent=False) == "652.16 ± 165.94"


class TestBarChart:
    SERIES = {
        "SystemA": {"easy": (0.77, 13), "hard": (0.20, 40)},
        "SystemB": {"easy": (0.50, 13)},
    }

    def test_all_buckets_rendered(self):
        text = render_bar_chart(self.SERIES, ["easy", "hard"], title="T")
        assert "easy" in text and "hard" in text

    def test_counts_shown(self):
        text = render_bar_chart(self.SERIES, ["easy"], title="T")
        assert "(n=13)" in text

    def test_missing_bucket_shows_dash(self):
        text = render_bar_chart(self.SERIES, ["hard"], title="T")
        assert "-" in text  # SystemB has no 'hard' bucket

    def test_bar_length_proportional(self):
        text = render_bar_chart(self.SERIES, ["easy"], title="T", width=10)
        a_line = next(l for l in text.splitlines() if "SystemA" in l)
        b_line = next(l for l in text.splitlines() if "SystemB" in l)
        assert a_line.count("#") > b_line.count("#")


class TestRobustnessCurve:
    @staticmethod
    def _series():
        return {
            "GPT-3.5": {"v1": 0.45, "v1~m1": 0.41, "v1~m2": 0.30},
            "ValueNet": {"v1": 0.20, "v1~m1": 0.15},
        }

    @staticmethod
    def _distances():
        return {"v1": 0, "v1~m1": 2, "v1~m2": 3}

    def test_versions_ordered_by_distance(self):
        from repro.evaluation import robustness_curve

        text = robustness_curve(self._series(), self._distances())
        positions = [text.index(f"d={d}") for d in (0, 2, 3)]
        assert positions == sorted(positions)
        assert text.index("v1~m1") < text.index("v1~m2")

    def test_missing_cells_render_as_dash(self):
        from repro.evaluation import robustness_curve

        text = robustness_curve(self._series(), self._distances())
        block = text[text.index("v1~m2"):]
        assert "-" in block.splitlines()[2]  # ValueNet has no v1~m2 cell

    def test_spread_summary_present(self):
        from repro.evaluation import robustness_curve

        text = robustness_curve(self._series(), self._distances())
        assert "spread=15.0pp" in text  # GPT-3.5: 45% - 30%
        assert "spread=5.0pp" in text  # ValueNet: 20% - 15%

    def test_robustness_points_averages_folds(self):
        from repro.evaluation import robustness_points

        class Stub:
            def __init__(self, system, version, accuracy):
                self.system = system
                self.version = version
                self.accuracy = accuracy

        points = robustness_points(
            [Stub("S", "v1", 0.4), Stub("S", "v1", 0.6), Stub("S", "v1~m1", 0.5)]
        )
        assert points == {"S": {"v1": pytest.approx(0.5), "v1~m1": 0.5}}
