"""Multi-domain service routing."""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkDataset
from repro.deployment import (
    DomainRouter,
    TextToSQLService,
    UnroutableQuestionError,
    build_lexicon,
)
from repro.domains import load_domain
from repro.evaluation import Harness
from repro.systems import GPT35


def _service(name, seed=2022, cache=0):
    instance = load_domain(name, seed=seed)
    dataset = BenchmarkDataset.from_domain(instance, seed=seed)
    harness = Harness(instance, dataset)
    system = harness.build_system(GPT35, "base")
    system.fine_tune(dataset.train_pairs("base")[:8])
    return TextToSQLService(
        system, instance["base"], response_cache_size=cache
    )


@pytest.fixture(scope="module")
def router():
    router = DomainRouter()
    for name in ("hospital", "retail"):
        router.add_domain(name, _service(name))
    return router


class TestLexicon:
    def test_lexicon_contains_identifiers_and_values(self, router):
        lexicon = build_lexicon(router.service("hospital").database)
        assert {"doctor", "patient", "department", "salary"} <= lexicon
        assert any(token.startswith("ward") for token in lexicon)


class TestRouting:
    def test_auto_routes_by_vocabulary(self, router):
        name, score = router.route("How many doctors are there?")
        assert name == "hospital" and score > 0
        name, score = router.route("What is the average price of products?")
        assert name == "retail" and score > 0

    def test_explicit_domain_wins(self, router):
        routed = router.ask("How many doctors are there?", domain="retail")
        assert routed.domain == "retail"
        assert routed.explicit and routed.score == 1.0

    def test_fallback_to_default_domain(self, router):
        routed = router.ask("zzz qqq xyzzy?")
        assert routed.domain == router.default_domain
        assert routed.score == 0.0 and not routed.explicit

    def test_unregistered_default_falls_back_to_first_registered(self, router):
        unrouted = DomainRouter(default_domain="football")
        unrouted.add_domain("hospital", router.service("hospital"))
        name, score = unrouted.route("zzz qqq xyzzy?")
        assert name == "hospital" and score == 0.0

    def test_unknown_domain_raises(self, router):
        with pytest.raises(UnroutableQuestionError, match="unknown domain"):
            router.ask("anything", domain="bakery")

    def test_empty_router_raises(self):
        with pytest.raises(UnroutableQuestionError, match="no domains"):
            DomainRouter().route("hello")

    def test_answers_flow_through(self, router):
        question = "How many doctors are there?"
        routed = router.ask(question)
        assert routed.response.question == question
        if routed.response.answered:
            assert routed.response.rows

    def test_ask_many_routes_each(self, router):
        responses = router.ask_many(
            ["How many doctors are there?", "Count all products."]
        )
        assert [r.domain for r in responses] == ["hospital", "retail"]


class TestMetrics:
    def test_metrics_aggregate_per_domain(self):
        router = DomainRouter()
        for name in ("hospital", "retail"):
            router.add_domain(name, _service(name, cache=16))
        router.ask("How many doctors are there?")
        router.ask("Count all products.", domain="retail")
        metrics = router.metrics()
        assert metrics["questions_routed"] == 2
        assert metrics["explicit_routes"] == 1
        assert set(metrics["domains"]) == {"hospital", "retail"}
        served = sum(
            domain_metrics["questions_served"]
            for domain_metrics in metrics["domains"].values()
        )
        assert served == 2
        assert metrics["questions_per_domain"]["retail"] == 1

    def test_duplicate_domain_rejected(self, router):
        with pytest.raises(ValueError, match="already routed"):
            router.add_domain("hospital", router.service("hospital"))
