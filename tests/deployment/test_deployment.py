"""Deployment service, web back-end and labeling pipeline tests."""

import pytest

from repro.benchmark import build_benchmark
from repro.deployment import (
    LabelingPipeline,
    TextToSQLService,
    WebBackend,
    percentile,
)
from repro.footballdb import build_universe, load_all
from repro.systems import GoldOracle, T5PicardKeys
from repro.workload import DeploymentSimulator, Feedback


@pytest.fixture(scope="module")
def universe():
    return build_universe(seed=2022)


@pytest.fixture(scope="module")
def football(universe):
    return load_all(universe=universe)


@pytest.fixture(scope="module")
def dataset(universe):
    return build_benchmark(universe)


@pytest.fixture(scope="module")
def backend(football, dataset):
    database = football["v3"]
    system = T5PicardKeys(database, GoldOracle(dataset.gold_lookup("v3")))
    system.fine_tune(dataset.train_pairs("v3"))
    return WebBackend(TextToSQLService(system, database))


class TestService:
    def test_ask_returns_rows(self, backend, dataset):
        example = dataset.test_examples[0]
        response = backend.ask(example.question)
        assert response["log_id"] == 1
        assert response["sql"] is None or isinstance(response["sql"], str)

    def test_answered_question_has_result_payload(self, backend):
        response = backend.ask("Who won the world cup in 2014?")
        if response["sql"] is not None and response["error"] is None:
            assert isinstance(response["rows"], list)
            assert isinstance(response["columns"], list)

    def test_latency_reported(self, backend):
        response = backend.ask("Who won the world cup in 2018?")
        assert response["latency_seconds"] > 0


class StubSystem:
    """Deterministic system double: answers known questions, fails others.

    Duck-types the ``predict`` surface the service consumes, so the
    cache tests assert unconditionally instead of depending on a real
    system's competence draw.
    """

    def __init__(self, answers):
        self.answers = answers
        self.predictions = 0

    def predict(self, question):
        from repro.systems import Prediction

        self.predictions += 1
        sql = self.answers.get(question)
        if sql is None:
            return Prediction(sql=None, failure="no_candidate", latency_seconds=0.1)
        return Prediction(sql=sql, latency_seconds=0.5)


class TestBatchedServing:
    GOOD = "How many teams are there?"
    BAD = "completely unanswerable gibberish zzz?"

    @pytest.fixture()
    def stub_service(self, football):
        database = football["v3"]
        table = database.schema.tables[0].name
        system = StubSystem({self.GOOD: f"SELECT count(*) FROM {table}"})
        return TextToSQLService(system, database, response_cache_size=32)

    @pytest.fixture()
    def service(self, football, dataset):
        database = football["v3"]
        system = T5PicardKeys(database, GoldOracle(dataset.gold_lookup("v3")))
        system.fine_tune(dataset.train_pairs("v3", limit=50))
        return TextToSQLService(system, database, response_cache_size=32)

    def test_ask_many_preserves_order(self, service, dataset):
        questions = [example.question for example in dataset.test_examples[:5]]
        responses = service.ask_many(questions)
        assert [r.question for r in responses] == questions

    def test_repeated_question_served_from_cache(self, stub_service):
        first = stub_service.ask(self.GOOD)
        second = stub_service.ask(self.GOOD)
        assert first.answered and not first.from_cache
        assert second.from_cache
        assert second.latency_seconds == 0.0
        assert second.rows == first.rows
        assert stub_service.response_cache.hits == 1
        assert stub_service.system.predictions == 1  # second ask never predicts

    def test_failures_are_not_cached(self, stub_service):
        first = stub_service.ask(self.BAD)
        second = stub_service.ask(self.BAD)
        assert not first.answered
        assert not second.from_cache
        assert stub_service.system.predictions == 2  # both asks re-predict

    def test_metrics_shape(self, stub_service):
        stub_service.ask_many([self.GOOD, self.BAD, self.GOOD, self.GOOD])
        metrics = stub_service.metrics()
        assert metrics["questions_served"] == 4
        assert metrics["questions_answered"] == 3
        assert metrics["answer_rate"] == pytest.approx(0.75)
        assert (
            metrics["p50_latency_seconds"]
            <= metrics["p95_latency_seconds"]
            <= metrics["p99_latency_seconds"]
        )
        assert metrics["response_cache"]["hits"] == 2
        assert metrics["plan_cache"]["capacity"] > 0

    def test_clear_response_cache(self, stub_service):
        stub_service.ask(self.GOOD)
        assert len(stub_service.response_cache) == 1
        stub_service.clear_response_cache()
        assert len(stub_service.response_cache) == 0
        refreshed = stub_service.ask(self.GOOD)
        assert not refreshed.from_cache

    def test_metrics_empty_service(self, football):
        service = TextToSQLService(StubSystem({}), football["v3"])
        metrics = service.metrics()
        assert metrics["questions_served"] == 0
        assert metrics["p99_latency_seconds"] == 0.0
        assert metrics["response_cache"] is None

    def test_metrics_include_engine_counters(self, stub_service):
        stub_service.ask(self.GOOD)
        metrics = stub_service.metrics()
        assert metrics["optimizer"]["enabled"] is True
        assert metrics["optimizer"]["optimizations"] >= 1
        assert metrics["plan_cache"]["misses"] >= 1
        assert metrics["response_cache"]["invalidations"] == 0


class TestResponseCacheInvalidation:
    """Mutating the serving database must drop cached responses.

    Uses a private tiny database (never the shared module fixture —
    inserts would leak into every other test)."""

    QUESTION = "list the teams"

    @staticmethod
    def _service():
        from repro.sqlengine import Database, Schema, make_column

        schema = Schema("svc")
        schema.create_table(
            "team",
            [
                make_column("team_id", "int", primary_key=True),
                make_column("name", "text"),
            ],
        )
        database = Database(schema)
        database.insert("team", (1, "Brazil"))
        system = StubSystem(
            {TestResponseCacheInvalidation.QUESTION: "SELECT name FROM team ORDER BY team_id"}
        )
        return TextToSQLService(system, database, response_cache_size=8)

    def test_stale_rows_never_served_after_insert(self):
        service = self._service()
        first = service.ask(self.QUESTION)
        assert first.rows == (("Brazil",),)
        assert service.ask(self.QUESTION).from_cache
        service.database.insert("team", (2, "Chile"))
        refreshed = service.ask(self.QUESTION)
        assert not refreshed.from_cache
        assert refreshed.rows == (("Brazil",), ("Chile",))
        assert service.metrics()["response_cache"]["invalidations"] == 1

    def test_unchanged_database_keeps_cache(self):
        service = self._service()
        service.ask(self.QUESTION)
        assert service.ask(self.QUESTION).from_cache
        assert service.ask(self.QUESTION).from_cache
        assert service.metrics()["response_cache"]["invalidations"] == 0

    def test_rolled_back_insert_still_invalidates(self):
        """An FK-violating insert mutates and restores the row set; the
        epoch moves anyway, which errs on the safe (re-execute) side."""
        from repro.sqlengine import ConstraintError, Database, Schema, make_column

        schema = Schema("svc2")
        schema.create_table(
            "team", [make_column("team_id", "int", primary_key=True)]
        )
        schema.create_table(
            "player",
            [
                make_column("player_id", "int", primary_key=True),
                make_column("team_id", "int"),
            ],
        )
        schema.add_foreign_key("player", "team_id", "team", "team_id")
        database = Database(schema)
        database.insert("team", (1,))
        before = database.data_epoch()
        with pytest.raises(ConstraintError):
            database.insert("player", (1, 99))
        assert database.data_epoch() > before


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.95) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 0.5) == 3.0

    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == pytest.approx(2.5)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0


class TestFeedbackRoutes:
    def test_thumbs_and_corrections_logged(self, football, dataset):
        database = football["v3"]
        system = T5PicardKeys(database, GoldOracle(dataset.gold_lookup("v3")))
        system.fine_tune(dataset.train_pairs("v3", limit=50))
        backend = WebBackend(TextToSQLService(system, database))
        first = backend.ask("Who won the world cup in 2014?")
        backend.feedback(first["log_id"], thumbs_up=True)
        second = backend.ask("Who won the world cup in 2018?")
        backend.correct(second["log_id"], "SELECT teamname FROM national_team")
        stats = backend.statistics()
        assert stats.questions_issued == 2
        assert stats.thumbs_up == 1
        assert stats.corrected_queries == 1

    def test_unknown_log_id_raises(self, backend):
        with pytest.raises(KeyError):
            backend.feedback(99_999, thumbs_up=True)


class TestLabelingPipeline:
    def test_auto_label_above_threshold(self):
        pipeline = LabelingPipeline()
        pipeline.add_verified("Who won the world cup in 2014?", "SELECT 1")
        suggestion = pipeline.suggest("Who won the world cup in 2014 ?")
        assert suggestion.auto_labeled is True
        assert suggestion.proposed_sql == "SELECT 1"

    def test_below_threshold_gives_assistance(self):
        pipeline = LabelingPipeline()
        pipeline.add_verified("Who won the world cup in 2014?", "SELECT 1")
        suggestion = pipeline.suggest("Which clubs did Morpera play for?")
        assert suggestion.auto_labeled is False
        assert suggestion.similar_question == "Who won the world cup in 2014?"

    def test_empty_pool(self):
        suggestion = LabelingPipeline().suggest("anything")
        assert suggestion.similarity == 0.0
        assert not suggestion.auto_labeled

    def test_batch_reduces_manual_effort(self):
        pipeline = LabelingPipeline(threshold=0.96)
        pipeline.add_verified("Who won the world cup in 2014?", "SELECT 1")
        questions = [
            "Who won the world cup in 2014 ?",  # near-duplicate: auto
            "Which clubs did Morpera play for?",  # manual
        ]
        produced, manual_calls = pipeline.label_batch(
            questions, manual_labeler=lambda q, s: "SELECT 2"
        )
        assert len(produced) == 2
        assert manual_calls == 1
        assert produced[0].source == "auto"
        assert produced[1].source == "manual"

    def test_ingest_feedback_from_live_log(self, universe):
        records = DeploymentSimulator(universe, seed=9).run(400)
        pipeline = LabelingPipeline()
        counts = pipeline.ingest_feedback(records)
        assert counts["expert_correction"] > 0
        assert len(pipeline.verified_pairs) >= counts["expert_correction"]
        corrected = [r for r in records if r.corrected_sql is not None]
        assert counts["expert_correction"] == len(corrected)
