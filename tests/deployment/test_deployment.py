"""Deployment service, web back-end and labeling pipeline tests."""

import pytest

from repro.benchmark import build_benchmark
from repro.deployment import (
    LabelingPipeline,
    TextToSQLService,
    WebBackend,
)
from repro.footballdb import build_universe, load_all
from repro.systems import GoldOracle, T5PicardKeys
from repro.workload import DeploymentSimulator, Feedback


@pytest.fixture(scope="module")
def universe():
    return build_universe(seed=2022)


@pytest.fixture(scope="module")
def football(universe):
    return load_all(universe=universe)


@pytest.fixture(scope="module")
def dataset(universe):
    return build_benchmark(universe)


@pytest.fixture(scope="module")
def backend(football, dataset):
    database = football["v3"]
    system = T5PicardKeys(database, GoldOracle(dataset.gold_lookup("v3")))
    system.fine_tune(dataset.train_pairs("v3"))
    return WebBackend(TextToSQLService(system, database))


class TestService:
    def test_ask_returns_rows(self, backend, dataset):
        example = dataset.test_examples[0]
        response = backend.ask(example.question)
        assert response["log_id"] == 1
        assert response["sql"] is None or isinstance(response["sql"], str)

    def test_answered_question_has_result_payload(self, backend):
        response = backend.ask("Who won the world cup in 2014?")
        if response["sql"] is not None and response["error"] is None:
            assert isinstance(response["rows"], list)
            assert isinstance(response["columns"], list)

    def test_latency_reported(self, backend):
        response = backend.ask("Who won the world cup in 2018?")
        assert response["latency_seconds"] > 0


class TestFeedbackRoutes:
    def test_thumbs_and_corrections_logged(self, football, dataset):
        database = football["v3"]
        system = T5PicardKeys(database, GoldOracle(dataset.gold_lookup("v3")))
        system.fine_tune(dataset.train_pairs("v3", limit=50))
        backend = WebBackend(TextToSQLService(system, database))
        first = backend.ask("Who won the world cup in 2014?")
        backend.feedback(first["log_id"], thumbs_up=True)
        second = backend.ask("Who won the world cup in 2018?")
        backend.correct(second["log_id"], "SELECT teamname FROM national_team")
        stats = backend.statistics()
        assert stats.questions_issued == 2
        assert stats.thumbs_up == 1
        assert stats.corrected_queries == 1

    def test_unknown_log_id_raises(self, backend):
        with pytest.raises(KeyError):
            backend.feedback(99_999, thumbs_up=True)


class TestLabelingPipeline:
    def test_auto_label_above_threshold(self):
        pipeline = LabelingPipeline()
        pipeline.add_verified("Who won the world cup in 2014?", "SELECT 1")
        suggestion = pipeline.suggest("Who won the world cup in 2014 ?")
        assert suggestion.auto_labeled is True
        assert suggestion.proposed_sql == "SELECT 1"

    def test_below_threshold_gives_assistance(self):
        pipeline = LabelingPipeline()
        pipeline.add_verified("Who won the world cup in 2014?", "SELECT 1")
        suggestion = pipeline.suggest("Which clubs did Morpera play for?")
        assert suggestion.auto_labeled is False
        assert suggestion.similar_question == "Who won the world cup in 2014?"

    def test_empty_pool(self):
        suggestion = LabelingPipeline().suggest("anything")
        assert suggestion.similarity == 0.0
        assert not suggestion.auto_labeled

    def test_batch_reduces_manual_effort(self):
        pipeline = LabelingPipeline(threshold=0.96)
        pipeline.add_verified("Who won the world cup in 2014?", "SELECT 1")
        questions = [
            "Who won the world cup in 2014 ?",  # near-duplicate: auto
            "Which clubs did Morpera play for?",  # manual
        ]
        produced, manual_calls = pipeline.label_batch(
            questions, manual_labeler=lambda q, s: "SELECT 2"
        )
        assert len(produced) == 2
        assert manual_calls == 1
        assert produced[0].source == "auto"
        assert produced[1].source == "manual"

    def test_ingest_feedback_from_live_log(self, universe):
        records = DeploymentSimulator(universe, seed=9).run(400)
        pipeline = LabelingPipeline()
        counts = pipeline.ingest_feedback(records)
        assert counts["expert_correction"] > 0
        assert len(pipeline.verified_pairs) >= counts["expert_correction"]
        corrected = [r for r in records if r.corrected_sql is not None]
        assert counts["expert_correction"] == len(corrected)
