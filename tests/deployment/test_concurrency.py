"""Concurrency regression suite for the thread-based service path.

Three classes of bug this file locks down (ISSUE 7 satellites):

* counter / sliding-window exactness under concurrent ``ask_many``
  (every read-modify-write must hold ``_metrics_lock``);
* the response-cache staleness TOCTOU — a ``data_epoch`` bump between
  the epoch check at admission and the cache insert after prediction
  used to pin a pre-mutation answer into a cache stamped with the new
  epoch, where nothing would ever evict it;
* ``WebBackend`` log-id allocation (``len + 1`` then ``append``) handing
  out duplicate ids under concurrent ``/ask``.

All services here run on tiny private databases with stub systems, so
every assertion is deterministic and fast.
"""

import sys
import threading

import pytest

from repro.deployment import DomainRouter, TextToSQLService, WebBackend, percentile
from repro.sqlengine import Database, Schema, make_column
from repro.systems import Prediction


def _database(name="conc", teams=(("Brazil",), ("Chile",))):
    schema = Schema(name)
    schema.create_table(
        "team",
        [
            make_column("team_id", "int", primary_key=True),
            make_column("name", "text"),
        ],
    )
    database = Database(schema)
    for index, (team,) in enumerate(teams, start=1):
        database.insert("team", (index, team))
    return database


class StubSystem:
    """Thread-safe deterministic stand-in for a Text-to-SQL system."""

    def __init__(self, answers):
        self.answers = dict(answers)
        self._lock = threading.Lock()
        self.predictions = 0

    def predict(self, question):
        with self._lock:
            self.predictions += 1
        sql = self.answers.get(question)
        if sql is None:
            return Prediction(sql=None, failure="no_candidate", latency_seconds=0.1)
        return Prediction(sql=sql, latency_seconds=0.5)


GOOD = "list the teams"
BAD = "unanswerable gibberish zzz?"
GOOD_SQL = "SELECT name FROM team ORDER BY team_id"


def _service(cache=32, latency_window=TextToSQLService.DEFAULT_LATENCY_WINDOW):
    return TextToSQLService(
        StubSystem({GOOD: GOOD_SQL}),
        _database(),
        response_cache_size=cache,
        latency_window=latency_window,
    )


def _hammer(worker, threads=8):
    """Run ``worker`` across ``threads`` barrier-synchronized threads."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


@pytest.fixture()
def fast_switching():
    """Shrink the GIL switch interval so RMW races interleave reliably."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


class TestCounterExactness:
    THREADS = 8
    PER_THREAD = 50

    def test_concurrent_ask_many_counters_exact(self, fast_switching):
        service = _service(cache=0)
        batch = [GOOD, BAD, GOOD] * (self.PER_THREAD // 3) + [GOOD]
        _hammer(lambda _: service.ask_many(batch), threads=self.THREADS)
        total = self.THREADS * len(batch)
        answered = self.THREADS * sum(1 for q in batch if q == GOOD)
        metrics = service.metrics()
        assert metrics["questions_served"] == total
        assert metrics["questions_answered"] == answered
        assert metrics["latency_window_size"] == total

    def test_concurrent_ask_batch_counters_exact(self, fast_switching):
        service = _service(cache=0)
        batch = [GOOD, BAD, GOOD, GOOD]
        _hammer(lambda _: service.ask_batch(batch), threads=self.THREADS)
        metrics = service.metrics()
        assert metrics["questions_served"] == self.THREADS * len(batch)
        assert metrics["questions_answered"] == self.THREADS * 3

    def test_window_eviction_boundary_under_load(self, fast_switching):
        window = 64
        service = _service(cache=0, latency_window=window)
        _hammer(lambda _: service.ask_many([GOOD] * 32), threads=4)
        metrics = service.metrics()
        assert metrics["questions_served"] == 128
        assert metrics["latency_window_size"] == window  # evicted down to window
        # the window now holds only full-prediction latencies (0.5s each)
        assert metrics["p50_latency_seconds"] == pytest.approx(0.5)

    def test_metrics_observed_concurrently_with_inflight_requests(
        self, fast_switching
    ):
        service = _service(cache=8)
        snapshots = []

        def observe(index):
            if index == 0:
                for _ in range(200):
                    snapshots.append(service.metrics())
            else:
                service.ask_many([GOOD, BAD] * 25)

        _hammer(observe, threads=5)
        served = [snap["questions_served"] for snap in snapshots]
        assert served == sorted(served)  # monotone under concurrent asks
        for snap in snapshots:
            assert snap["questions_answered"] <= snap["questions_served"]
            assert 0.0 <= snap["answer_rate"] <= 1.0


class TestWebBackendLogIds:
    def test_concurrent_ask_allocates_unique_log_ids(self, fast_switching):
        backend = WebBackend(_service(cache=0))
        per_thread, threads = 250, 8
        _hammer(
            lambda _: [backend.ask(GOOD) for _ in range(per_thread)],
            threads=threads,
        )
        records = backend.logs()
        ids = [record.log_id for record in records]
        assert len(records) == per_thread * threads
        assert sorted(ids) == list(range(1, per_thread * threads + 1))


class TestRouterRegistrationRace:
    def test_route_while_registering_domains(self):
        router = DomainRouter()
        router.add_domain("seed", _service(), lexicon=["team", "teams"])
        stop = threading.Event()
        errors = []

        def register():
            try:
                for index in range(300):
                    router.add_domain(
                        f"extra{index}", _service(), lexicon=[f"tok{index}"]
                    )
            finally:
                stop.set()

        def route():
            try:
                while not stop.is_set():
                    router.route("list the teams")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        writer = threading.Thread(target=register)
        reader = threading.Thread(target=route)
        reader.start()
        writer.start()
        writer.join()
        reader.join()
        assert not errors  # pre-fix: dict changed size during iteration
        assert len(router.domains) == 301

    def test_remote_domain_requires_lexicon(self):
        router = DomainRouter()
        with pytest.raises(ValueError, match="explicit lexicon"):
            router.add_domain("remote", None)

    def test_remote_domain_routes_but_has_no_local_service(self):
        from repro.deployment import UnroutableQuestionError

        router = DomainRouter()
        router.add_domain("remote", None, lexicon=["team", "teams"])
        name, score = router.route("list the teams")
        assert name == "remote" and score > 0
        with pytest.raises(UnroutableQuestionError, match="routed remotely"):
            router.service("remote")


class _MutateAfterReadDatabase:
    """Delegating wrapper whose first target execution simulates the race.

    ``execute`` computes its result (the *read*), signals the test, then
    blocks until released — modelling a request whose answer was
    computed against pre-mutation data but whose cache insert happens
    after both a mutation and a concurrent invalidation.
    """

    def __init__(self, database, target_sql):
        self._database = database
        self._target = target_sql
        self.read_done = threading.Event()
        self.release = threading.Event()
        self._tripped = False

    def __getattr__(self, name):
        return getattr(self._database, name)

    def execute(self, sql, **kwargs):
        result = self._database.execute(sql, **kwargs)
        if sql == self._target and not self._tripped:
            self._tripped = True
            self.read_done.set()
            assert self.release.wait(timeout=30), "test deadlock"
        return result


class TestCacheStalenessTOCTOU:
    def test_mid_request_mutation_cannot_pin_stale_answer(self):
        """Regression (fails pre-fix): the slow request's insert used to
        land *after* the fresh request's invalidation-and-refill, pinning
        Brazil-only rows into an epoch-current cache forever."""
        database = _MutateAfterReadDatabase(
            _database(teams=(("Brazil",),)), GOOD_SQL
        )
        service = TextToSQLService(
            StubSystem({GOOD: GOOD_SQL}), database, response_cache_size=8
        )

        slow_response = []
        slow = threading.Thread(
            target=lambda: slow_response.append(service.ask(GOOD))
        )
        slow.start()
        assert database.read_done.wait(timeout=30)

        # the mutation lands while the slow request is still in flight …
        database.insert("team", (2, "Chile"))
        # … and a fresh request invalidates, re-executes and re-fills
        fresh = service.ask(GOOD)
        assert fresh.rows == (("Brazil",), ("Chile",))

        # now the slow request completes and tries to insert its answer
        database.release.set()
        slow.join()
        assert slow_response[0].rows == (("Brazil",),)  # computed pre-mutation

        cached = service.ask(GOOD)
        assert cached.rows == (("Brazil",), ("Chile",))  # stale pin rejected
        stats = service.metrics()["response_cache"]
        assert stats["stale_insert_rejections"] == 1

    def test_single_request_mid_mutation_not_cached(self):
        """Even without a concurrent invalidation, an answer computed
        against a superseded epoch must not enter the cache."""
        database = _MutateAfterReadDatabase(
            _database(teams=(("Brazil",),)), GOOD_SQL
        )
        service = TextToSQLService(
            StubSystem({GOOD: GOOD_SQL}), database, response_cache_size=8
        )
        slow_response = []
        slow = threading.Thread(
            target=lambda: slow_response.append(service.ask(GOOD))
        )
        slow.start()
        assert database.read_done.wait(timeout=30)
        database.insert("team", (2, "Chile"))
        database.release.set()
        slow.join()
        assert slow_response[0].rows == (("Brazil",),)
        follow_up = service.ask(GOOD)
        assert not follow_up.from_cache
        assert follow_up.rows == (("Brazil",), ("Chile",))


class TestPercentileEdgeCases:
    def test_empty_window(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.99) == 0.0

    def test_single_sample_every_fraction(self):
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.5], fraction) == 7.5

    def test_two_samples_interpolate(self):
        assert percentile([1.0, 3.0], 0.5) == pytest.approx(2.0)

    def test_window_eviction_boundary(self):
        """Percentiles reflect only the surviving window after eviction."""
        service = _service(cache=0, latency_window=4)
        service.ask_many([BAD] * 10)  # 0.1s latencies fill and overflow …
        service.ask_many([GOOD] * 4)  # … then 0.5s latencies evict them all
        metrics = service.metrics()
        assert metrics["latency_window_size"] == 4
        assert metrics["p50_latency_seconds"] == pytest.approx(0.5)
        assert metrics["mean_latency_seconds"] == pytest.approx(0.5)
