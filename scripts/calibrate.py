#!/usr/bin/env python
"""Calibration helper: measured vs paper accuracy for Tables 5/6.

Runs a reduced sweep (the calibration-relevant corners) and prints the
deltas so the competence profiles in ``repro.systems`` can be tuned.

Usage: python scripts/calibrate.py [--full]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.benchmark import build_benchmark
from repro.evaluation import Harness
from repro.footballdb import build_universe, load_all
from repro.systems import GPT35, Llama2, T5Picard, T5PicardKeys, ValueNet

#: paper Table 5 (system -> version -> train size -> accuracy %)
PAPER_TABLE5 = {
    "ValueNet": {
        "v1": {0: 2, 100: 16, 200: 18, 300: 20},
        "v2": {0: 3, 100: 14, 200: 18, 300: 20},
        "v3": {0: 3, 100: 21, 200: 23, 300: 25},
    },
    "T5-Picard": {
        "v1": {0: 8, 100: 22, 200: 29, 300: 29},
        "v2": {0: 7, 100: 16, 200: 29, 300: 32},
        "v3": {0: 6, 100: 6, 200: 27, 300: 29},
    },
    "T5-Picard_Keys": {
        "v1": {0: 7, 100: 27, 200: 33, 300: 38},
        "v2": {0: 7, 100: 29, 200: 33, 300: 38},
        "v3": {0: 8, 100: 25, 200: 36, 300: 41},
    },
}

#: paper Table 6 (system -> version -> shots -> mean accuracy %)
PAPER_TABLE6 = {
    "GPT-3.5": {
        "v1": {0: 25, 10: 41, 20: 39, 30: 37},
        "v2": {0: 25, 10: 37, 20: 36, 30: 37.5},
        "v3": {0: 21, 10: 38.5, 20: 37, 30: 37},
    },
    "LLaMA2-70B": {
        "v1": {0: 5, 2: 11.25, 4: 10.5, 8: 16},
        "v2": {0: 4, 2: 8.75, 4: 8.5, 8: 14.5},
        "v3": {0: 5, 2: 8.5, 4: 8.5, 8: 15},
    },
}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true", help="all train sizes/shots")
    args = parser.parse_args()

    t0 = time.time()
    universe = build_universe(2022)
    football = load_all(universe=universe)
    dataset = build_benchmark(universe)
    harness = Harness(football, dataset)
    print(f"setup: {time.time() - t0:.0f}s", file=sys.stderr)

    train_sizes = (0, 100, 200, 300) if args.full else (0, 100, 300)
    total_error = 0.0
    count = 0
    for system_cls in (ValueNet, T5Picard, T5PicardKeys):
        name = system_cls.spec.name
        for version in ("v1", "v2", "v3"):
            for size in train_sizes:
                result = harness.evaluate(system_cls, version, train_size=size)
                paper = PAPER_TABLE5[name][version][size]
                measured = result.accuracy * 100
                total_error += abs(measured - paper)
                count += 1
                print(
                    f"T5  {name:16s} {version} n={size:<4d} "
                    f"measured={measured:5.1f}  paper={paper:5.1f}  "
                    f"delta={measured - paper:+5.1f}"
                )
    shot_grid = {
        GPT35: (0, 10, 30) if not args.full else (0, 10, 20, 30),
        Llama2: (0, 2, 8) if not args.full else (0, 2, 4, 8),
    }
    for system_cls, shots_list in shot_grid.items():
        name = system_cls.spec.name
        for version in ("v1", "v2", "v3"):
            for shots in shots_list:
                if shots == 0:
                    result = harness.evaluate(system_cls, version, shots=0, fold=0)
                    measured = result.accuracy * 100
                else:
                    folds = 2 if not args.full else 3
                    mean, _, _ = harness.evaluate_folds(
                        system_cls, version, shots=shots, folds=folds
                    )
                    measured = mean * 100
                paper = PAPER_TABLE6[name][version][shots]
                total_error += abs(measured - paper)
                count += 1
                print(
                    f"T6  {name:16s} {version} k={shots:<3d} "
                    f"measured={measured:5.1f}  paper={paper:5.1f}  "
                    f"delta={measured - paper:+5.1f}"
                )
    print(f"\nmean absolute error: {total_error / count:.2f} points over {count} cells")
    print(f"elapsed: {time.time() - t0:.0f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
