#!/usr/bin/env python
"""Engine micro-benchmark exporter → BENCH_engine.json.

Times the canonical engine workload along two axes:

* **optimizer on vs off** (plan cache and join indexes warm in both
  modes, so the measured delta is planning effect alone), and
* **row vs vectorized execution** (both with the optimizer on, so the
  delta is the columnar batch kernels alone).

Every case is executed in all modes and the run aborts on any result
divergence, making the benchmark itself a correctness smoke test.  The
CI ``bench-smoke`` and ``perf-gate`` jobs run this on every push/PR
(``perf-gate`` compares the PR's numbers against the merge-base via
``scripts/check_bench_regression.py``); a reference copy generated on
the development machine is committed at ``benchmarks/BENCH_engine.json``.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py \
        --rounds 5 --output BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.footballdb import build_universe, load_all

CASES = {
    "point_lookup": (
        "SELECT teamname FROM national_team WHERE team_id = 7",
        1,
    ),
    "filtered_scan_large_table": (
        "SELECT count(*) FROM club_league_hist WHERE season_year = 2010",
        1,
    ),
    "aggregation_group_by": (
        "SELECT year, count(*) FROM match GROUP BY year ORDER BY year",
        22,
    ),
    "large_group_by_aggregate": (
        "SELECT season_year, count(*), avg(position) FROM club_league_hist "
        "GROUP BY season_year ORDER BY season_year",
        None,
    ),
    "range_scan_aggregate": (
        "SELECT avg(position), min(season_year), max(season_year) "
        "FROM club_league_hist WHERE season_year BETWEEN 1990 AND 2010",
        1,
    ),
    "ilike_scan": (
        "SELECT count(*) FROM player WHERE full_name ILIKE '%an%'",
        1,
    ),
    "multi_join_filter": (
        "SELECT T3.full_name FROM player_fact AS T1 "
        "JOIN national_team AS T2 ON T1.team_id = T2.team_id "
        "JOIN player AS T3 ON T1.player_id = T3.player_id "
        "WHERE T2.teamname ILIKE '%Brazil%' AND T1.year = 2002",
        23,
    ),
    "boolean_filter_join": (
        "SELECT count(*) FROM match_fact AS T1 "
        "JOIN match AS T2 ON T1.match_id = T2.match_id "
        "JOIN national_team AS T3 ON T1.team_id = T3.team_id "
        "WHERE T3.teamname ILIKE '%Brazil%' AND T2.year = 1958 "
        "AND T1.goal = 'True'",
        1,
    ),
    "exists_subquery": (
        "SELECT teamname FROM national_team AS T1 WHERE EXISTS "
        "(SELECT T2.match_id, T2.year FROM match AS T2 "
        "WHERE T2.home_team_id = T1.team_id AND T2.year = 2014)",
        None,
    ),
    "order_by_limit": (
        "SELECT club_id, season_year, position FROM club_league_hist "
        "ORDER BY position, season_year DESC, club_id LIMIT 10",
        10,
    ),
}

#: cases the perf gate tracks (see scripts/check_bench_regression.py):
#: scan-/aggregate-/join-bound workloads with stable best-of-N timings.
TRACKED_METRICS = ("optimized_ms", "vectorized_ms")


def time_case(db, sql: str, optimize: bool, engine_mode: str, rounds: int) -> tuple:
    db.execute(sql, optimize=optimize, engine_mode=engine_mode)  # warm caches
    best = float("inf")
    rows = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = db.execute(sql, optimize=optimize, engine_mode=engine_mode)
        best = min(best, time.perf_counter() - start)
        rows = len(result.rows)
    return best * 1000.0, rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument("--version", default="v1", choices=["v1", "v2", "v3"])
    args = parser.parse_args()

    started = time.perf_counter()
    football = load_all(universe=build_universe(seed=2022))
    db = football[args.version]

    cases = {}
    for name, (sql, expected_rows) in CASES.items():
        unoptimized_ms, rows = time_case(
            db, sql, optimize=False, engine_mode="row", rounds=args.rounds
        )
        optimized_ms, optimized_rows = time_case(
            db, sql, optimize=True, engine_mode="row", rounds=args.rounds
        )
        vectorized_ms, vectorized_rows = time_case(
            db, sql, optimize=True, engine_mode="vectorized", rounds=args.rounds
        )
        if len({rows, optimized_rows, vectorized_rows}) != 1:
            print(f"FATAL: row-count divergence in {name}", file=sys.stderr)
            return 1
        if expected_rows is not None and rows != expected_rows:
            print(f"FATAL: unexpected row count in {name}: {rows}", file=sys.stderr)
            return 1
        speedup = unoptimized_ms / optimized_ms if optimized_ms else 0.0
        vector_speedup = optimized_ms / vectorized_ms if vectorized_ms else 0.0
        cases[name] = {
            "sql": sql,
            "rows": rows,
            "unoptimized_ms": round(unoptimized_ms, 4),
            "optimized_ms": round(optimized_ms, 4),
            "vectorized_ms": round(vectorized_ms, 4),
            "speedup": round(speedup, 2),
            "vector_speedup": round(vector_speedup, 2),
        }
        print(
            f"{name:28s} {unoptimized_ms:10.3f} ms -> {optimized_ms:8.3f} ms "
            f"({speedup:7.1f}x) -> vec {vectorized_ms:8.3f} ms "
            f"({vector_speedup:6.1f}x)"
        )

    payload = {
        "benchmark": (
            "sqlengine micro (optimizer on/off + row/vectorized, best of rounds)"
        ),
        "data_model": args.version,
        "rounds": args.rounds,
        "python": platform.python_version(),
        "optimizer": db.optimizer_stats(),
        "plan_cache": db.plan_cache_stats(),
        "engine_modes": db.engine_mode_stats(),
        "tracked_metrics": list(TRACKED_METRICS),
        "cases": cases,
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
