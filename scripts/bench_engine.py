#!/usr/bin/env python
"""Engine micro-benchmark exporter: optimizer on vs off → BENCH_engine.json.

Times the micro-benchmark workload of ``benchmarks/bench_engine_micro.py``
with the cost-based optimizer enabled and disabled (plan cache and join
indexes warm in both modes, so the measured delta is planning effect
alone) and writes a compact JSON artifact.  The CI ``bench-smoke`` job
runs this on every push and uploads the artifact, seeding the repo's
performance trajectory; a reference copy generated on the development
machine is committed at ``benchmarks/BENCH_engine.json``.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py \
        --rounds 5 --output BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.footballdb import build_universe, load_all

CASES = {
    "point_lookup": (
        "SELECT teamname FROM national_team WHERE team_id = 7",
        1,
    ),
    "filtered_scan_large_table": (
        "SELECT count(*) FROM club_league_hist WHERE season_year = 2010",
        1,
    ),
    "aggregation_group_by": (
        "SELECT year, count(*) FROM match GROUP BY year ORDER BY year",
        22,
    ),
    "multi_join_filter": (
        "SELECT T3.full_name FROM player_fact AS T1 "
        "JOIN national_team AS T2 ON T1.team_id = T2.team_id "
        "JOIN player AS T3 ON T1.player_id = T3.player_id "
        "WHERE T2.teamname ILIKE '%Brazil%' AND T1.year = 2002",
        23,
    ),
    "boolean_filter_join": (
        "SELECT count(*) FROM match_fact AS T1 "
        "JOIN match AS T2 ON T1.match_id = T2.match_id "
        "JOIN national_team AS T3 ON T1.team_id = T3.team_id "
        "WHERE T3.teamname ILIKE '%Brazil%' AND T2.year = 1958 "
        "AND T1.goal = 'True'",
        1,
    ),
    "exists_subquery": (
        "SELECT teamname FROM national_team AS T1 WHERE EXISTS "
        "(SELECT T2.match_id, T2.year FROM match AS T2 "
        "WHERE T2.home_team_id = T1.team_id AND T2.year = 2014)",
        None,
    ),
}


def time_case(db, sql: str, optimize: bool, rounds: int) -> tuple:
    db.execute(sql, optimize=optimize)  # warm plan cache + join indexes
    best = float("inf")
    rows = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = db.execute(sql, optimize=optimize)
        best = min(best, time.perf_counter() - start)
        rows = len(result.rows)
    return best * 1000.0, rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument("--version", default="v1", choices=["v1", "v2", "v3"])
    args = parser.parse_args()

    started = time.perf_counter()
    football = load_all(universe=build_universe(seed=2022))
    db = football[args.version]

    cases = {}
    for name, (sql, expected_rows) in CASES.items():
        unoptimized_ms, rows = time_case(db, sql, optimize=False, rounds=args.rounds)
        optimized_ms, optimized_rows = time_case(
            db, sql, optimize=True, rounds=args.rounds
        )
        if rows != optimized_rows:
            print(f"FATAL: row-count divergence in {name}", file=sys.stderr)
            return 1
        if expected_rows is not None and rows != expected_rows:
            print(f"FATAL: unexpected row count in {name}: {rows}", file=sys.stderr)
            return 1
        speedup = unoptimized_ms / optimized_ms if optimized_ms else 0.0
        cases[name] = {
            "sql": sql,
            "rows": rows,
            "unoptimized_ms": round(unoptimized_ms, 4),
            "optimized_ms": round(optimized_ms, 4),
            "speedup": round(speedup, 2),
        }
        print(
            f"{name:28s} {unoptimized_ms:10.3f} ms -> {optimized_ms:8.3f} ms "
            f"({speedup:7.1f}x)"
        )

    payload = {
        "benchmark": "sqlengine micro (optimizer on/off, best of rounds)",
        "data_model": args.version,
        "rounds": args.rounds,
        "python": platform.python_version(),
        "optimizer": db.optimizer_stats(),
        "plan_cache": db.plan_cache_stats(),
        "cases": cases,
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
