#!/usr/bin/env python
"""Docs link check: every repo path named in the docs must exist.

Scans README.md and docs/*.md for

* markdown links pointing at repository files (``[x](docs/FILE.md)``),
* inline-code references to repository paths (``src/repro/...``,
  ``benchmarks/bench_*.py``, ``examples/*.py``, ``scripts/*.py``),

and fails (exit 1) when a referenced path does not exist.  Used by CI
and by ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = ("README.md", "ROADMAP.md", "CHANGES.md")
DOC_GLOBS = ("docs/*.md",)

#: repo-relative prefixes that make a backticked token a path claim
PATH_PREFIXES = ("src/", "benchmarks/", "examples/", "scripts/", "docs/", "tests/")

MARKDOWN_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")


def doc_paths() -> List[Path]:
    paths = [REPO_ROOT / name for name in DOC_FILES if (REPO_ROOT / name).exists()]
    for pattern in DOC_GLOBS:
        paths.extend(sorted(REPO_ROOT.glob(pattern)))
    return paths


def referenced_paths(text: str) -> Iterable[str]:
    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]  # drop any anchor
        if target and "://" not in target:  # skip external URLs
            yield target
    for match in INLINE_CODE.finditer(text):
        token = match.group(1).strip()
        if token.startswith(PATH_PREFIXES) and " " not in token and "*" not in token:
            yield token


def check_file(doc: Path) -> List[Tuple[str, str]]:
    """(doc name, missing path) for every dangling reference in ``doc``."""
    missing = []
    for target in referenced_paths(doc.read_text(encoding="utf-8")):
        resolved = (doc.parent / target).resolve()
        in_repo = (REPO_ROOT / target).resolve()
        if not resolved.exists() and not in_repo.exists():
            missing.append((doc.name, target))
    return missing


def main() -> int:
    missing: List[Tuple[str, str]] = []
    docs = doc_paths()
    for doc in docs:
        missing.extend(check_file(doc))
    if missing:
        for doc_name, target in missing:
            print(f"MISSING  {doc_name}: {target}", file=sys.stderr)
        return 1
    print(f"docs link check OK ({len(docs)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
