#!/usr/bin/env python
"""Compare two BENCH_engine.json artifacts and fail on perf regressions.

The CI ``perf-gate`` job runs ``scripts/bench_engine.py`` twice — once
on the PR head and once on the merge-base, on the same runner — and
feeds both artifacts here (when no healthy base run exists the job
skips the comparison entirely: absolute timings are not comparable
across machines, so there is no cross-machine fallback).  Any tracked
metric that regresses by more than ``--threshold`` percent on any
benchmark case fails the gate.

Guard rails against flaky shared runners:

* only cases present in **both** artifacts are compared (new or
  renamed cases are reported, never failed);
* a case is exempt while *both* sides stay below ``--min-ms`` — at
  that scale the timer jitter dwarfs any real regression (once either
  side reaches the floor, the case is gated);
* the tracked metric list comes from the *current* artifact's
  ``tracked_metrics`` field so the gate and the benchmark evolve in
  the same commit (override with ``--metrics``).

Usage::

    python scripts/check_bench_regression.py BASE.json CURRENT.json \
        --threshold 25
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

DEFAULT_METRICS = ("optimized_ms", "vectorized_ms")


def load(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def compare(
    base: Dict,
    current: Dict,
    metrics: List[str],
    threshold_pct: float,
    min_ms: float,
) -> int:
    base_cases = base.get("cases", {})
    current_cases = current.get("cases", {})
    shared = sorted(set(base_cases) & set(current_cases))
    added = sorted(set(current_cases) - set(base_cases))
    removed = sorted(set(base_cases) - set(current_cases))
    regressions = []

    limit = 1.0 + threshold_pct / 100.0
    print(
        f"{'case':30s} {'metric':15s} {'base':>10s} {'current':>10s} "
        f"{'ratio':>7s}"
    )
    for name in shared:
        for metric in metrics:
            base_ms = base_cases[name].get(metric)
            current_ms = current_cases[name].get(metric)
            if base_ms is None or current_ms is None:
                continue  # metric introduced in this PR: nothing to gate
            ratio = current_ms / base_ms if base_ms else float("inf")
            flag = ""
            if ratio > limit and max(base_ms, current_ms) >= min_ms:
                flag = "  << REGRESSION"
                regressions.append((name, metric, base_ms, current_ms, ratio))
            print(
                f"{name:30s} {metric:15s} {base_ms:10.3f} {current_ms:10.3f} "
                f"{ratio:6.2f}x{flag}"
            )
    for name in added:
        print(f"{name:30s} (new case — not gated)")
    for name in removed:
        print(f"{name:30s} (removed from current — not gated)")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} tracked metric(s) regressed more "
            f"than {threshold_pct:.0f}%:"
        )
        for name, metric, base_ms, current_ms, ratio in regressions:
            print(
                f"  {name}.{metric}: {base_ms:.3f} ms -> {current_ms:.3f} ms "
                f"({ratio:.2f}x)"
            )
        return 1
    print(
        f"\nOK: {len(shared)} shared cases within {threshold_pct:.0f}% on "
        f"{', '.join(metrics)}"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base", help="BENCH_engine.json of the merge-base")
    parser.add_argument("current", help="BENCH_engine.json of the PR head")
    parser.add_argument(
        "--threshold", type=float, default=25.0,
        help="maximum tolerated slowdown in percent (default 25)",
    )
    parser.add_argument(
        "--min-ms", type=float, default=1.0,
        help="ignore cases where both sides are below this many ms",
    )
    parser.add_argument(
        "--metrics", nargs="*", default=None,
        help="metric keys to gate (default: current artifact's "
        "tracked_metrics, else optimized_ms + vectorized_ms)",
    )
    args = parser.parse_args()

    base = load(args.base)
    current = load(args.current)
    metrics = args.metrics
    if not metrics:
        metrics = current.get("tracked_metrics") or list(DEFAULT_METRICS)
    return compare(base, current, metrics, args.threshold, args.min_ms)


if __name__ == "__main__":
    sys.exit(main())
