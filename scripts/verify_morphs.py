#!/usr/bin/env python
"""Full-benchmark verification of seeded schema morphs (CI smoke job).

For every derived morph of the chosen base data model, executes the
domain's rewritten gold queries and checks the normalized result
multisets are identical to the base schema's — on our engine *and* on
sqlite3 (booleans stored as their text form, ``ILIKE`` rendered as
sqlite's case-insensitive ``LIKE``).  Exit code 1 on any divergence.

``--domain football`` (the default) sweeps the paper's benchmark gold
queries; any other registered domain (``hospital``, ``retail``,
``flights``) or a seeded random scenario (``random:<seed>``) sweeps its
generated question pool — the cross-domain conformance surface.

Usage::

    PYTHONPATH=src python scripts/verify_morphs.py \
        --seed 2022 --base v1 --count 5 --steps 3 --split test
    PYTHONPATH=src python scripts/verify_morphs.py \
        --domain hospital --count 3 --steps 4
    PYTHONPATH=src python scripts/verify_morphs.py --domain random:91
"""

from __future__ import annotations

import argparse
import sqlite3
import sys
import time

from repro.domains import SchemaMorpher, load_domain, load_random_domain
from repro.domains.morph import MorphedModel, result_signature
from repro.sqlengine import Database, sqlite_dialect, sqlite_result, to_sqlite


def verify(
    morph: MorphedModel,
    base: Database,
    base_sqlite: sqlite3.Connection,
    queries,
    optimize: bool = True,
    engine_mode: str = "auto",
) -> int:
    morph_sqlite = to_sqlite(morph.database)
    failures = 0
    for sql in queries:
        rewritten = morph.rewrite_sql(sql)
        base_engine = result_signature(
            base.execute(sql, optimize=optimize, engine_mode=engine_mode)
        )
        morph_engine = result_signature(
            morph.database.execute(
                rewritten, optimize=optimize, engine_mode=engine_mode
            )
        )
        lite_base = result_signature(
            sqlite_result(base_sqlite, sqlite_dialect(sql))
        )
        lite_morph = result_signature(
            sqlite_result(morph_sqlite, sqlite_dialect(rewritten))
        )
        problems = []
        if morph_engine != base_engine:
            problems.append("engine: morph != base")
        if lite_morph != lite_base:
            problems.append("sqlite: morph != base")
        if problems:
            failures += 1
            print(f"DIVERGENCE [{morph.version}] {'; '.join(problems)}")
            print(f"  base : {sql}")
            print(f"  morph: {rewritten}")
    return failures


def football_fixture(args):
    """(base database, gold queries) for the paper's benchmark."""
    from repro.benchmark import build_benchmark
    from repro.footballdb import build_universe, load_all

    universe = build_universe(seed=2022)
    football = load_all(universe=universe)
    dataset = build_benchmark(universe)
    examples = (
        dataset.test_examples if args.split == "test" else dataset.examples
    )
    queries = sorted({example.gold[args.base] for example in examples})
    return football[args.base], queries, args.base


def domain_fixture(args):
    """(base database, gold queries) for a registered/random domain."""
    if args.domain.startswith("random:"):
        instance = load_random_domain(int(args.domain.split(":", 1)[1]))
    else:
        instance = load_domain(args.domain, seed=args.seed)
    version = instance.base_version
    return instance[version], instance.gold_queries(version), version


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--domain", default="football",
        help="registered domain name, or random:<seed> for a fresh scenario",
    )
    parser.add_argument("--base", default="v1", choices=["v1", "v2", "v3"],
                        help="football only: which hand-written model to morph")
    parser.add_argument("--count", type=int, default=5)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument(
        "--split", default="test", choices=["test", "full"],
        help="football only: the 100-question test split or all 400",
    )
    parser.add_argument(
        "--optimize", default=True, action=argparse.BooleanOptionalAction,
        help="run the engine with the cost-based optimizer on (default) or "
        "off (--no-optimize); CI sweeps both modes",
    )
    parser.add_argument(
        "--engine-mode", default="auto", choices=["row", "vectorized", "auto"],
        help="execution backend for the engine-side checks; the nightly "
        "sweep runs both 'row' and 'vectorized'",
    )
    args = parser.parse_args()

    started = time.perf_counter()
    if args.domain == "football":
        base, queries, base_label = football_fixture(args)
    else:
        base, queries, base_label = domain_fixture(args)
    base_sqlite = to_sqlite(base)
    mode = "optimizer on" if args.optimize else "optimizer off"
    mode += f", engine {args.engine_mode}"
    print(
        f"verifying {args.count} morphs of {args.domain}/{base_label} "
        f"(seed={args.seed}, steps<={args.steps}, {mode}) "
        f"over {len(queries)} gold queries"
    )

    morpher = SchemaMorpher(seed=args.seed)
    morphs = morpher.derive(base, count=args.count, steps=args.steps)
    failures = 0
    for morph in morphs:
        print(f"  {morph.describe()}")
        failures += verify(
            morph,
            base,
            base_sqlite,
            queries,
            optimize=args.optimize,
            engine_mode=args.engine_mode,
        )
    elapsed = time.perf_counter() - started
    if failures:
        print(
            f"FAILED: {failures} diverging queries "
            f"(domain={args.domain} seed={args.seed}, {elapsed:.1f}s)"
        )
        return 1
    print(
        f"OK: {args.count} morphs x {len(queries)} queries byte-identical "
        f"on engine and sqlite3 with {mode} ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
