#!/usr/bin/env python
"""Process-grid speedup + robustness-under-ingestion → BENCH_ingestion.json.

Two measurements in one artifact:

1. **Grid speedup** — the same (system × version × fold) grid over
   each domain, evaluated three ways from identical recipes: a serial
   loop, the thread-pooled :class:`ParallelHarness`, and the
   multiprocess :class:`ProcessGridExecutor`.  Byte-identity of all
   three result sets is *asserted*, not assumed; wall clocks land in
   ``grid_<domain>_{serial,thread,process}`` cases.  The process pool
   only beats the thread pool when real cores exist — ``cpu_count`` is
   recorded, and ``--require-speedup`` (the nightly setting) fails the
   run if the process/thread ratio is under 2× on a ≥4-core machine.
   On fewer cores the numbers are reported honestly and not enforced.

2. **Ingestion-rate curve** — :func:`repro.evaluation.replay_rate_sweep`
   replays the seeded user-log stream into live databases at a sweep
   of rates while the grid evaluates against epoch-pinned snapshots;
   per-rate EX accuracy and latency percentiles land in
   ``ingest_r<rate>`` cases (the robustness-vs-ingestion-rate curve).

The artifact follows the BENCH_engine.json conventions: a ``cases``
dict plus ``tracked_metrics`` naming the lower-is-better metrics the
CI ``perf-gate`` compares across merge-base and PR head via
``scripts/check_bench_regression.py``.

Usage::

    PYTHONPATH=src python scripts/bench_ingestion.py \
        --domains hospital,retail,flights --rates 50,200,800 \
        --output BENCH_ingestion.json

    # CI smoke: one domain, 2 process workers, short replay
    PYTHONPATH=src python scripts/bench_ingestion.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.evaluation import (
    GridConfig,
    HarnessRecipe,
    ParallelHarness,
    ProcessGridExecutor,
    ReplayConfig,
    build_harness,
    replay_rate_sweep,
)
from repro.systems import GPT35, T5Picard

#: the perf gate compares these (lower is better) across merge-base/PR
TRACKED_METRICS = ("grid_wall_ms", "latency_p99_ms")


def fingerprint(result):
    return (
        result.system,
        result.version,
        result.train_size,
        result.shots,
        result.fold,
        tuple(result.outcomes),
    )


def build_grid(harness, shots: int, train: int, folds: int):
    configs = []
    for version in harness.domain.versions:
        for fold in range(folds):
            configs.append(GridConfig.make(GPT35, version, shots=shots, fold=fold))
        configs.append(GridConfig.make(T5Picard, version, train_size=train))
    return configs


def bench_grid(recipe: HarnessRecipe, args) -> dict:
    """Serial vs thread vs process on one domain; asserts byte-identity."""
    cases = {}

    serial_harness = build_harness(recipe)
    grid = build_grid(serial_harness, args.shots, args.train, args.folds)
    start = time.perf_counter()
    serial = [
        serial_harness.evaluate(
            c.system_cls, c.version,
            train_size=c.train_size, shots=c.shots, fold=c.fold,
        )
        for c in grid
    ]
    serial_ms = (time.perf_counter() - start) * 1000
    cases[f"grid_{recipe.domain}_serial"] = {
        "grid_wall_ms": round(serial_ms, 3),
        "configs": len(grid),
        "questions": sum(len(r.outcomes) for r in serial),
        "workers": 1,
    }

    thread_harness = build_harness(recipe)
    runner = ParallelHarness(thread_harness.domain, thread_harness.dataset)
    runner.seed_pool(thread_harness)
    thread_results, thread_summary = runner.run(grid, max_workers=args.workers)
    cases[f"grid_{recipe.domain}_thread"] = {
        "grid_wall_ms": round(thread_summary.wall_seconds * 1000, 3),
        "configs": thread_summary.configs,
        "questions": thread_summary.questions,
        "workers": thread_summary.workers,
    }

    with ProcessGridExecutor(recipe, max_workers=args.workers) as executor:
        process_results, process_summary = executor.run(grid)
        # second run on the warm pool: steady-state cost without the
        # per-worker harness build
        warm_results, warm_summary = executor.run(grid)
    cases[f"grid_{recipe.domain}_process"] = {
        "grid_wall_ms": round(process_summary.wall_seconds * 1000, 3),
        "configs": process_summary.configs,
        "questions": process_summary.questions,
        "workers": process_summary.workers,
    }
    cases[f"grid_{recipe.domain}_process_warm"] = {
        "grid_wall_ms": round(warm_summary.wall_seconds * 1000, 3),
        "configs": warm_summary.configs,
        "questions": warm_summary.questions,
        "workers": warm_summary.workers,
    }

    expected = [fingerprint(r) for r in serial]
    for label, results in (
        ("thread", thread_results),
        ("process", process_results),
        ("process_warm", warm_results),
    ):
        if [fingerprint(r) for r in results] != expected:
            raise SystemExit(
                f"FATAL: {label} grid results diverged from serial on "
                f"{recipe.domain} — determinism contract broken"
            )

    speedup = (
        thread_summary.wall_seconds / warm_summary.wall_seconds
        if warm_summary.wall_seconds > 0
        else 0.0
    )
    print(
        f"  {recipe.domain}: serial {serial_ms:8.1f} ms, "
        f"thread {thread_summary.wall_seconds * 1000:8.1f} ms, "
        f"process {process_summary.wall_seconds * 1000:8.1f} ms "
        f"(warm {warm_summary.wall_seconds * 1000:8.1f} ms, "
        f"{speedup:.2f}x vs thread); byte-identical: yes",
        flush=True,
    )
    return {"cases": cases, "speedup_vs_thread": round(speedup, 3)}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--domains", default="hospital,retail,flights",
        help="comma-separated generated domains",
    )
    parser.add_argument("--workers", type=int, default=0,
                        help="pool width (default: min(8, cpus))")
    parser.add_argument("--morphs", type=int, default=2)
    parser.add_argument("--morph-steps", type=int, default=2)
    parser.add_argument("--folds", type=int, default=2)
    parser.add_argument("--shots", type=int, default=8)
    parser.add_argument("--train", type=int, default=24)
    parser.add_argument("--rates", default="50,200,800",
                        help="ingestion rates (events/s/domain) to sweep")
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--max-events", type=int, default=400)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--output", default="BENCH_ingestion.json")
    parser.add_argument(
        "--require-speedup", type=float, default=0.0,
        help="fail unless process beats thread by this factor "
        "(enforced only on >=4-core machines; nightly passes 2.0)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke: one domain, 2 process workers, short replay",
    )
    args = parser.parse_args()

    if args.smoke:
        args.domains = "hospital"
        args.workers = 2
        args.morphs = 1
        args.folds = 1
        args.rates = "200"
        args.max_events = 80
        args.rounds = 2

    domains = [name.strip() for name in args.domains.split(",") if name.strip()]
    rates = [float(rate) for rate in args.rates.split(",") if rate.strip()]
    cpus = os.cpu_count() or 1
    if not args.workers:
        args.workers = min(8, cpus)

    started = time.perf_counter()
    cases: dict = {}
    speedups: dict = {}

    print(f"grid speedup ({args.workers} workers, {cpus} cpus):", flush=True)
    for name in domains:
        recipe = HarnessRecipe(
            domain=name, seed=args.seed,
            morph_count=args.morphs, morph_steps=args.morph_steps,
        )
        outcome = bench_grid(recipe, args)
        cases.update(outcome["cases"])
        speedups[name] = outcome["speedup_vs_thread"]

    print(f"ingestion sweep (rates {rates}):", flush=True)
    sweep = replay_rate_sweep(
        rates,
        ReplayConfig(
            domains=tuple(domains),
            systems=("GPT-3.5",),
            seed=args.seed,
            batch_size=args.batch_size,
            max_events=args.max_events,
            rounds=args.rounds,
            shots=args.shots,
            train_size=args.train,
        ),
    )
    for rate, point in zip(rates, sweep["points"]):
        cases[f"ingest_r{rate:g}"] = point
        print(
            f"  rate {rate:7.1f}: achieved {point['rate_achieved']:8.1f}, "
            f"accuracy {point['accuracy_mean']:.3f} "
            f"(min {point['accuracy_min']:.3f}), "
            f"p99 {point['latency_p99_ms']:.1f} ms, "
            f"rows {point['rows_inserted']}",
            flush=True,
        )

    artifact = {
        "benchmark": "ingestion-and-process-grid",
        "domains": domains,
        "workers": args.workers,
        "cpu_count": cpus,
        "python": platform.python_version(),
        "seed": args.seed,
        "grid": {
            "morphs": args.morphs,
            "morph_steps": args.morph_steps,
            "folds": args.folds,
            "shots": args.shots,
            "train": args.train,
        },
        "replay": {
            "rates": rates,
            "batch_size": args.batch_size,
            "max_events": args.max_events,
            "rounds": args.rounds,
        },
        "speedup_process_vs_thread": speedups,
        "byte_identical": True,  # asserted per domain above, or we exited
        "cases": cases,
        "tracked_metrics": list(TRACKED_METRICS),
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} in {artifact['wall_seconds']}s", flush=True)

    if args.require_speedup:
        if cpus < 4:
            print(
                f"speedup floor not enforced: only {cpus} cpu(s) — the "
                "process pool cannot beat threads without real cores"
            )
        else:
            worst = min(speedups.values())
            if worst < args.require_speedup:
                print(
                    f"FAIL: process/thread speedup {worst:.2f}x below the "
                    f"{args.require_speedup:.1f}x floor on {cpus} cores"
                )
                return 1
            print(f"speedup floor met: worst domain {worst:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
