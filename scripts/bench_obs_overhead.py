#!/usr/bin/env python
"""Telemetry overhead benchmark → BENCH_obs.json (and a pass/fail gate).

Replays a :func:`repro.serving.question_stream` log stream through one
per-domain :class:`TextToSQLService` twice — once bare, once with the
full observability stack enabled (``MetricsRegistry`` bound through
``bind_service``, latency histogram attached, ``Tracer`` at a 100%
sample rate threaded through service *and* database) — and compares
per-request wall latency.  The configurations alternate round by round
on the same warmed service pair so both see identical questions, plan
caches and machine state; per-config p50/p99 are reported over the
pooled rounds, while the *gated* statistic is the **median of the
per-round p99s** — a single scheduler hiccup inflates one round's
tail, not the median of six.

The script **fails (exit 1)** when the instrumented gated p99 exceeds
the bare one by more than ``--threshold`` percent (default 5) *and*
more than ``--min-ms`` absolute (default 0.2 ms — sub-floor deltas are
scheduler jitter, not instrumentation cost).  CI runs this as the
``obs-smoke`` job; a reference artifact generated on the development
machine is committed at ``benchmarks/BENCH_obs.json``.

Usage::

    PYTHONPATH=src python scripts/bench_obs_overhead.py \
        --domain hospital --requests 400 --rounds 6 --output BENCH_obs.json

    # CI smoke: seconds, not minutes
    PYTHONPATH=src python scripts/bench_obs_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.obs import MetricsRegistry, Tracer, bind_service, percentile
from repro.serving import DomainSpec, question_stream
from repro.serving.shards import build_service


def _build(domain: str, seed: int, train: int, instrumented: bool):
    """One warmed service; optionally with registry + tracer attached."""
    service = build_service(
        DomainSpec(domain=domain, seed=seed, train=train, response_cache_size=256)
    )
    registry = tracer = None
    if instrumented:
        registry = MetricsRegistry()
        tracer = Tracer(sample_rate=1.0, registry=registry)
        bind_service(registry, service)
        service.tracer = tracer
        service.database.tracer = tracer
    return service, registry, tracer


def _measure_round(service, questions) -> list:
    latencies = []
    clock = time.perf_counter
    for _domain, question in questions:
        started = clock()
        service.ask(question)
        latencies.append(clock() - started)
    return latencies


def _summary(latencies: list) -> dict:
    ordered = sorted(latencies)
    return {
        "requests": len(ordered),
        "p50_ms": round(percentile(ordered, 0.50) * 1000.0, 4),
        "p95_ms": round(percentile(ordered, 0.95) * 1000.0, 4),
        "p99_ms": round(percentile(ordered, 0.99) * 1000.0, 4),
        "mean_ms": round(sum(ordered) / len(ordered) * 1000.0, 4)
        if ordered
        else 0.0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", default="hospital")
    parser.add_argument(
        "--requests", type=int, default=400, help="log records replayed per round"
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=6,
        help="alternating measurement rounds per configuration",
    )
    parser.add_argument("--train", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="max tolerated instrumented-vs-bare p99 regression, percent",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=0.2,
        help="absolute p99 delta floor below which the gate never fires",
    )
    parser.add_argument("--output", default="BENCH_obs.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run for CI: fewer requests and rounds",
    )
    args = parser.parse_args()

    if args.smoke:
        args.requests = 120
        args.rounds = 4

    started = time.perf_counter()
    bare, _, _ = _build(args.domain, args.seed, args.train, instrumented=False)
    instrumented, registry, tracer = _build(
        args.domain, args.seed, args.train, instrumented=True
    )
    questions = question_stream([args.domain], size=args.requests, seed=args.seed)
    print(
        f"domain {args.domain}: {len(questions)} questions x {args.rounds} "
        f"round(s) per configuration",
        flush=True,
    )

    # warm both services (plan + response caches) before measuring
    _measure_round(bare, questions)
    _measure_round(instrumented, questions)

    pooled = {"disabled": [], "enabled": []}
    round_p99s = {"disabled": [], "enabled": []}
    for index in range(args.rounds):
        # alternate configs so drift (thermal, page cache) hits both
        order = (
            [("disabled", bare), ("enabled", instrumented)]
            if index % 2 == 0
            else [("enabled", instrumented), ("disabled", bare)]
        )
        for name, service in order:
            latencies = _measure_round(service, questions)
            pooled[name].extend(latencies)
            round_p99s[name].append(
                percentile(sorted(latencies), 0.99) * 1000.0
            )

    cases = {name: _summary(latencies) for name, latencies in pooled.items()}
    for name in sorted(cases):
        cases[name]["median_round_p99_ms"] = round(
            percentile(sorted(round_p99s[name]), 0.5), 4
        )
        case = cases[name]
        print(
            f"  {name:9s} p50 {case['p50_ms']:7.3f} ms  "
            f"p99 {case['p99_ms']:7.3f} ms  "
            f"median round p99 {case['median_round_p99_ms']:7.3f} ms",
            flush=True,
        )

    base_p99 = cases["disabled"]["median_round_p99_ms"]
    inst_p99 = cases["enabled"]["median_round_p99_ms"]
    delta_ms = inst_p99 - base_p99
    overhead_pct = (delta_ms / base_p99 * 100.0) if base_p99 > 0 else 0.0

    snapshot = registry.snapshot()
    artifact = {
        "benchmark": "obs-overhead",
        "domain": args.domain,
        "requests_per_round": len(questions),
        "rounds": args.rounds,
        "seed": args.seed,
        "python": platform.python_version(),
        "cases": cases,
        "tracked_metrics": [],
        "p99_overhead_pct": round(overhead_pct, 2),
        "p99_overhead_ms": round(delta_ms, 4),
        "threshold_pct": args.threshold,
        "min_ms": args.min_ms,
        "traces_recorded": len(tracer.store),
        "metric_families": len(snapshot),
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # sanity: the instrumented service actually recorded everything
    served = snapshot["service_questions_served"]["samples"][0]["value"]
    expected = len(questions) * (args.rounds + 1)  # rounds + warm-up
    if served != expected:
        print(f"FAIL: registry saw {served} requests, expected {expected}")
        return 1

    print(
        f"p99 overhead: {delta_ms:+.3f} ms ({overhead_pct:+.2f}%) "
        f"[threshold {args.threshold:.1f}% and {args.min_ms:.2f} ms]\n"
        f"wrote {args.output} ({time.perf_counter() - started:.1f}s total)"
    )
    if overhead_pct > args.threshold and delta_ms > args.min_ms:
        print(
            f"FAIL: instrumentation-enabled p99 regressed "
            f"{overhead_pct:.2f}% > {args.threshold:.1f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
