#!/usr/bin/env python
"""Grammar-based differential fuzzing over generated domains (CI job).

Generates seeded random queries from the engine's grammar over every
requested domain and asserts result equality across all engine
configurations (row/vectorized × optimizer on/off) and against sqlite3.
Every failure line carries the ``(domain, data seed, fuzz seed)``
triple, so any CI divergence reproduces locally with the same flags.

Usage::

    PYTHONPATH=src python scripts/fuzz_domains.py \
        --domains hospital,retail,flights --queries 150 --seeds 101,202
    PYTHONPATH=src python scripts/fuzz_domains.py \
        --domains random --random-count 4 --queries 120 --seeds 7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.domains import (
    available_domains,
    differential_fuzz,
    load_domain,
    load_random_domain,
)


def parse_int_list(text: str):
    return [int(part) for part in text.split(",") if part]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--domains", default="hospital,retail,flights",
        help="comma list of registered domains; the special entry 'random' "
        "adds --random-count fresh scenarios with spec seeds derived from "
        "--data-seed (the fuzz --seeds only drive query generation)",
    )
    parser.add_argument(
        "--seeds", default="101,202",
        help="comma list of fuzz seeds — each (domain, seed) pair is one run",
    )
    parser.add_argument("--queries", type=int, default=150,
                        help="queries per (domain, seed) run")
    parser.add_argument("--data-seed", type=int, default=2022,
                        help="seed the registered domains are loaded at")
    parser.add_argument("--random-count", type=int, default=3,
                        help="how many random scenarios 'random' expands to")
    parser.add_argument(
        "--no-sqlite", action="store_true",
        help="skip the sqlite3 oracle (engine-config agreement only)",
    )
    args = parser.parse_args()

    seeds = parse_int_list(args.seeds)
    names = [name for name in args.domains.split(",") if name]
    databases = []  # (label, database, data_seed)
    for name in names:
        if name == "random":
            for offset in range(args.random_count):
                scenario_seed = args.data_seed + 101 * offset
                instance = load_random_domain(scenario_seed)
                databases.append(
                    (instance.name, instance[instance.base_version], scenario_seed)
                )
        else:
            if name not in available_domains():
                print(f"unknown domain {name!r}; known: {available_domains()}")
                return 2
            instance = load_domain(name, seed=args.data_seed)
            databases.append(
                (name, instance[instance.base_version], args.data_seed)
            )

    total_queries = 0
    total_divergences = 0
    started = time.perf_counter()
    for label, database, data_seed in databases:
        for seed in seeds:
            report = differential_fuzz(
                database,
                count=args.queries,
                seed=seed,
                compare_sqlite=not args.no_sqlite,
            )
            total_queries += report.queries
            status = "ok" if report.ok else "FAIL"
            print(
                f"  {status}: domain={label} data_seed={data_seed} "
                f"fuzz_seed={seed} queries={report.queries} "
                f"divergences={len(report.divergences)}"
            )
            for divergence in report.divergences[:10]:
                total_divergences += 1
                print(f"    DIVERGENCE ({divergence.detail})")
                print(f"      {divergence.sql}")
            total_divergences += max(0, len(report.divergences) - 10)
    elapsed = time.perf_counter() - started
    if total_divergences:
        print(
            f"FAILED: {total_divergences} divergences over {total_queries} "
            f"queries ({elapsed:.1f}s) — rerun with the printed seeds to repro"
        )
        return 1
    print(
        f"OK: {total_queries} fuzzed queries agree across row/vectorized × "
        f"optimizer on/off"
        + ("" if args.no_sqlite else " and sqlite3")
        + f" ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
