#!/usr/bin/env python
"""Open-loop serving-tier load benchmark → BENCH_serving.json.

Builds the async serving tier over real generated domains, replays a
:func:`repro.domains.logs.synthesize_logs` question stream (repeats,
misspellings, off-topic noise — deployment-shaped traffic) as an
**open-loop Poisson** arrival process at a sweep of offered rates, and
records per-rate p50/p95/p99 wall latency, achieved QPS, coalescing
and shed rate, plus the *max sustainable QPS* — the highest offered
rate whose shed rate stayed within 1% and whose p99 met the SLO.

The artifact follows the BENCH_engine.json conventions: one entry per
``cases`` key, a ``tracked_metrics`` list naming the lower-is-better
metrics the CI ``perf-gate`` compares across merge-base and PR head
via ``scripts/check_bench_regression.py``.  Only latency metrics are
tracked (the gate flags increases; QPS and shed rate are reported but
not gated).  A reference copy generated on the development machine is
committed at ``benchmarks/BENCH_serving.json``.

Usage::

    PYTHONPATH=src python scripts/bench_serving.py \
        --domains hospital,retail,flights --rates 25,50,100,200 \
        --duration 8 --output BENCH_serving.json

    # CI smoke: tiny sweep, seconds not minutes
    PYTHONPATH=src python scripts/bench_serving.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time

from repro.serving import (
    AsyncTextToSQLService,
    DomainSpec,
    QuotaPolicy,
    max_sustainable_qps,
    poisson_arrivals,
    question_stream,
    run_open_loop,
)

#: the perf gate compares these (lower is better) across merge-base/PR
TRACKED_METRICS = ("p50_ms", "p99_ms")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--domains",
        default="hospital,retail,flights",
        help="comma-separated generated domains to serve",
    )
    parser.add_argument(
        "--workers",
        default="thread",
        choices=["thread", "process"],
        help="shard worker kind (process = one interpreter per shard)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, help="shard count (default: one per domain)"
    )
    parser.add_argument(
        "--rates",
        default="25,50,100,200,400",
        help="comma-separated offered QPS sweep",
    )
    parser.add_argument(
        "--duration", type=float, default=8.0, help="seconds per offered rate"
    )
    parser.add_argument(
        "--stream-size", type=int, default=300, help="distinct log records replayed"
    )
    parser.add_argument(
        "--tenants", type=int, default=4, help="round-robin tenant count"
    )
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=0.0,
        help="per-tenant token-bucket refill QPS (0 disables quotas: "
        "shedding then measures queue capacity, not tenant limits)",
    )
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-pending", type=int, default=512)
    parser.add_argument(
        "--p99-slo-ms",
        type=float,
        default=500.0,
        help="p99 bound a rate must meet to count as sustained",
    )
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--train", type=int, default=8)
    parser.add_argument("--output", default="BENCH_serving.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sweep for CI: 2 rates x 2 seconds, one domain",
    )
    args = parser.parse_args()

    if args.smoke:
        args.domains = "hospital"
        args.rates = "20,60"
        args.duration = 2.0
        args.stream_size = 80

    domains = [name.strip() for name in args.domains.split(",") if name.strip()]
    rates = [float(rate) for rate in args.rates.split(",") if rate.strip()]
    shard_count = args.shards or len(domains)

    started = time.perf_counter()
    specs = [
        DomainSpec(domain=name, seed=args.seed, train=args.train, response_cache_size=256)
        for name in domains
    ]
    quota = (
        QuotaPolicy(rate=args.quota_rate, burst=max(args.quota_rate, 1.0))
        if args.quota_rate > 0
        else None
    )
    serving = AsyncTextToSQLService.from_specs(
        specs,
        shard_count=shard_count,
        workers=args.workers,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        quota=quota,
    )
    traffic = question_stream(domains, size=args.stream_size, seed=args.seed)
    tenants = [f"tenant-{index}" for index in range(args.tenants)]
    print(
        f"serving {len(domains)} domain(s) on {shard_count} {args.workers} "
        f"shard(s); {len(traffic)} log records; rates {rates} QPS "
        f"x {args.duration:.0f}s",
        flush=True,
    )

    async def sweep():
        reports = []
        async with serving:
            # warm-up: populate plan/response caches so the measured
            # rates see steady-state behaviour, not first-touch parsing
            warm = poisson_arrivals(
                min(rates), min(2.0, args.duration), seed=args.seed + 999
            )
            await run_open_loop(serving, traffic, warm, tenants=tenants)
            for index, rate in enumerate(rates):
                arrivals = poisson_arrivals(
                    rate, args.duration, seed=args.seed + index
                )
                report = await run_open_loop(
                    serving, traffic, arrivals, tenants=tenants, offered_qps=rate
                )
                reports.append(report)
                print(
                    f"  rate {rate:7.1f} QPS: achieved {report.achieved_qps:7.1f}, "
                    f"p50 {report.p50_seconds * 1000:7.2f} ms, "
                    f"p99 {report.p99_seconds * 1000:7.2f} ms, "
                    f"shed {report.shed_rate:6.2%}, "
                    f"coalesced {report.coalesced}",
                    flush=True,
                )
        return reports

    reports = asyncio.run(sweep())
    serving.close()

    slo_seconds = args.p99_slo_ms / 1000.0
    sustainable = max_sustainable_qps(reports, p99_slo_seconds=slo_seconds)
    # keyed by the NOMINAL rate: case names must be identical across
    # merge-base and PR runs for the gate's shared-case matching
    cases = {
        f"open_loop_r{rate:g}_{args.workers}": report.as_case()
        for rate, report in zip(rates, reports)
    }
    artifact = {
        "benchmark": "serving-open-loop",
        "domains": domains,
        "workers": args.workers,
        "shards": shard_count,
        "max_batch": args.max_batch,
        "max_pending": args.max_pending,
        "quota_rate_qps": args.quota_rate,
        "duration_per_rate_seconds": args.duration,
        "stream_size": len(traffic),
        "tenants": args.tenants,
        "seed": args.seed,
        "python": platform.python_version(),
        "max_sustainable_qps": sustainable,
        "p99_slo_ms": args.p99_slo_ms,
        "cases": cases,
        "tracked_metrics": list(TRACKED_METRICS),
        "final_metrics": serving.metrics(),
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.output, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"max sustainable QPS (shed<=1%, p99<={args.p99_slo_ms:.0f}ms): "
        f"{sustainable:.1f}\nwrote {args.output} "
        f"({time.perf_counter() - started:.1f}s total)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
