#!/usr/bin/env python
"""Error analysis (the paper's RQ4): where and why systems fail.

Runs ValueNet and GPT-3.5 at full budget on data model v1, then breaks
the outcomes down three ways: by failure stage (the pipeline reasons),
by Spider hardness, and by intent topic — the practitioner's view of
what to fix first.

Run:  python examples/error_analysis.py
"""

from collections import Counter, defaultdict

from repro.benchmark import build_benchmark
from repro.evaluation import Harness, render_table
from repro.footballdb import build_universe, load_all
from repro.systems import GPT35, ValueNet


def main() -> None:
    universe = build_universe(seed=2022)
    football = load_all(universe=universe)
    dataset = build_benchmark(universe)
    harness = Harness(football, dataset)

    print("Evaluating ValueNet (300 samples) and GPT-3.5 (30 shots) on v1...\n")
    results = {
        "ValueNet": harness.evaluate(ValueNet, "v1", train_size=300),
        "GPT-3.5": harness.evaluate(GPT35, "v1", shots=30, fold=0),
    }

    # -- failure stages --------------------------------------------------------
    rows = []
    for name, result in results.items():
        failures = result.failure_counts()
        rows.append([
            name,
            f"{result.accuracy:.0%}",
            f"{result.generation_rate:.0%}",
            failures.get("ir_unsupported", 0),
            failures.get("join_path_ambiguous", 0),
            failures.get("invalid_sql", 0),
        ])
    print(render_table(
        ["system", "EX", "gen. rate", "IR rejects", "join-path fails", "invalid SQL"],
        rows,
        title="Failure stages (data model v1)",
    ))

    # -- by hardness -----------------------------------------------------------
    rows = []
    for name, result in results.items():
        by_hardness = result.accuracy_by_hardness()
        rows.append([name] + [
            f"{by_hardness.get(level, (0.0, 0))[0]:.0%} "
            f"(n={by_hardness.get(level, (0.0, 0))[1]})"
            for level in ("easy", "medium", "hard", "extra")
        ])
    print(render_table(
        ["system", "easy", "medium", "hard", "extra"],
        rows,
        title="\nAccuracy by Spider hardness (Figure 7 slice)",
    ))

    # -- by topic ----------------------------------------------------------------
    topic_outcomes = defaultdict(lambda: defaultdict(list))
    for name, result in results.items():
        for example, outcome in zip(dataset.test_examples, result.outcomes):
            topic_outcomes[example.intent.spec.topic][name].append(outcome.correct)
    rows = []
    for topic in sorted(topic_outcomes):
        row = [topic]
        for name in results:
            flags = topic_outcomes[topic][name]
            row.append(f"{sum(flags) / len(flags):.0%} (n={len(flags)})")
        rows.append(row)
    print(render_table(
        ["topic"] + list(results),
        rows,
        title="\nAccuracy by question topic",
    ))

    # -- the paper's takeaway ----------------------------------------------------------
    valuenet_failures = Counter(
        outcome.failure
        for outcome in results["ValueNet"].outcomes
        if outcome.failure
    )
    print(
        "\nReading: ValueNet's v1 errors are dominated by *pipeline* "
        f"failures ({sum(valuenet_failures.values())} of 100 questions "
        "never produce SQL), concentrated on match/podium topics — "
        "exactly the tables the v2/v3 redesigns targeted.  GPT-3.5 "
        "always produces SQL; its errors are semantic."
    )


if __name__ == "__main__":
    main()
