#!/usr/bin/env python
"""Quickstart: build FootballDB, ask a question, evaluate the answer.

Run:  python examples/quickstart.py
"""

from repro.benchmark import build_benchmark
from repro.evaluation import ExecutionEvaluator
from repro.footballdb import build_universe, load_all
from repro.systems import GoldOracle, T5PicardKeys


def main() -> None:
    # 1. One universe, three data models (Figures 3/5/6 of the paper).
    print("Building FootballDB (22 world cups, ~9K players)...")
    universe = build_universe(seed=2022)
    football = load_all(universe=universe)
    database = football["v3"]  # the optimized data model

    # 2. The released benchmark: 400 real-user questions x 3 schemas.
    dataset = build_benchmark(universe)
    print(f"Benchmark: {len(dataset.train_examples)} train / "
          f"{len(dataset.test_examples)} test questions\n")

    # 3. Fine-tune the best small/medium system (T5-Picard with keys).
    system = T5PicardKeys(database, GoldOracle(dataset.gold_lookup("v3")))
    system.fine_tune(dataset.train_pairs("v3"))

    # 4. Ask the paper's running example.
    question = "What was the score between Germany and Brazil in 2014?"
    prediction = system.predict(question)
    print(f"Q: {question}")
    print(f"SQL: {prediction.sql}")
    print(f"simulated inference time: {prediction.latency_seconds:.1f}s")
    result = database.execute(prediction.sql)
    print(f"rows: {result.rows}\n")

    # 5. Evaluate on the benchmark's test split (execution accuracy).
    evaluator = ExecutionEvaluator(database)
    correct = 0
    for example in dataset.test_examples:
        predicted = system.predict(example.question)
        if evaluator.matches(predicted.sql, example.gold["v3"]):
            correct += 1
    print(f"execution accuracy on data model v3: "
          f"{correct}/{len(dataset.test_examples)}")


if __name__ == "__main__":
    main()
