#!/usr/bin/env python
"""Build and export the FootballDB benchmark artifact.

Produces the paper's released dataset: the ~1K v3-labeled gold pool and
the 400-question x 3-data-model benchmark (1,200 NL/SQL pairs), written
as JSON, plus the Table 3 query-characteristics summary and the Table 8
comparison against published benchmarks.

Run:  python examples/benchmark_export.py [output.json]
"""

import sys

from repro.benchmark import build_benchmark
from repro.benchmark.compare import table8
from repro.evaluation import render_table
from repro.footballdb import VERSIONS, build_universe, load_all


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "footballdb_benchmark.json"
    universe = build_universe(seed=2022)
    football = load_all(universe=universe)
    dataset = build_benchmark(universe)

    # -- export -------------------------------------------------------------
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(dataset.to_json())
    print(f"wrote {output_path}: {len(dataset.pool_examples)} pool + "
          f"{len(dataset.examples)} sampled questions "
          f"({len(dataset.examples) * len(VERSIONS)} NL/SQL pairs)")

    # -- Table 3 ---------------------------------------------------------------
    table3 = dataset.table3()
    for split in ("train", "test"):
        rows = []
        for metric in ("joins", "projections", "filters", "aggregations",
                       "set_operations", "subqueries", "hardness", "length"):
            rows.append([metric] + [
                round(table3[split][version][metric], 2) for version in VERSIONS
            ])
        print(render_table(
            ["metric", "v1", "v2", "v3"],
            rows,
            title=f"\nTable 3 — query characteristics ({split} set)",
        ))

    # -- Table 8 -------------------------------------------------------------------
    rows = [row.cells() for row in table8(football, dataset)]
    print(render_table(
        ["Dataset", "#Examples (#DBs)", "#Tables (#Rows)/DB",
         "#Tokens/Query", "Multi-Schema", "Live Users"],
        rows,
        title="\nTable 8 — comparison with existing Text-to-SQL datasets",
    ))


if __name__ == "__main__":
    main()
