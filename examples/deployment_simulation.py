#!/usr/bin/env python
"""Replay the nine-month World Cup deployment (paper Sections 3-4).

Simulates the ~5.9K-interaction user log, prints the Table 1 statistics,
then drives the *live* service stack (Figure 2: web back-end -> system
-> database) with a few real questions, including the feedback and
expert-correction routes, and feeds everything into the labeling
pipeline.

Run:  python examples/deployment_simulation.py
"""

from repro.benchmark import build_benchmark
from repro.deployment import LabelingPipeline, TextToSQLService, WebBackend
from repro.evaluation import render_table
from repro.footballdb import build_universe, load_all
from repro.systems import GoldOracle, ValueNet
from repro.workload import DeploymentSimulator, summarize


def main() -> None:
    universe = build_universe(seed=2022)

    # -- the historical log (Table 1) -----------------------------------
    print("Simulating the live deployment (5,900 interactions)...")
    records = DeploymentSimulator(universe, seed=2022).run(5_900)
    stats = summarize(records)
    print(render_table(
        ["Type of User Log", "Amount of Logs"],
        stats.rows(),
        title="\nTable 1 — statistics of live user logs",
    ))
    print(f"SQL generation rate: {stats.generation_rate:.1%} (paper: 89%)\n")

    # -- the live service stack (Figure 2) -----------------------------------
    football = load_all(universe=universe)
    dataset = build_benchmark(universe)
    database = football["v1"]  # the deployment ran on the initial model
    system = ValueNet(database, GoldOracle(dataset.gold_lookup("v1")))
    system.fine_tune(dataset.train_pairs("v1"))
    backend = WebBackend(TextToSQLService(system, database))

    print("Driving the web back-end:")
    for question in [
        "Who won the world cup in 2014?",
        "What was the score between Germany and Brazil in 2014?",
        "How many times did England win the world cup?",
    ]:
        response = backend.ask(question)
        verdict = "ok" if response["error"] is None else response["error"]
        print(f"  [{verdict}] {question}")
        if response["sql"]:
            print(f"        -> {response['sql'][:90]}...")
            if response["rows"]:
                print(f"        rows: {response['rows'][:3]}")
    # Expert feedback on the last answer.
    backend.feedback(1, thumbs_up=True)
    backend.correct(2, dataset.test_examples[0].gold["v1"])
    print(f"\nbackend log: {backend.statistics().rows()}")

    # -- the labeling pipeline (Challenge 4) ------------------------------------
    pipeline = LabelingPipeline()
    harvested = pipeline.ingest_feedback(records[:2_000])
    print(f"\nharvested from live feedback: {harvested}")
    questions = [r.question for r in records[:300] if r.intent is not None][:50]
    produced, manual = pipeline.label_batch(
        questions, manual_labeler=lambda q, s: "SELECT 1"
    )
    print(
        f"labeled {len(produced)} questions with only {manual} manual "
        f"annotations (auto-label threshold 0.96)"
    )


if __name__ == "__main__":
    main()
