#!/usr/bin/env python
"""Mini data-model robustness study (the paper's RQ1 in one script).

Evaluates two systems that bracket the paper's finding — ValueNet
(small LM, IR pipeline: *sensitive* to the data model) and GPT-3.5
(large LM: *robust* to it) — on the same 100 test questions under all
three data models, and shows where ValueNet's predictions die.

Run:  python examples/data_model_study.py
"""

from repro.benchmark import build_benchmark
from repro.evaluation import Harness, format_percent, render_table
from repro.footballdb import VERSIONS, build_universe, load_all, table2
from repro.systems import GPT35, ValueNet


def main() -> None:
    universe = build_universe(seed=2022)
    football = load_all(universe=universe)
    dataset = build_benchmark(universe)
    harness = Harness(football, dataset)

    # -- the three data models (Table 2) ---------------------------------
    stats = table2(football.databases)
    print(render_table(
        ["", "DB v1", "DB v2", "DB v3"],
        [
            ["#Tables"] + [stats[v].tables for v in VERSIONS],
            ["#Columns"] + [stats[v].columns for v in VERSIONS],
            ["#Rows"] + [stats[v].rows for v in VERSIONS],
            ["#FKs"] + [stats[v].foreign_keys for v in VERSIONS],
        ],
        title="Table 2 — data model characteristics",
    ))

    # -- data-model sensitivity -----------------------------------------------
    print("\nEvaluating ValueNet (300 train samples) and GPT-3.5 (30 shots)...")
    rows = []
    for version in VERSIONS:
        valuenet = harness.evaluate(ValueNet, version, train_size=300)
        gpt = harness.evaluate(GPT35, version, shots=30, fold=0)
        rows.append([
            version,
            format_percent(valuenet.accuracy),
            format_percent(valuenet.generation_rate),
            str(valuenet.failure_counts()),
            format_percent(gpt.accuracy),
        ])
    print(render_table(
        ["model", "ValueNet EX", "ValueNet gen.", "ValueNet failures", "GPT-3.5 EX"],
        rows,
        title="\nData model robustness (RQ1/RQ2)",
    ))
    print(
        "\nReading: ValueNet's pipeline failures (ambiguous FK edges, IR"
        "\nlimits) vanish as the data model is optimized v1 -> v3, while"
        "\nGPT-3.5 barely moves — the paper's headline result."
    )


if __name__ == "__main__":
    main()
