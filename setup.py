"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (which must build a wheel) fail.  Keeping a setup.py lets
``pip install -e . --no-build-isolation`` use the classic
``setup.py develop`` path, which needs nothing beyond setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Evaluating the Data Model Robustness of "
        "Text-to-SQL Systems Based on Real User Queries' (EDBT 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
