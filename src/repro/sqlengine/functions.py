"""Scalar and aggregate function implementations.

The registry is intentionally small: everything the FootballDB gold
queries (and the corruption operators) can produce, nothing more.  SQL
semantics that matter for the EX metric — NULL-skipping aggregates,
``COUNT(*)`` vs ``COUNT(expr)``, ``COUNT(DISTINCT …)`` — are implemented
faithfully.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from .errors import ExecutionError, TypeMismatchError


# -- scalar functions --------------------------------------------------------


def _scalar_upper(args: Sequence[Any]) -> Any:
    value = _single(args, "upper")
    return None if value is None else str(value).upper()


def _scalar_lower(args: Sequence[Any]) -> Any:
    value = _single(args, "lower")
    return None if value is None else str(value).lower()


def _scalar_length(args: Sequence[Any]) -> Any:
    value = _single(args, "length")
    return None if value is None else len(str(value))


def _scalar_abs(args: Sequence[Any]) -> Any:
    value = _single(args, "abs")
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeMismatchError("abs() expects a number")
    return abs(value)


def _scalar_round(args: Sequence[Any]) -> Any:
    if not args or len(args) > 2:
        raise ExecutionError("round() expects 1 or 2 arguments")
    value = args[0]
    if value is None:
        return None
    digits = args[1] if len(args) == 2 else 0
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeMismatchError("round() expects a number")
    result = round(float(value), int(digits))
    return result if digits else int(result)


def _scalar_coalesce(args: Sequence[Any]) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _scalar_cast(args: Sequence[Any]) -> Any:
    if len(args) != 2:
        raise ExecutionError("cast() expects (value, type)")
    value, type_name = args
    if value is None:
        return None
    name = str(type_name).lower()
    try:
        if name in ("int", "integer", "bigint"):
            return int(float(value))
        if name in ("real", "float", "double", "numeric", "decimal"):
            return float(value)
        if name in ("text", "varchar", "char", "string"):
            if isinstance(value, bool):
                return "true" if value else "false"
            return str(value)
        if name in ("bool", "boolean"):
            if isinstance(value, str):
                return value.strip().lower() == "true"
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(f"cannot cast {value!r} to {name}") from exc
    raise ExecutionError(f"unknown cast target type {name!r}")


def _single(args: Sequence[Any], name: str) -> Any:
    if len(args) != 1:
        raise ExecutionError(f"{name}() expects exactly one argument")
    return args[0]


SCALAR_FUNCTIONS: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "upper": _scalar_upper,
    "lower": _scalar_lower,
    "length": _scalar_length,
    "abs": _scalar_abs,
    "round": _scalar_round,
    "coalesce": _scalar_coalesce,
    "cast": _scalar_cast,
}


# -- aggregate functions -----------------------------------------------------


def aggregate_count(values: List[Any], distinct: bool, star: bool) -> int:
    if star:
        return len(values)
    non_null = [value for value in values if value is not None]
    if distinct:
        return len(_distinct(non_null))
    return len(non_null)


def aggregate_sum(values: List[Any], distinct: bool) -> Optional[float]:
    numbers = _numbers(values, "sum", distinct)
    if not numbers:
        return None
    total = sum(numbers)
    return total


def aggregate_avg(values: List[Any], distinct: bool) -> Optional[float]:
    numbers = _numbers(values, "avg", distinct)
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def aggregate_min(values: List[Any], distinct: bool) -> Any:
    non_null = [value for value in values if value is not None]
    if not non_null:
        return None
    return min(non_null, key=_orderable)


def aggregate_max(values: List[Any], distinct: bool) -> Any:
    non_null = [value for value in values if value is not None]
    if not non_null:
        return None
    return max(non_null, key=_orderable)


def _numbers(values: List[Any], name: str, distinct: bool) -> List[float]:
    non_null = [value for value in values if value is not None]
    if distinct:
        non_null = _distinct(non_null)
    for value in non_null:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeMismatchError(f"{name}() expects numbers, got {value!r}")
    return non_null


def _distinct(values: List[Any]) -> List[Any]:
    seen = set()
    unique: List[Any] = []
    for value in values:
        key = (type(value).__name__, value)
        if key not in seen:
            seen.add(key)
            unique.append(value)
    return unique


def _orderable(value: Any):
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))
