"""Catalog objects: columns, tables, foreign keys and whole schemas.

The catalog is the engine's source of truth for name resolution and is
also the *input* that Text-to-SQL systems serialize into their model
prompts (with or without PK/FK information — the paper's T5-Picard vs
T5-Picard_Keys distinction lives entirely in how this catalog is
rendered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .errors import CatalogError
from .values import SqlType


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    sql_type: SqlType
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A directed FK edge ``table.column -> ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def as_edge(self) -> Tuple[str, str]:
        return (self.table, self.ref_table)

    def describe(self) -> str:
        return f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"


class Table:
    """A table definition: ordered columns plus a PK subset."""

    def __init__(self, name: str, columns: Iterable[Column]) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name {name!r}")
        self.name = name
        self.columns: List[Column] = list(columns)
        if not self.columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        self._index: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._index:
                raise CatalogError(f"duplicate column {column.name!r} in {name!r}")
            self._index[key] = position

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key_columns(self) -> List[str]:
        return [column.name for column in self.columns if column.primary_key]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column_position(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(f"no column {name!r} in table {self.name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_position(name)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, {len(self.columns)} columns)"


class Schema:
    """A complete database schema: tables plus foreign keys.

    This is the object the paper's Table 2 summarizes (number of tables,
    columns, FKs) and the object every Text-to-SQL system receives.
    """

    def __init__(self, name: str, version: str = "") -> None:
        self.name = name
        self.version = version
        self._tables: Dict[str, Table] = {}
        self.foreign_keys: List[ForeignKey] = []

    # -- construction -----------------------------------------------------
    def add_table(self, table: Table) -> Table:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        return table

    def create_table(self, name: str, columns: Iterable[Column]) -> Table:
        return self.add_table(Table(name, columns))

    def add_foreign_key(
        self, table: str, column: str, ref_table: str, ref_column: str
    ) -> ForeignKey:
        source = self.table(table)
        target = self.table(ref_table)
        if not source.has_column(column):
            raise CatalogError(f"FK source column {table}.{column} does not exist")
        if not target.has_column(ref_column):
            raise CatalogError(f"FK target column {ref_table}.{ref_column} does not exist")
        fk = ForeignKey(source.name, source.column(column).name,
                        target.name, target.column(ref_column).name)
        self.foreign_keys.append(fk)
        return fk

    # -- lookup -----------------------------------------------------------
    @property
    def tables(self) -> List[Table]:
        return list(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        return [table.name for table in self._tables.values()]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def foreign_keys_between(self, table_a: str, table_b: str) -> List[ForeignKey]:
        """All FK edges connecting two tables, in either direction.

        The *count* of these edges is what breaks SemQL-style join-path
        inference: data model v1 has two edges between ``match`` and
        ``national_team`` (home and away), so a shortest-path algorithm
        that assumes a single edge picks one arbitrarily.
        """
        a, b = table_a.lower(), table_b.lower()
        return [
            fk
            for fk in self.foreign_keys
            if {fk.table.lower(), fk.ref_table.lower()} == {a, b}
            or (a == b and fk.table.lower() == a and fk.ref_table.lower() == a)
        ]

    # -- statistics (Table 2 inputs) ---------------------------------------
    @property
    def column_count(self) -> int:
        return sum(len(table.columns) for table in self.tables)

    @property
    def foreign_key_count(self) -> int:
        return len(self.foreign_keys)

    def describe(self) -> str:
        """Human-readable one-table-per-line rendering (README/debug)."""
        lines = [f"schema {self.name} ({self.version or 'unversioned'})"]
        for table in self.tables:
            columns = ", ".join(
                f"{column.name}{'*' if column.primary_key else ''}"
                for column in table.columns
            )
            lines.append(f"  {table.name}({columns})")
        for fk in self.foreign_keys:
            lines.append(f"  FK {fk.describe()}")
        return "\n".join(lines)
