"""Row storage with primary-key and foreign-key enforcement.

Rows are plain tuples in table-column order.  The store maintains
per-column value sets lazily so that foreign-key checks during the bulk
FootballDB load stay O(1) per row.

Concurrency contract: mutations (:meth:`Storage.insert` /
:meth:`Storage.insert_many`) serialize under one storage-wide mutation
lock, and ``insert_many`` holds it for the whole batch — so observers
that also take the lock (:meth:`Storage.snapshot`, the continuous
ingestion scenario's epoch pinning) see either none or all of a batch,
never a torn prefix.  Readers that bypass the lock (the executors) are
only safe against a *quiescent* store; concurrent evaluation against a
mutating database must go through :meth:`Storage.snapshot`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .catalog import Schema, Table
from .errors import CatalogError, ConstraintError
from .values import coerce, normalize_for_comparison, sort_key


class TableData:
    """The rows of one table."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.rows: List[tuple] = []
        # Monotonic mutation counter: bumped by insert *and* rollback,
        # so any change to the row set changes the version.  The
        # optimizer's statistics cache and the service's response cache
        # key their freshness checks on it (via Storage.data_epoch).
        self.version = 0
        self._pk_positions = [
            table.column_position(name) for name in table.primary_key_columns
        ]
        self._pk_seen: Set[tuple] = set()
        # column position -> set of values, built on demand
        self._value_sets: Dict[int, Set[Any]] = {}
        # key-column positions -> {normalized key: rows}, built on demand
        self._join_indexes: Dict[Tuple[int, ...], Dict[tuple, List[tuple]]] = {}
        # column position -> (version, sort keys, row positions); unlike
        # the incrementally-maintained join indexes, sorted indexes are
        # version-stamped and rebuilt wholesale — rollback_last shifts
        # the position space, so incremental maintenance is unsafe
        self._sorted_indexes: Dict[int, Tuple[int, list, list]] = {}
        #: observability: full sorted-index (re)builds, for staleness tests
        self.sorted_index_builds = 0
        # serializes cold index builds when grid workers share a table
        self._index_lock = threading.Lock()

    def insert(self, row: Sequence[Any]) -> tuple:
        if len(row) != len(self.table.columns):
            raise ConstraintError(
                f"table {self.table.name!r} expects {len(self.table.columns)} "
                f"values, got {len(row)}"
            )
        typed = tuple(
            coerce(value, column.sql_type)
            for value, column in zip(row, self.table.columns)
        )
        if self._pk_positions:
            key = tuple(typed[position] for position in self._pk_positions)
            if any(part is None for part in key):
                raise ConstraintError(
                    f"NULL in primary key of table {self.table.name!r}"
                )
            if key in self._pk_seen:
                raise ConstraintError(
                    f"duplicate primary key {key!r} in table {self.table.name!r}"
                )
            self._pk_seen.add(key)
        self.rows.append(typed)
        self.version += 1
        for position, values in self._value_sets.items():
            values.add(typed[position])
        for positions, index in self._join_indexes.items():
            key = self._join_key(typed, positions)
            if key is not None:
                index.setdefault(key, []).append(typed)
        return typed

    def rollback_last(self) -> tuple:
        """Undo the most recent :meth:`insert` (FK-violation recovery).

        Removes the row from the cached join indexes and the PK set;
        value sets are rebuilt lazily because set membership cannot
        tell whether an earlier row contributed the same value.
        """
        typed = self.rows.pop()
        self.version += 1
        if self._pk_positions:
            self._pk_seen.discard(
                tuple(typed[position] for position in self._pk_positions)
            )
        self._value_sets.clear()
        for positions, index in self._join_indexes.items():
            key = self._join_key(typed, positions)
            if key is not None:
                bucket = index.get(key)
                if bucket:
                    bucket.pop()
                    if not bucket:
                        del index[key]
        return typed

    @staticmethod
    def _join_key(row: tuple, positions: Tuple[int, ...]) -> Optional[tuple]:
        key = tuple(normalize_for_comparison(row[p]) for p in positions)
        if any(part is None for part in key):
            return None  # NULLs never match an equi-join
        return key

    def join_index(self, positions: Tuple[int, ...]) -> Dict[tuple, List[tuple]]:
        """Memoized hash-join index over ``positions`` (normalized keys).

        Built once per key-column combination and maintained
        incrementally by :meth:`insert`, so the executor's repeated
        equi-joins skip the O(rows) build after the first execution.
        Double-checked locking keeps concurrent cold-start workers from
        each paying the O(rows) build.
        """
        index = self._join_indexes.get(positions)
        if index is None:
            with self._index_lock:
                index = self._join_indexes.get(positions)
                if index is None:
                    index = {}
                    for row in self.rows:
                        key = self._join_key(row, positions)
                        if key is not None:
                            index.setdefault(key, []).append(row)
                    self._join_indexes[positions] = index
        return index

    def hash_index(self, position: int) -> Dict[tuple, List[tuple]]:
        """Secondary hash index on one column: ``{(normalized value,):
        rows}``.  A view over :meth:`join_index`, so it shares the
        incremental maintenance (always fresh) and each bucket keeps
        rows in insertion order — an equality index scan therefore
        yields candidates in original row order.
        """
        return self.join_index((position,))

    def sorted_index(self, position: int) -> Tuple[list, list]:
        """Secondary sorted index on one column for range scans.

        Returns ``(keys, positions)`` — parallel lists sorted by
        :func:`~repro.sqlengine.values.sort_key` over the column's
        non-NULL values (NULL never satisfies a range predicate, so
        NULL rows are never candidates).  The entry is stamped with
        :attr:`version` and rebuilt from scratch whenever the row set
        has changed since, so a stale index is never consulted.
        """
        entry = self._sorted_indexes.get(position)
        if entry is not None and entry[0] == self.version:
            return entry[1], entry[2]
        with self._index_lock:
            entry = self._sorted_indexes.get(position)
            if entry is not None and entry[0] == self.version:
                return entry[1], entry[2]
            pairs = sorted(
                (sort_key(row[position]), index)
                for index, row in enumerate(self.rows)
                if row[position] is not None
            )
            keys = [pair[0] for pair in pairs]
            positions = [pair[1] for pair in pairs]
            self.sorted_index_builds += 1
            self._sorted_indexes[position] = (self.version, keys, positions)
        return keys, positions

    def column_values(self, column: str) -> Set[Any]:
        """The set of values present in ``column`` (cached)."""
        position = self.table.column_position(column)
        if position not in self._value_sets:
            self._value_sets[position] = {row[position] for row in self.rows}
        return self._value_sets[position]

    def __len__(self) -> int:
        return len(self.rows)


class Storage:
    """All table data for one schema instance."""

    def __init__(self, schema: Schema, enforce_foreign_keys: bool = True) -> None:
        self.schema = schema
        self.enforce_foreign_keys = enforce_foreign_keys
        # Serializes mutations and snapshot capture.  RLock: insert_many
        # holds it across the batch while insert re-acquires per row.
        self._mutation_lock = threading.RLock()
        self._tables: Dict[str, TableData] = {
            table.name.lower(): TableData(table) for table in schema.tables
        }
        # FK lookup: source table -> list of (source position, target data, target column)
        self._fk_checks: Dict[str, List[tuple]] = {}
        for fk in schema.foreign_keys:
            source = schema.table(fk.table)
            entry = (
                source.column_position(fk.column),
                fk.ref_table.lower(),
                fk.ref_column,
            )
            self._fk_checks.setdefault(fk.table.lower(), []).append(entry)

    def data(self, table_name: str) -> TableData:
        try:
            return self._tables[table_name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {table_name!r}") from None

    def insert(self, table_name: str, row: Sequence[Any]) -> tuple:
        with self._mutation_lock:
            data = self.data(table_name)
            typed = data.insert(row)
            if self.enforce_foreign_keys:
                for position, ref_table, ref_column in self._fk_checks.get(
                    table_name.lower(), ()
                ):
                    value = typed[position]
                    if value is None:
                        continue
                    if value not in self._tables[ref_table].column_values(ref_column):
                        data.rollback_last()
                        raise ConstraintError(
                            f"FK violation: {table_name}.{data.table.columns[position].name}"
                            f"={value!r} not present in {ref_table}.{ref_column}"
                        )
            return typed

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Insert a batch atomically with respect to :meth:`snapshot`.

        The mutation lock is held across the whole batch, so a
        concurrent snapshot (and therefore every epoch-pinned reader)
        observes either none or all of these rows — the ingestion
        drivers rely on this to keep ``data_epoch`` jumps whole-batch
        sized, never torn.
        """
        with self._mutation_lock:
            count = 0
            for row in rows:
                self.insert(table_name, row)
                count += 1
            return count

    def row_count(self, table_name: Optional[str] = None) -> int:
        if table_name is not None:
            return len(self.data(table_name))
        return sum(len(data) for data in self._tables.values())

    def data_epoch(self) -> int:
        """Monotonic counter over all mutations in this storage.

        The sum of per-table versions: every insert or rollback bumps
        exactly one table's version, so the epoch changes iff any row
        set changed.  Cached table statistics and cached optimized
        plans carry the epoch they were computed under and are
        invalidated when it moves.
        """
        return sum(data.version for data in self._tables.values())

    def snapshot(self) -> "Storage":
        """A consistent point-in-time copy of every table's rows.

        Captured under the mutation lock, so the copy reflects one
        single ``data_epoch`` — a batch in flight on another thread is
        either fully visible or not at all (``insert_many`` holds the
        same lock for its whole batch).  Row tuples are immutable and
        shared by reference; only the per-table row *lists* (and the
        PK sets, so the snapshot stays insertable) are copied.  All
        lazily-built caches (value sets, join/sorted indexes) start
        cold — they rebuild on demand against the frozen row set.
        """
        with self._mutation_lock:
            clone = Storage(
                self.schema, enforce_foreign_keys=self.enforce_foreign_keys
            )
            for name, data in self._tables.items():
                copy = clone._tables[name]
                copy.rows = list(data.rows)
                copy.version = data.version
                copy._pk_seen = set(data._pk_seen)
            return clone
