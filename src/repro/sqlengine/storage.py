"""Row storage with primary-key and foreign-key enforcement.

Rows are plain tuples in table-column order.  The store maintains
per-column value sets lazily so that foreign-key checks during the bulk
FootballDB load stay O(1) per row.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .catalog import Schema, Table
from .errors import CatalogError, ConstraintError
from .values import coerce


class TableData:
    """The rows of one table."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.rows: List[tuple] = []
        self._pk_positions = [
            table.column_position(name) for name in table.primary_key_columns
        ]
        self._pk_seen: Set[tuple] = set()
        # column position -> set of values, built on demand
        self._value_sets: Dict[int, Set[Any]] = {}

    def insert(self, row: Sequence[Any]) -> tuple:
        if len(row) != len(self.table.columns):
            raise ConstraintError(
                f"table {self.table.name!r} expects {len(self.table.columns)} "
                f"values, got {len(row)}"
            )
        typed = tuple(
            coerce(value, column.sql_type)
            for value, column in zip(row, self.table.columns)
        )
        if self._pk_positions:
            key = tuple(typed[position] for position in self._pk_positions)
            if any(part is None for part in key):
                raise ConstraintError(
                    f"NULL in primary key of table {self.table.name!r}"
                )
            if key in self._pk_seen:
                raise ConstraintError(
                    f"duplicate primary key {key!r} in table {self.table.name!r}"
                )
            self._pk_seen.add(key)
        self.rows.append(typed)
        for position, values in self._value_sets.items():
            values.add(typed[position])
        return typed

    def column_values(self, column: str) -> Set[Any]:
        """The set of values present in ``column`` (cached)."""
        position = self.table.column_position(column)
        if position not in self._value_sets:
            self._value_sets[position] = {row[position] for row in self.rows}
        return self._value_sets[position]

    def __len__(self) -> int:
        return len(self.rows)


class Storage:
    """All table data for one schema instance."""

    def __init__(self, schema: Schema, enforce_foreign_keys: bool = True) -> None:
        self.schema = schema
        self.enforce_foreign_keys = enforce_foreign_keys
        self._tables: Dict[str, TableData] = {
            table.name.lower(): TableData(table) for table in schema.tables
        }
        # FK lookup: source table -> list of (source position, target data, target column)
        self._fk_checks: Dict[str, List[tuple]] = {}
        for fk in schema.foreign_keys:
            source = schema.table(fk.table)
            entry = (
                source.column_position(fk.column),
                fk.ref_table.lower(),
                fk.ref_column,
            )
            self._fk_checks.setdefault(fk.table.lower(), []).append(entry)

    def data(self, table_name: str) -> TableData:
        try:
            return self._tables[table_name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {table_name!r}") from None

    def insert(self, table_name: str, row: Sequence[Any]) -> tuple:
        data = self.data(table_name)
        typed = data.insert(row)
        if self.enforce_foreign_keys:
            for position, ref_table, ref_column in self._fk_checks.get(
                table_name.lower(), ()
            ):
                value = typed[position]
                if value is None:
                    continue
                if value not in self._tables[ref_table].column_values(ref_column):
                    data.rows.pop()
                    raise ConstraintError(
                        f"FK violation: {table_name}.{data.table.columns[position].name}"
                        f"={value!r} not present in {ref_table}.{ref_column}"
                    )
        return typed

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    def row_count(self, table_name: Optional[str] = None) -> int:
        if table_name is not None:
            return len(self.data(table_name))
        return sum(len(data) for data in self._tables.values())
