"""Error taxonomy for the in-memory SQL engine.

The engine distinguishes *where* a statement failed because the
evaluation harness treats the stages differently: a parse failure means
the predicted SQL was not even valid SQL (PICARD-style systems should
never produce these), while an execution failure means the SQL was
well-formed but referenced unknown tables/columns or mis-typed values.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for every error raised by :mod:`repro.sqlengine`."""


class TokenizeError(EngineError):
    """Raised when the lexer encounters a character it cannot consume."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(EngineError):
    """Raised when a token stream is not a valid SQL statement."""

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" (at token {position})" if position >= 0 else ""
        super().__init__(f"{message}{suffix}")
        self.position = position


class CatalogError(EngineError):
    """Raised for unknown tables/columns or ambiguous references."""


class ConstraintError(EngineError):
    """Raised when an insert violates a primary- or foreign-key constraint."""


class ExecutionError(EngineError):
    """Raised when a well-formed query cannot be evaluated."""


class TypeMismatchError(ExecutionError):
    """Raised when an operator is applied to incompatible runtime values."""
