"""Query-plan cache: (schema scope, normalized SQL text) -> plan.

The evaluation harness executes the same gold/predicted SQL strings
thousands of times across systems, train sizes and folds, and the
deployed service sees heavy repetition in real user traffic.  Caching
keyed on a whitespace-normalized form of the SQL text lets every
repeat skip tokenize+parse — and, since the optimizer landed, the
whole planning pass: ``Database`` stores
:class:`~repro.sqlengine.optimizer.planner.PhysicalPlan` entries that
bundle the optimized tree, the raw parsed AST (for ``optimize=False``
calls) and the statistics epoch they were planned under (stale-epoch
hits re-plan from the embedded AST; see ``Database._plan_for``).

Two layers cooperate:

* :class:`PlanCache` (here) — an LRU of parsed ASTs owned by each
  :class:`~repro.sqlengine.database.Database`;
* ``TableData.join_index`` (:mod:`repro.sqlengine.storage`) — memoized
  hash-join key indexes, maintained incrementally on insert, so
  repeated equi-joins skip the O(rows) build as well.

Normalization mirrors the tokenizer exactly: whitespace and ``--``
line comments outside quoted regions collapse to a single separator,
quoted regions (``'...'`` literals and ``"..."`` identifiers) are
preserved byte for byte, and one trailing semicolon is dropped (the
parser accepts at most one).  These are precisely the variations that
cannot change the token stream, so two queries sharing a cache key
always parse to the same AST.  ASTs are never mutated by the
executor, so one cached plan can be executed concurrently by many
threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

DEFAULT_PLAN_CACHE_SIZE = 256


def normalize_sql(sql: str) -> str:
    """Canonical cache key for ``sql``.

    Follows the tokenizer's lexical rules: whitespace runs and ``--``
    comments (to end of line) outside quoted regions become one
    separator, ``'...'`` string literals and ``"..."`` quoted
    identifiers are copied byte for byte (so ``'a  b'`` and ``'a b'``
    never collide), and one trailing semicolon is dropped.  A comment
    without a terminating newline swallows the rest of the statement,
    exactly as the tokenizer does.
    """
    out = []
    pending_space = False
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            pending_space = True
            index += 1
            continue
        if char == "-" and sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline < 0 else newline + 1
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        if char in ("'", '"'):
            end = index + 1
            while end < length and sql[end] != char:
                end += 1
            end = min(end + 1, length)  # include the closing quote
            out.append(sql[index:end])
            index = end
            continue
        out.append(char)
        index += 1
    text = "".join(out)
    if text.endswith(";"):
        text = text[:-1].rstrip()
    return text


class LRUCache:
    """Thread-safe bounded LRU mapping with hit/miss/eviction counters.

    Generic substrate shared by the plan cache and the deployment
    response cache.  ``get`` on a missing key returns ``None`` (values
    are never ``None`` in practice — both users cache real objects).
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # Mutable holder (not plain attributes) so scoped views created by
        # :meth:`PlanCache.for_scope` share one set of counters.
        self._counters: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}

    @property
    def storage_token(self) -> int:
        """Identity of the underlying storage.

        ``for_scope`` views share entries, lock and counters with their
        parent; aggregators (``evaluation.engine_report``) use this
        token to count each physical cache exactly once.
        """
        return id(self._entries)

    @property
    def hits(self) -> int:
        return self._counters["hits"]

    @property
    def misses(self) -> int:
        return self._counters["misses"]

    @property
    def evictions(self) -> int:
        return self._counters["evictions"]

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._counters["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self._counters["hits"] += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._counters["evictions"] += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership probe that does not touch recency or counters."""
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            hits, misses = self._counters["hits"], self._counters["misses"]
            lookups = hits + misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": hits,
                "misses": misses,
                "evictions": self._counters["evictions"],
                "hit_rate": hits / lookups if lookups else 0.0,
            }


class PlanCache(LRUCache):
    """LRU of parsed query ASTs keyed on ``(scope, normalized SQL)``.

    ``scope`` identifies the schema the plans were parsed for —
    ``Database`` passes ``(schema.name, schema.version)``.  One
    ``PlanCache`` can therefore be shared by many databases (the schema
    morpher materializes dozens of variants of one base schema) without
    identical SQL text against two data-model versions ever colliding
    on a single cache entry.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_PLAN_CACHE_SIZE,
        scope: Tuple[Hashable, ...] = (),
    ) -> None:
        super().__init__(capacity)
        self.scope = tuple(scope)

    def for_scope(self, scope: Tuple[Hashable, ...]) -> "PlanCache":
        """A view over this cache's storage, keyed under ``scope``.

        The view shares entries, lock, capacity and counters with the
        original — it only changes how SQL text maps to keys.  This is
        how one cache is shared across a fleet of schema variants.
        """
        view = PlanCache.__new__(PlanCache)
        view.capacity = self.capacity
        view._entries = self._entries
        view._lock = self._lock
        view._counters = self._counters
        view.scope = tuple(scope)
        return view

    def plan_key(self, sql: str) -> Tuple[Hashable, ...]:
        return (*self.scope, normalize_sql(sql))

    def get_plan(self, sql: str) -> Optional[Any]:
        return self.get(self.plan_key(sql))

    def put_plan(self, sql: str, plan: Any) -> None:
        self.put(self.plan_key(sql), plan)
