"""SQL lexer.

Produces a flat list of :class:`Token` objects.  The tokenizer is shared
by the engine parser, the Spider-style analysis parser and the PICARD
incremental checker, so all three agree on what a "token" is — exactly
the property the original PICARD relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .errors import TokenizeError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select distinct from join inner left right full outer cross on where
    and or not in like ilike between is null group by having order asc
    desc limit offset union intersect except all as case when then else
    end exists true false cast
    """.split()
)

_OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    @property
    def upper(self) -> str:
        return self.value.upper()

    @property
    def lower(self) -> str:
        return self.value.lower()

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.lower in names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``, raising :class:`TokenizeError` on junk input."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char == "'":
            value, index = _string_literal(sql, index)
            yield Token(TokenType.STRING, value, index)
            continue
        if char == '"':
            end = sql.find('"', index + 1)
            if end < 0:
                raise TokenizeError("unterminated quoted identifier", index)
            yield Token(TokenType.IDENTIFIER, sql[index + 1 : end], index)
            index = end + 1
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and sql[index + 1].isdigit()
        ):
            start = index
            seen_dot = False
            while index < length and (sql[index].isdigit() or (sql[index] == "." and not seen_dot)):
                if sql[index] == ".":
                    # '1.' followed by a non-digit is "1" then punctuation.
                    if index + 1 >= length or not sql[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            yield Token(TokenType.NUMBER, sql[start:index], start)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (sql[index].isalnum() or sql[index] == "_"):
                index += 1
            word = sql[start:index]
            token_type = (
                TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENTIFIER
            )
            yield Token(token_type, word, start)
            continue
        matched_operator = next(
            (operator for operator in _OPERATORS if sql.startswith(operator, index)),
            None,
        )
        if matched_operator is not None:
            yield Token(TokenType.OPERATOR, matched_operator, index)
            index += len(matched_operator)
            continue
        if char in _PUNCTUATION:
            yield Token(TokenType.PUNCTUATION, char, index)
            index += 1
            continue
        raise TokenizeError(f"unexpected character {char!r}", index)
    yield Token(TokenType.EOF, "", length)


def _string_literal(sql: str, start: int) -> tuple[str, int]:
    """Consume a ``'...'`` literal with ``''`` escaping."""
    index = start + 1
    pieces: List[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            if sql.startswith("''", index):
                pieces.append("'")
                index += 2
                continue
            return "".join(pieces), index + 1
        pieces.append(char)
        index += 1
    raise TokenizeError("unterminated string literal", start)
