"""Vectorized columnar execution path for the SQL engine.

Modules:

* :mod:`.columns` — lazy, mutation-versioned column arrays and
  columnar join indexes over the row store;
* :mod:`.kernels` — whole-column primitives (filters, comparisons,
  arithmetic, LIKE/IN/BETWEEN, gathers) mirroring the row executor's
  value semantics element-wise;
* :mod:`.analysis` — the static gate deciding, per SELECT core,
  whether every expression is provably error-free and vectorizable;
* :mod:`.vectorized` — the batch-at-a-time executor with per-node
  fallback to the row executor.

Selected by ``Database(engine_mode=...)`` — see
docs/ARCHITECTURE.md § "Vectorized execution".
"""

from .analysis import VectorJoin, VectorSelectPlan, analyze_select
from .columns import ColumnStore
from .vectorized import VectorizedExecutor

__all__ = [
    "ColumnStore",
    "VectorJoin",
    "VectorSelectPlan",
    "VectorizedExecutor",
    "analyze_select",
]
