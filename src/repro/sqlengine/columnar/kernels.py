"""Batch kernels: whole-column primitives for the vectorized executor.

Each kernel consumes and produces plain Python sequences (one value
per batch position) and mirrors the row executor's evaluation helpers
*element-wise*: ``None`` is SQL NULL everywhere, boolean kernels
return three-valued ``True``/``False``/``None`` vectors, and every
fast path is guarded by the static type classes the analyzer proved —
when the classes say both sides of a comparison live in the same
class, the per-element ``sql_equal``/``sql_compare`` dispatch (and its
cross-type alignment) provably reduces to the native operator, which
is what makes the columnar path fast without changing a single
verdict.  Mixed or unknown classes fall back to the exact row-path
helpers per element.

Kernels never mutate their inputs: column arrays are shared,
version-checked views (see :mod:`.columns`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence

from ..errors import ExecutionError, TypeMismatchError
from ..values import (
    normalize_for_comparison,
    sort_key,
    sql_compare,
    sql_equal,
    sql_text,
)

Vector = List[Any]

#: classes whose values compare natively with ``==`` inside one class
_DIRECT_EQ_CLASSES = frozenset({"number", "text", "bool"})
#: classes whose values order natively with ``<`` inside one class
_DIRECT_CMP_CLASSES = frozenset({"number", "text"})


# -- gather / broadcast ------------------------------------------------------


def gather(column: Sequence[Any], positions: Sequence[Optional[int]], nullable: bool) -> Vector:
    """Take ``column`` values at ``positions``.

    ``nullable`` marks index vectors that may contain ``None`` entries
    (the NULL-extended rows a LEFT join emits); the non-nullable fast
    path is a C-speed ``map``.
    """
    if nullable:
        return [None if p is None else column[p] for p in positions]
    if (
        isinstance(positions, range)
        and positions.start == 0
        and positions.step == 1
        and len(positions) == len(column)
    ):
        return column  # identity scan: the (immutable) column is the view
    return list(map(column.__getitem__, positions))


def broadcast(value: Any, length: int) -> Vector:
    return [value] * length


def take(values: Sequence[Any], positions: Sequence[int]) -> Vector:
    """Select batch positions out of an already-evaluated vector."""
    return list(map(values.__getitem__, positions))


# -- boolean coercion and three-valued logic ---------------------------------


def bool3(values: Vector) -> Vector:
    """Element-wise mirror of ``Executor._eval_boolean``."""
    out: Vector = []
    append = out.append
    for value in values:
        if value is None or value is True or value is False:
            append(value)
        elif isinstance(value, (int, float)):
            append(value != 0)
        else:
            raise TypeMismatchError(f"expected boolean, got {value!r}")
    return out


def and_accumulate(accumulator: Vector, term: Vector) -> Vector:
    """Three-valued AND of two coerced vectors (order-insensitive
    because the analyzer proved no term can raise)."""
    return [
        False
        if left is False or right is False
        else (None if left is None or right is None else True)
        for left, right in zip(accumulator, term)
    ]


def or_accumulate(accumulator: Vector, term: Vector) -> Vector:
    return [
        True
        if left is True or right is True
        else (None if left is None or right is None else False)
        for left, right in zip(accumulator, term)
    ]


def not_kernel(values: Vector) -> Vector:
    """NOT over an already-coerced boolean vector."""
    return [None if value is None else not value for value in values]


def true_positions(values: Vector) -> List[int]:
    """Batch positions whose (coerced) truth value is exactly TRUE."""
    return [position for position, value in enumerate(bool3(values)) if value is True]


# -- comparisons -------------------------------------------------------------


def eq_kernel(
    left: Vector,
    right: Vector,
    left_class: Optional[str],
    right_class: Optional[str],
    negated: bool = False,
) -> Vector:
    """``=`` / ``<>`` with NULL-propagation.

    Same-class operands skip ``sql_equal``'s alignment entirely —
    within one type class alignment is the identity.
    """
    direct = (
        left_class == right_class and left_class in _DIRECT_EQ_CLASSES
    ) or "null" in (left_class, right_class)
    if direct:
        if negated:
            return [
                None if a is None or b is None else a != b
                for a, b in zip(left, right)
            ]
        return [
            None if a is None or b is None else a == b
            for a, b in zip(left, right)
        ]
    if negated:
        return [
            None if (verdict := sql_equal(a, b)) is None else not verdict
            for a, b in zip(left, right)
        ]
    return [sql_equal(a, b) for a, b in zip(left, right)]


_CMP_OPS: dict = {
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def compare_kernel(
    op: str,
    left: Vector,
    right: Vector,
    left_class: Optional[str],
    right_class: Optional[str],
) -> Vector:
    """``<``/``<=``/``>``/``>=`` with NULL-propagation."""
    direct = (
        left_class == right_class and left_class in _DIRECT_CMP_CLASSES
    )
    if direct:
        if op == "<":
            return [None if a is None or b is None else a < b for a, b in zip(left, right)]
        if op == "<=":
            return [None if a is None or b is None else a <= b for a, b in zip(left, right)]
        if op == ">":
            return [None if a is None or b is None else a > b for a, b in zip(left, right)]
        return [None if a is None or b is None else a >= b for a, b in zip(left, right)]
    verdict = _CMP_OPS[op]
    return [
        None if (c := sql_compare(a, b)) is None else verdict(c)
        for a, b in zip(left, right)
    ]


def between_kernel(
    values: Vector, lows: Vector, highs: Vector, negated: bool,
    direct: bool,
) -> Vector:
    """Mirror of ``Executor._eval_between`` (three-valued)."""
    out: Vector = []
    append = out.append
    if direct:
        for value, low, high in zip(values, lows, highs):
            if value is None or low is None or high is None:
                append(None)
            else:
                inside = low <= value <= high
                append(not inside if negated else inside)
        return out
    for value, low, high in zip(values, lows, highs):
        lower = sql_compare(value, low)
        upper = sql_compare(value, high)
        if lower is None or upper is None:
            append(None)
        else:
            inside = lower >= 0 and upper <= 0
            append(not inside if negated else inside)
    return out


def is_null_kernel(values: Vector, negated: bool) -> Vector:
    if negated:
        return [value is not None for value in values]
    return [value is None for value in values]


def in_kernel(
    values: Vector, option_vectors: List[Vector], negated: bool
) -> Vector:
    """Mirror of ``Executor._eval_in`` for literal option lists."""
    out: Vector = []
    append = out.append
    for position, value in enumerate(values):
        saw_unknown = False
        verdict: Optional[bool] = None
        for options in option_vectors:
            equal = sql_equal(value, options[position])
            if equal is True:
                verdict = True
                break
            if equal is None:
                saw_unknown = True
        if verdict is True:
            append(False if negated else True)
        elif saw_unknown:
            append(None)
        else:
            append(True if negated else False)
    return out


def in_set_kernel(values: Vector, members: frozenset, negated: bool) -> Vector:
    """Same-class fast path: non-NULL literal options, set membership."""
    if negated:
        return [None if v is None else v not in members for v in values]
    return [None if v is None else v in members for v in values]


def like_const_kernel(
    values: Vector,
    pattern: Any,
    regex_for: Callable,
    case_insensitive: bool,
    negated: bool,
) -> Vector:
    """LIKE against a literal pattern: one compile, one C-level loop."""
    if pattern is None:
        return [None] * len(values)
    fullmatch = regex_for(str(pattern), case_insensitive).fullmatch
    out: Vector = []
    append = out.append
    for value in values:
        if value is None:
            append(None)
        else:
            matched = fullmatch(str(value)) is not None
            append(not matched if negated else matched)
    return out


def like_kernel(
    values: Vector,
    patterns: Vector,
    regex_for: Callable,
    case_insensitive: bool,
    negated: bool,
) -> Vector:
    """Mirror of ``Executor._eval_like`` for per-row patterns."""
    out: Vector = []
    append = out.append
    for value, pattern in zip(values, patterns):
        if value is None or pattern is None:
            append(None)
        else:
            matched = (
                regex_for(str(pattern), case_insensitive).fullmatch(str(value))
                is not None
            )
            append(not matched if negated else matched)
    return out


# -- arithmetic and text -----------------------------------------------------


def arithmetic_kernel(op: str, left: Vector, right: Vector) -> Vector:
    """``+``/``-``/``*``/``/``/``%`` over provably numeric vectors.

    Division/modulo keep the executor's zero checks as a defence in
    depth, though the analyzer only admits non-zero literal divisors.
    """
    if op == "+":
        return [None if a is None or b is None else a + b for a, b in zip(left, right)]
    if op == "-":
        return [None if a is None or b is None else a - b for a, b in zip(left, right)]
    if op == "*":
        return [None if a is None or b is None else a * b for a, b in zip(left, right)]
    if op == "/":
        out: Vector = []
        for a, b in zip(left, right):
            if a is None or b is None:
                out.append(None)
            elif b == 0:
                raise ExecutionError("division by zero")
            else:
                out.append(a / b)
        return out
    if op == "%":
        out = []
        for a, b in zip(left, right):
            if a is None or b is None:
                out.append(None)
            elif b == 0:
                raise ExecutionError("modulo by zero")
            else:
                out.append(a % b)
        return out
    raise ExecutionError(f"unknown operator {op!r}")


def concat_kernel(left: Vector, right: Vector) -> Vector:
    return [
        None if a is None or b is None else sql_text(a) + sql_text(b)
        for a, b in zip(left, right)
    ]


def negate_kernel(values: Vector) -> Vector:
    return [None if value is None else -value for value in values]


def scalar_function_kernel(
    handler: Callable[[Sequence[Any]], Any], arg_vectors: List[Vector], length: int
) -> Vector:
    """Element-wise application of a scalar-function handler."""
    if not arg_vectors:
        return [handler(()) for _ in range(length)]
    if len(arg_vectors) == 1:
        single = arg_vectors[0]
        return [handler((value,)) for value in single]
    return [handler(args) for args in zip(*arg_vectors)]


# -- normalization -----------------------------------------------------------


def normalize_kernel(values: Vector) -> Vector:
    """Element-wise ``normalize_for_comparison`` (join keys, group keys)."""
    return [normalize_for_comparison(value) for value in values]


# -- top-k selection ---------------------------------------------------------


class _ReversedKey:
    """Wraps a sort key so that ``heapq.nsmallest`` orders it descending.

    Only ``<`` (and ``==`` for completeness) is needed: tuple comparison
    and the heap never use other operators on the wrapped keys.
    """

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_ReversedKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedKey) and other.key == self.key


def top_k_indices(
    keys_per_item: Sequence[Sequence[Any]],
    descending: Sequence[bool],
    count: int,
    k: int,
) -> List[int]:
    """The first ``k`` row indices under a multi-item ORDER BY.

    Equivalent to the executors' rightmost-first stable multi-pass
    sort truncated to ``k`` entries: the composite comparison key is
    the per-item ``sort_key`` (descending items inverted via
    :class:`_ReversedKey`) with the original index as final tiebreak,
    which reproduces exactly the stable order — but via a bounded heap
    instead of a full O(n log n) sort.
    """

    def composite(index: int) -> tuple:
        parts = tuple(
            _ReversedKey(sort_key(keys[index])) if desc else sort_key(keys[index])
            for keys, desc in zip(keys_per_item, descending)
        )
        return parts + (index,)

    return heapq.nsmallest(k, range(count), key=composite)
