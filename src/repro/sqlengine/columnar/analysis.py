"""Static vectorizability analysis: which SELECT cores may run columnar.

The vectorized executor evaluates expressions column-at-a-time, which
changes *how often* and *in what order* sub-expressions are evaluated
compared to the row executor's frame-at-a-time interpretation (AND/OR
short-circuiting, WHERE-before-projection, CASE arm laziness).  For
error-free expressions that difference is unobservable — SQL
three-valued logic is associative over whole columns — so the gate
here is exactly the optimizer's error-freedom discipline extended to
value position: a SELECT core is vectorized only when **every**
expression it contains provably cannot raise (the
``cannot_raise_predicate`` contract of
:mod:`repro.sqlengine.optimizer.rewrites`, widened with aggregate and
scalar-function rules) and resolves statically against the FROM-clause
bindings.  Anything else — subqueries, CASE, unresolvable or ambiguous
references, text/number comparisons, non-literal divisors — makes the
whole node fall back to the row executor, which preserves the exact
runtime error behaviour.

The analysis is run once per plan node and cached on it (plans live in
the plan cache; the annotation dies with them), producing a
:class:`VectorSelectPlan` that also pre-resolves column references to
``(binding slot, column position)`` pairs and records every
sub-expression's static type class so the kernels can pick fast paths
without re-deriving types at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Conjunction,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    SelectQuery,
    Star,
    UnaryOp,
    contains_aggregate,
    is_aggregate_call,
)
from ..catalog import Schema, Table
from ..executor import uses_aggregates
from ..optimizer.rewrites import SelectContext, Unplannable, referenced_bindings
from ..values import type_class

#: boolean coercion (``Executor._eval_boolean``) accepts these classes
#: without raising; "text" raises and "unknown" may.
COERCIBLE_CLASSES = frozenset({"bool", "number", "null"})

#: scalar functions with known never-raising semantics (see
#: ``value_class`` for the per-function argument rules).
SUPPORTED_SCALARS = frozenset(
    {"upper", "lower", "length", "abs", "round", "coalesce"}
)


@dataclass(frozen=True)
class VectorJoin:
    """One hash-joinable step of a vectorized FROM pipeline."""

    kind: JoinKind  # INNER or LEFT
    binding: str
    table: Table
    table_name: str
    positions: Tuple[int, ...]  # key column positions in the new table
    outer_exprs: Tuple[Expression, ...]  # probe expressions, pair-aligned
    residual: Tuple[Expression, ...]  # non-equi ON conjuncts


@dataclass
class VectorSelectPlan:
    """Everything the vectorized executor needs for one SELECT core."""

    select: SelectQuery
    bindings: List[str]  # binding names in planned FROM order
    tables: List[Table]
    table_names: List[str]
    scan_filter: Optional[Expression]
    joins: List[VectorJoin]
    aggregated: bool
    aggregate_calls: List[FunctionCall]
    semi_joins: Tuple = ()  # optimizer SemiJoinSpec sequence (may be empty)
    classes: Dict[int, str] = field(default_factory=dict)
    ref_slots: Dict[int, Tuple[int, int]] = field(default_factory=dict)


class _Analyzer:
    """One-shot analysis of a single SELECT core."""

    def __init__(self, select: SelectQuery, schema: Schema) -> None:
        self.select = select
        self.schema = schema
        self.context = SelectContext(select, schema)  # may raise Unplannable
        self.classes: Dict[int, str] = {}
        self.ref_slots: Dict[int, Tuple[int, int]] = {}
        self.slot_by_key: Dict[str, int] = {
            key: slot for slot, key in enumerate(self.context.order)
        }

    # -- type classes --------------------------------------------------------
    def value_class(self, expr: Expression) -> Optional[str]:
        """Static class ("number"/"text"/"bool"/"null") or None.

        ``None`` means evaluation might raise, resolve dynamically, or
        use an unsupported node type — all grounds for row fallback.
        Approved sub-expressions are memoized into ``self.classes``
        for the kernels' fast-path dispatch.
        """
        cached = self.classes.get(id(expr))
        if cached is not None:
            return cached
        result = self._value_class(expr)
        if result is not None:
            self.classes[id(expr)] = result
        return result

    def _value_class(self, expr: Expression) -> Optional[str]:
        if isinstance(expr, Literal):
            value = expr.value
            if value is None:
                return "null"
            if isinstance(value, bool):
                return "bool"
            if isinstance(value, (int, float)):
                return "number"
            if isinstance(value, str):
                return "text"
            return None
        if isinstance(expr, ColumnRef):
            refs = referenced_bindings(expr, self.context)
            if not refs:
                return None  # outer-scoped, ambiguous or unknown
            (binding,) = refs
            table = self.context.table(binding)
            if table is None or not table.has_column(expr.column):
                return None
            self.ref_slots[id(expr)] = (
                self.slot_by_key[binding],
                table.column_position(expr.column),
            )
            return type_class(table.column(expr.column).sql_type)
        if isinstance(expr, UnaryOp):
            operand = self.value_class(expr.operand)
            if expr.op == "-":
                return "number" if operand in ("number", "null") else None
            if expr.op == "NOT":
                return "bool" if operand in COERCIBLE_CLASSES else None
            return None
        if isinstance(expr, Conjunction):
            if all(
                self.value_class(term) in COERCIBLE_CLASSES
                for term in expr.terms
            ):
                return "bool"
            return None
        if isinstance(expr, BinaryOp):
            left = self.value_class(expr.left)
            right = self.value_class(expr.right)
            if left is None or right is None:
                return None
            if expr.op == "||":
                return "text"
            if expr.op in ("+", "-", "*"):
                return "number" if {left, right} <= {"number", "null"} else None
            if expr.op in ("/", "%"):
                # a zero (or NULL) divisor raises / stays NULL; only a
                # provably non-zero literal keeps evaluation total
                if (
                    {left, right} <= {"number", "null"}
                    and isinstance(expr.right, Literal)
                    and expr.right.value not in (0, 0.0, None)
                ):
                    return "number"
                return None
            if expr.op in ("=", "<>"):
                return "bool"  # sql_equal aligns or falls back, never raises
            if expr.op in ("<", "<=", ">", ">="):
                return "bool" if _comparable(left, right) else None
            return None
        if isinstance(expr, BetweenOp):
            value = self.value_class(expr.expr)
            low = self.value_class(expr.low)
            high = self.value_class(expr.high)
            if _comparable(value, low) and _comparable(value, high):
                return "bool"
            return None
        if isinstance(expr, IsNullOp):
            return "bool" if self.value_class(expr.expr) is not None else None
        if isinstance(expr, LikeOp):
            if (
                self.value_class(expr.expr) is not None
                and self.value_class(expr.pattern) is not None
            ):
                return "bool"  # LIKE stringifies; cannot raise
            return None
        if isinstance(expr, InOp):
            if expr.subquery is not None:
                return None
            if self.value_class(expr.expr) is None:
                return None
            if all(
                self.value_class(option) is not None
                for option in (expr.options or ())
            ):
                return "bool"
            return None
        if isinstance(expr, FunctionCall):
            return self._function_class(expr)
        return None  # Star, CASE, subquery expressions: row territory

    def _function_class(self, expr: FunctionCall) -> Optional[str]:
        if is_aggregate_call(expr):
            return self._aggregate_class(expr)
        if expr.name not in SUPPORTED_SCALARS:
            return None
        if expr.name == "coalesce":
            classes = {self.value_class(arg) for arg in expr.args}
            if None in classes or not classes:
                return None
            non_null = classes - {"null"}
            if not non_null:
                return "null"
            return non_null.pop() if len(non_null) == 1 else None
        if expr.name == "round":
            if len(expr.args) not in (1, 2):
                return None
            if self.value_class(expr.args[0]) not in ("number", "null"):
                return None
            if len(expr.args) == 2:
                digits = expr.args[1]
                # the executor calls int(digits) unconditionally; only
                # a non-NULL numeric literal provably survives that
                if not (
                    isinstance(digits, Literal)
                    and isinstance(digits.value, (int, float))
                    and not isinstance(digits.value, bool)
                ):
                    return None
            return "number"
        if len(expr.args) != 1:
            return None
        arg = self.value_class(expr.args[0])
        if arg is None:
            return None
        if expr.name == "abs":
            return "number" if arg in ("number", "null") else None
        if expr.name == "length":
            return "number"
        return "text"  # upper / lower

    def _aggregate_class(self, expr: FunctionCall) -> Optional[str]:
        star = len(expr.args) == 1 and isinstance(expr.args[0], Star)
        if expr.name == "count":
            if star or not expr.args:
                return "number"
            if len(expr.args) != 1:
                return None
            if contains_aggregate(expr.args[0]):
                return None  # nested aggregate raises at runtime
            return "number" if self.value_class(expr.args[0]) else None
        if len(expr.args) != 1 or star:
            return None
        argument = expr.args[0]
        if contains_aggregate(argument):
            return None
        arg_class = self.value_class(argument)
        if arg_class is None:
            return None
        if expr.name in ("sum", "avg"):
            # sum/avg raise on non-numeric inputs
            return "number" if arg_class in ("number", "null") else None
        return arg_class  # min / max never raise

    # -- predicate positions -------------------------------------------------
    def predicate_ok(self, expr: Expression) -> bool:
        """Value evaluation AND boolean coercion provably total."""
        return self.value_class(expr) in COERCIBLE_CLASSES

    # -- join planning -------------------------------------------------------
    def plan_join(
        self, join: Join, placed: frozenset
    ) -> Optional[VectorJoin]:
        if join.kind is JoinKind.CROSS or join.condition is None:
            return None
        if join.kind not in (JoinKind.INNER, JoinKind.LEFT):
            return None
        if contains_aggregate(join.condition):
            return None  # the row path raises the aggregate-context error
        new_key = join.table.binding.lower()
        new_table = self.context.table(new_key)
        if new_table is None:
            return None
        terms = (
            list(join.condition.terms)
            if isinstance(join.condition, Conjunction)
            and join.condition.op == "AND"
            else [join.condition]
        )
        outer_exprs: List[Expression] = []
        positions: List[int] = []
        residual: List[Expression] = []
        for term in terms:
            pair = self._match_equi(term, placed, new_key, new_table)
            if pair is not None:
                outer_exprs.append(pair[0])
                positions.append(pair[1])
            else:
                residual.append(term)
        if not positions:
            return None  # no hash key: a vectorized nested loop never pays
        visible = placed | {new_key}
        for term in residual:
            if not self.predicate_ok(term):
                return None
            # the row executor resolves residual terms against the
            # *extended* frame only — a reference to a binding joined
            # later raises there, so it must fall back here too
            refs = referenced_bindings(term, self.context)
            if refs is None or not refs <= visible:
                return None
        return VectorJoin(
            kind=join.kind,
            binding=join.table.binding,
            table=new_table,
            table_name=join.table.table,
            positions=tuple(positions),
            outer_exprs=tuple(outer_exprs),
            residual=tuple(residual),
        )

    def _match_equi(
        self,
        term: Expression,
        placed: frozenset,
        new_key: str,
        new_table: Table,
    ) -> Optional[Tuple[Expression, int]]:
        """``(probe expression, new-table column position)`` or None.

        Hash lookups use ``normalize_for_comparison`` keys, which only
        agree with ``sql_equal`` when both sides provably share a type
        class — the executor's ``_hash_compatible`` rule, applied here
        with full static binding knowledge.
        """
        if not (isinstance(term, BinaryOp) and term.op == "="):
            return None
        for inner, other in ((term.left, term.right), (term.right, term.left)):
            if not isinstance(inner, ColumnRef):
                continue
            inner_refs = referenced_bindings(inner, self.context)
            if inner_refs != {new_key}:
                continue
            other_refs = referenced_bindings(other, self.context)
            if other_refs is None or not other_refs <= placed:
                continue
            other_class = self.value_class(other)
            if other_class is None:
                continue
            column = new_table.column(inner.column)
            if other_class in ("null", type_class(column.sql_type)):
                return other, new_table.column_position(inner.column)
        return None

    # -- whole-select analysis -----------------------------------------------
    def analyze(self) -> Optional[VectorSelectPlan]:
        select = self.select
        if select.from_table is None:
            return None  # constant SELECT: row path is already optimal

        joins: List[VectorJoin] = []
        placed = frozenset({select.from_table.binding.lower()})
        for join in select.joins:
            planned = self.plan_join(join, placed)
            if planned is None:
                return None
            joins.append(planned)
            placed = placed | {join.table.binding.lower()}

        scan_filters = getattr(select, "scan_filters", None)
        scan_filter = (
            scan_filters.get(select.from_table.binding.lower())
            if scan_filters
            else None
        )
        if scan_filter is not None:
            if not self.predicate_ok(scan_filter):
                return None
            # the planner only pushes FROM-binding conjuncts, but the
            # filter runs before any join slot exists — enforce it
            refs = referenced_bindings(scan_filter, self.context)
            if refs is None or not refs <= {select.from_table.binding.lower()}:
                return None

        semi_joins = tuple(getattr(select, "semi_joins", ()) or ())
        for spec in semi_joins:
            # probe expressions are evaluated over the outer batch — the
            # analyzer must prove each never raises (registers ref slots)
            for expr, _column in spec.keys:
                if self.value_class(expr) is None:
                    return None
            if spec.in_probe is not None and self.value_class(spec.in_probe) is None:
                return None

        if select.where is not None:
            if contains_aggregate(select.where):
                return None  # row path raises the proper context error
            if not self.predicate_ok(select.where):
                return None

        aggregated = bool(select.group_by) or uses_aggregates(select)
        for expr in select.group_by:
            if contains_aggregate(expr):
                return None
            if self.value_class(expr) is None:
                return None

        aggregate_calls: List[FunctionCall] = []
        for item in select.projections:
            if isinstance(item.expr, Star):
                if item.expr.table is not None and (
                    self.context.table(item.expr.table) is None
                ):
                    return None  # row path raises "unknown table alias"
                continue
            if self.value_class(item.expr) is None:
                return None
            _collect_aggregates(item.expr, aggregate_calls)

        if select.having is not None:
            if not self.predicate_ok(select.having):
                return None
            _collect_aggregates(select.having, aggregate_calls)

        row_width = self._row_width()
        for item in select.order_by:
            expr = item.expr
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                # positional: must be in range for every possible row;
                # out-of-range only raises when rows exist, which the
                # gate cannot know — leave those to the row executor
                if row_width is None or not 1 <= expr.value <= row_width:
                    return None
                continue
            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and _alias_position(select, expr.column) is not None
            ):
                continue
            if self.value_class(expr) is None:
                return None
            _collect_aggregates(expr, aggregate_calls)

        if aggregate_calls and not aggregated:  # pragma: no cover - safety
            return None

        return VectorSelectPlan(
            select=select,
            bindings=[ref.binding for ref in select.table_refs],
            tables=[self.context.table(key) for key in self.context.order],
            table_names=[ref.table for ref in select.table_refs],
            scan_filter=scan_filter,
            joins=joins,
            aggregated=aggregated,
            aggregate_calls=aggregate_calls,
            semi_joins=semi_joins,
            classes=self.classes,
            ref_slots=self.ref_slots,
        )

    def _row_width(self) -> Optional[int]:
        """Static width of a projected row (Star widths are catalog facts)."""
        width = 0
        for item in self.select.projections:
            if isinstance(item.expr, Star):
                if item.expr.table is None:
                    width += sum(len(t.columns) for t in self.context.bindings.values())
                else:
                    table = self.context.table(item.expr.table)
                    if table is None:
                        return None
                    width += len(table.columns)
            else:
                width += 1
        return width


def _comparable(left: Optional[str], right: Optional[str]) -> bool:
    """Mirror of the optimizer's rule: only text-vs-number can raise."""
    if left is None or right is None:
        return False
    if "null" in (left, right):
        return True
    return {left, right} != {"text", "number"}


def _alias_position(select: SelectQuery, column: str) -> Optional[int]:
    """Projection index whose alias matches (the row executor's rule)."""
    lowered = column.lower()
    for position, projection in enumerate(select.projections):
        if projection.alias and projection.alias.lower() == lowered:
            return position
    return None


def _collect_aggregates(expr: Expression, into: List[FunctionCall]) -> None:
    seen = {id(call) for call in into}
    for node in expr.walk():
        if is_aggregate_call(node) and id(node) not in seen:
            seen.add(id(node))
            into.append(node)


def analyze_select(
    select: SelectQuery, schema: Schema
) -> Optional[VectorSelectPlan]:
    """The vectorizability verdict for one SELECT core (None = row)."""
    try:
        analyzer = _Analyzer(select, schema)
    except Unplannable:
        return None
    return analyzer.analyze()
