"""Columnar views over :class:`~repro.sqlengine.storage.TableData`.

The row store keeps tuples in insertion order — the right layout for
constraint checking and the row executor's frame pipeline, but the
wrong one for batch kernels, which want one contiguous sequence per
column.  :class:`ColumnStore` materializes that transposed view
*lazily* (first vectorized touch of a table) and keeps it only as long
as it is provably fresh: every cached artifact carries the
``TableData.version`` it was built under, the same monotonic mutation
counter ``Storage.data_epoch`` sums, so any insert or rollback
invalidates exactly the tables it touched.

Columns are tuples (immutable, shared freely across threads); a build
in progress is serialized per store with double-checked locking, the
same discipline ``TableData.join_index`` uses for grid workers that
race on a cold table.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..storage import Storage, TableData
from ..values import normalize_for_comparison

#: one table's columns, index-aligned with ``Table.columns``
ColumnSet = Tuple[tuple, ...]


class ColumnStore:
    """Lazy, version-checked column arrays for one :class:`Storage`.

    Two artifact kinds, both keyed on the owning table's mutation
    version:

    * ``columns(table)`` — the transposed row set, one tuple per
      catalog column;
    * ``join_index(table, positions)`` — normalized join key →
      **row positions** (not row tuples, unlike the row store's
      index), in table row order, NULL-containing keys skipped, so a
      vectorized hash join probes straight into the column arrays.
    """

    def __init__(self, storage: Storage) -> None:
        self.storage = storage
        self._columns: Dict[str, Tuple[int, ColumnSet]] = {}
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], Tuple[int, dict]] = {}
        self._lock = threading.Lock()
        self.builds = 0
        self.index_builds = 0

    def columns(self, table_name: str) -> ColumnSet:
        """Column arrays for ``table_name``, rebuilt if the table mutated."""
        data = self.storage.data(table_name)
        key = data.table.name.lower()
        entry = self._columns.get(key)
        if entry is not None and entry[0] == data.version:
            return entry[1]
        with self._lock:
            entry = self._columns.get(key)
            if entry is None or entry[0] != data.version:
                entry = (data.version, _transpose(data))
                self._columns[key] = entry
                self.builds += 1
        return entry[1]

    def join_index(
        self, table_name: str, positions: Tuple[int, ...]
    ) -> Dict[tuple, List[int]]:
        """Hash index of normalized key tuples → row positions.

        Bucket contents preserve table row order, which is what makes
        the vectorized hash join emit matches in exactly the sequence
        the row executor's bucket scan produces.
        """
        data = self.storage.data(table_name)
        key = (data.table.name.lower(), positions)
        entry = self._indexes.get(key)
        if entry is not None and entry[0] == data.version:
            return entry[1]
        with self._lock:
            entry = self._indexes.get(key)
            if entry is None or entry[0] != data.version:
                entry = (data.version, _build_index(data, positions))
                self._indexes[key] = entry
                self.index_builds += 1
        return entry[1]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "column_builds": self.builds,
                "index_builds": self.index_builds,
                "tables_cached": len(self._columns),
            }


def _transpose(data: TableData) -> ColumnSet:
    if not data.rows:
        return tuple(() for _ in data.table.columns)
    return tuple(zip(*data.rows))


def _build_index(
    data: TableData, positions: Tuple[int, ...]
) -> Dict[tuple, List[int]]:
    index: Dict[tuple, List[int]] = {}
    for row_position, row in enumerate(data.rows):
        key = tuple(normalize_for_comparison(row[p]) for p in positions)
        if any(part is None for part in key):
            continue  # NULLs never match an equi-join
        index.setdefault(key, []).append(row_position)
    return index
