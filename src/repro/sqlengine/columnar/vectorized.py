"""The vectorized (batch-at-a-time) executor.

Execution model
---------------
Where the row executor materializes one :class:`Frame` object per
surviving row combination, this executor represents the same frame
stream as a *batch*: per-binding index vectors into shared column
arrays (:class:`~repro.sqlengine.columnar.columns.ColumnStore`).  A
scan is a ``range``; a filter is a selection-vector compaction; a hash
join maps positions through the columnar join index; projections,
group keys and aggregate arguments are evaluated once per column
instead of once per row.

The correctness contract is the optimizer's, extended to execution:
**vectorized and row execution are byte-identical** — same rows, same
order, same column names, same errors.  Three mechanisms enforce it:

* the static gate (:mod:`.analysis`) only admits SELECT cores whose
  every expression provably cannot raise, so evaluation order is
  unobservable;
* every algorithm mirrors the row executor's emission order — hash
  join buckets preserve table row order, groups keep first-seen key
  order, the ORDER BY/DISTINCT/LIMIT pipeline replicates
  ``Executor._finalize`` including its stable multi-key sort;
* anything the gate rejects (or the one data-dependent case it cannot
  decide: a global aggregate over zero rows, whose representative
  frame semantics depend on emptiness) falls back **per plan node** to
  the row executor, which keeps exact runtime error behaviour.

Fallback is counted, never silent: ``counters()`` reports vectorized
vs row-executed nodes and is surfaced through ``engine_report`` /
``GridSummary`` / the service's ``metrics()``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from .. import functions as fn
from ..ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Conjunction,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    JoinKind,
    LikeOp,
    Literal,
    QueryNode,
    SelectQuery,
    SetOperation,
    Star,
    UnaryOp,
    is_aggregate_call,
)
from ..errors import ExecutionError
from ..executor import Executor, Result, _apply_limit, _like_regex
from ..storage import Storage
from ..values import normalize_for_comparison, sort_key, sql_not
from . import kernels
from .analysis import VectorJoin, VectorSelectPlan, _alias_position, analyze_select
from .columns import ColumnStore


class _Batch:
    """A frame stream in columnar form.

    ``columns[slot]`` are the column arrays of binding ``slot`` (plan
    order); ``indexes[slot]`` maps each of the ``length`` batch
    positions to a row position in that table (``None`` for the
    NULL-extended side of a LEFT join, flagged by ``nullable[slot]``).
    """

    __slots__ = ("plan", "columns", "indexes", "nullable", "length")

    def __init__(
        self,
        plan: VectorSelectPlan,
        columns: List[tuple],
        indexes: List[Sequence[Optional[int]]],
        nullable: List[bool],
        length: int,
    ) -> None:
        self.plan = plan
        self.columns = columns
        self.indexes = indexes
        self.nullable = nullable
        self.length = length

    def select(self, positions: List[int]) -> "_Batch":
        """Compact the batch to the given (ascending) positions."""
        return _Batch(
            self.plan,
            self.columns,
            [kernels.take(index, positions) for index in self.indexes],
            list(self.nullable),
            len(positions),
        )


#: marks "analysis not yet attached" on a plan node
_UNANALYZED = object()


class VectorizedExecutor:
    """Executes plan trees batch-at-a-time, row-falling-back per node."""

    def __init__(self, storage: Storage, row_executor: Executor) -> None:
        self.storage = storage
        self.store = ColumnStore(storage)
        self._row = row_executor
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters = {
            "statements": 0,
            "vectorized_nodes": 0,
            "fallback_nodes": 0,
        }

    # -- profiling (EXPLAIN ANALYZE substrate) -------------------------------
    def set_profile(self, profile) -> None:
        """Install (or clear, with None) a per-operator collector for
        this thread's executions (see :mod:`repro.obs.profile`)."""
        self._local.profile = profile

    def _prof(self):
        return getattr(self._local, "profile", None)

    # -- public entry point --------------------------------------------------
    def execute(self, query: QueryNode) -> Result:
        with self._lock:
            self._counters["statements"] += 1
        return self._execute_node(query)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    # -- node dispatch -------------------------------------------------------
    def _execute_node(self, node: QueryNode) -> Result:
        if isinstance(node, SetOperation):
            return self._execute_set_operation(node)
        return self._execute_select(node)

    def _execute_set_operation(self, node: SetOperation) -> Result:
        left = self._execute_node(node.left)
        right = self._execute_node(node.right)
        # children are dispatched per backend; the combine/order/limit
        # semantics live in exactly one place, the row executor's
        return self._row.finish_set_operation(node, left, right)

    def _plan_for(self, select: SelectQuery) -> Optional[VectorSelectPlan]:
        """Analysis verdict for one SELECT core, cached on the node.

        Plan nodes live in the plan cache and are shared across
        threads; the annotation is idempotent, and carrying the schema
        object in the entry pins the verdict to this database's
        catalog (a programmatically shared AST cannot leak a verdict
        across schemas).
        """
        schema = self.storage.schema
        entry = getattr(select, "_vector_plan", _UNANALYZED)
        if entry is not _UNANALYZED and entry[0] is schema:
            return entry[1]
        plan = analyze_select(select, schema)
        select._vector_plan = (schema, plan)
        return plan

    def _execute_select(self, select: SelectQuery) -> Result:
        plan = self._plan_for(select)
        if plan is None:
            self._count("fallback_nodes")
            return self._row.execute(select)
        prof = self._prof()
        started = prof.clock() if prof is not None else 0.0
        batch = self._scan(plan)
        if prof is not None:
            prof.record(
                "vectorized", f"scan {plan.table_names[0]}", batch.length, started
            )
        for vjoin in plan.joins:
            started = prof.clock() if prof is not None else 0.0
            batch = self._join(batch, vjoin)
            if prof is not None:
                kind = "left join" if vjoin.kind is JoinKind.LEFT else "hash join"
                prof.record(
                    "vectorized", f"{kind} {vjoin.table_name}", batch.length, started
                )
        for spec in plan.semi_joins:
            started = prof.clock() if prof is not None else 0.0
            batch = self._semi_join(batch, spec)
            if prof is not None:
                kind = "anti join" if spec.anti else "semi join"
                prof.record(
                    "vectorized", f"{kind} {spec.table}", batch.length, started
                )
        if select.where is not None:
            started = prof.clock() if prof is not None else 0.0
            batch = self._filter(batch, select.where)
            if prof is not None:
                prof.record("vectorized", "filter", batch.length, started)
        if plan.aggregated:
            result = self._execute_aggregated(select, plan, batch)
            if result is None:
                # zero input rows and no GROUP BY: the row executor's
                # EMPTY representative frame decides whether a bare
                # column projection raises — a data-dependent verdict
                # the static gate cannot make
                self._count("fallback_nodes")
                return self._row.execute(select)
        else:
            result = self._execute_plain(select, plan, batch)
        self._count("vectorized_nodes")
        return result

    # -- FROM / JOIN / WHERE pipeline ----------------------------------------
    def _scan(self, plan: VectorSelectPlan) -> _Batch:
        columns = self.store.columns(plan.table_names[0])
        length = len(columns[0]) if columns else 0
        batch = _Batch(plan, [columns], [range(length)], [False], length)
        if plan.scan_filter is not None:
            batch = self._filter(batch, plan.scan_filter)
        return batch

    def _filter(self, batch: _Batch, predicate: Expression) -> _Batch:
        positions = kernels.true_positions(self._eval(predicate, batch))
        if len(positions) == batch.length:
            return batch
        return batch.select(positions)

    def _join(self, batch: _Batch, vjoin: VectorJoin) -> _Batch:
        index = self.store.join_index(vjoin.table_name, vjoin.positions)
        probes = [
            kernels.normalize_kernel(self._eval(expr, batch))
            for expr in vjoin.outer_exprs
        ]
        left_kind = vjoin.kind is JoinKind.LEFT
        buckets: List[Optional[List[int]]] = []
        if len(probes) == 1:
            get = index.get
            for key in probes[0]:
                buckets.append(None if key is None else get((key,)))
        else:
            get = index.get
            for position in range(batch.length):
                key = tuple(vector[position] for vector in probes)
                buckets.append(
                    None if any(part is None for part in key) else get(key)
                )

        out_prev: List[int] = []
        out_rows: List[Optional[int]] = []
        if not vjoin.residual and not left_kind:
            for position, bucket in enumerate(buckets):
                if bucket:
                    out_prev += [position] * len(bucket)
                    out_rows += bucket
        else:
            mask = None
            if vjoin.residual:
                cand_prev: List[int] = []
                cand_rows: List[Optional[int]] = []
                for position, bucket in enumerate(buckets):
                    if bucket:
                        cand_prev += [position] * len(bucket)
                        cand_rows += bucket
                candidate = self._extend(batch, vjoin, cand_prev, cand_rows, False)
                mask = [True] * candidate.length
                for term in vjoin.residual:
                    coerced = kernels.bool3(self._eval(term, candidate))
                    mask = [m and (v is True) for m, v in zip(mask, coerced)]
            cursor = 0
            for position, bucket in enumerate(buckets):
                matched = False
                if bucket:
                    for row in bucket:
                        keep = mask[cursor] if mask is not None else True
                        cursor += 1
                        if keep:
                            out_prev.append(position)
                            out_rows.append(row)
                            matched = True
                if left_kind and not matched:
                    out_prev.append(position)
                    out_rows.append(None)
        return self._extend(batch, vjoin, out_prev, out_rows, left_kind)

    def _semi_join(self, batch: _Batch, spec) -> _Batch:
        """Filter the batch through a decorrelated EXISTS/IN spec.

        The probe table comes from the row executor's version-cached
        builder (shared across both engines); the per-position verdict
        mirrors ``Executor._semi_keep`` exactly.
        """
        groups = self._row.semi_join_groups(spec)
        probes = [
            kernels.normalize_kernel(self._eval(expr, batch))
            for expr, _column in spec.keys
        ]
        probe_values = None
        if spec.in_probe is not None:
            probe_values = self._eval(spec.in_probe, batch)
        keep: List[int] = []
        anti = spec.anti
        get = groups.get
        for position in range(batch.length):
            key = tuple(vector[position] for vector in probes)
            group = None if any(part is None for part in key) else get(key)
            if probe_values is None:  # EXISTS / NOT EXISTS
                if (group is not None) != anti:
                    keep.append(position)
                continue
            if group is None:
                verdict: Optional[bool] = False
            else:
                value = probe_values[position]
                if value is None:
                    verdict = None
                else:
                    normalized = normalize_for_comparison(value)
                    if normalized in group[2]:
                        verdict = True
                    elif group[1]:
                        verdict = None
                    else:
                        verdict = False
            if anti:
                verdict = sql_not(verdict)
            if verdict is True:
                keep.append(position)
        if len(keep) == batch.length:
            return batch
        return batch.select(keep)

    def _extend(
        self,
        batch: _Batch,
        vjoin: VectorJoin,
        prev_positions: List[int],
        new_rows: List[Optional[int]],
        new_nullable: bool,
    ) -> _Batch:
        return _Batch(
            batch.plan,
            batch.columns + [self.store.columns(vjoin.table_name)],
            [kernels.take(index, prev_positions) for index in batch.indexes]
            + [new_rows],
            batch.nullable + [new_nullable],
            len(prev_positions),
        )

    # -- output construction -------------------------------------------------
    def _execute_plain(
        self, select: SelectQuery, plan: VectorSelectPlan, batch: _Batch
    ) -> Result:
        prof = self._prof()
        started = prof.clock() if prof is not None else 0.0
        names = self._output_names(select, plan, batch.length > 0)
        columns = self._project_columns(select, plan, batch, None)
        rows = list(zip(*columns)) if columns else [()] * batch.length
        if prof is not None:
            prof.record("vectorized", "project", len(rows), started)
        return self._finalize(select, plan, names, rows, batch, None)

    def _execute_aggregated(
        self, select: SelectQuery, plan: VectorSelectPlan, batch: _Batch
    ) -> Optional[Result]:
        length = batch.length
        if not select.group_by and length == 0:
            return None  # dynamic fallback (see _execute_select)
        prof = self._prof()
        started = prof.clock() if prof is not None else 0.0
        if select.group_by:
            key_vectors = [
                kernels.normalize_kernel(self._eval(expr, batch))
                for expr in select.group_by
            ]
            keyed: Dict[tuple, List[int]] = {}
            order: List[tuple] = []
            if len(key_vectors) == 1:
                iterator = ((value,) for value in key_vectors[0])
            else:
                iterator = zip(*key_vectors)
            for position, key in enumerate(iterator):
                members = keyed.get(key)
                if members is None:
                    keyed[key] = [position]
                    order.append(key)
                else:
                    members.append(position)
            groups = [keyed[key] for key in order]
        else:
            groups = [list(range(length))]

        overrides: Dict[int, list] = {}
        for call in plan.aggregate_calls:
            overrides[id(call)] = self._aggregate_vector(call, batch, groups)

        representative = batch.select([members[0] for members in groups])
        if select.having is not None:
            verdicts = kernels.bool3(
                self._eval(select.having, representative, overrides)
            )
            kept = [g for g, value in enumerate(verdicts) if value is True]
            if len(kept) != len(groups):
                groups = [groups[g] for g in kept]
                representative = batch.select(
                    [members[0] for members in groups]
                )
                overrides = {
                    key: kernels.take(vector, kept)
                    for key, vector in overrides.items()
                }
        names = self._output_names(select, plan, length > 0)
        columns = self._project_columns(select, plan, representative, overrides)
        rows = list(zip(*columns)) if columns else [()] * representative.length
        if prof is not None:
            prof.record("vectorized", "aggregate", len(rows), started)
        return self._finalize(select, plan, names, rows, representative, overrides)

    def _aggregate_vector(
        self, call: FunctionCall, batch: _Batch, groups: List[List[int]]
    ) -> list:
        """One aggregate's value per group (kernel = whole-column arg
        evaluation + per-group slicing in frame order)."""
        star = len(call.args) == 1 and isinstance(call.args[0], Star)
        if call.name == "count" and (star or not call.args):
            return [
                fn.aggregate_count([1] * len(members), call.distinct, star=True)
                for members in groups
            ]
        argument_values = self._eval(call.args[0], batch)
        out = []
        for members in groups:
            values = kernels.take(argument_values, members)
            if call.name == "count":
                out.append(fn.aggregate_count(values, call.distinct, star=False))
            elif call.name == "sum":
                out.append(fn.aggregate_sum(values, call.distinct))
            elif call.name == "avg":
                out.append(fn.aggregate_avg(values, call.distinct))
            elif call.name == "min":
                out.append(fn.aggregate_min(values, call.distinct))
            else:
                out.append(fn.aggregate_max(values, call.distinct))
        return out

    def _output_names(
        self, select: SelectQuery, plan: VectorSelectPlan, has_rows: bool
    ) -> List[str]:
        """Mirror of ``Executor._output_columns`` (including its
        empty-stream ``*`` placeholder)."""
        names: List[str] = []
        for item in select.projections:
            if isinstance(item.expr, Star):
                if has_rows:
                    for slot, binding in enumerate(plan.bindings):
                        if (
                            item.expr.table is not None
                            and binding.lower() != item.expr.table.lower()
                        ):
                            continue
                        names.extend(plan.tables[slot].column_names)
                else:
                    names.append("*")
                continue
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                names.append(item.expr.column)
            elif isinstance(item.expr, FunctionCall):
                names.append(item.expr.name)
            else:
                names.append(f"column{len(names) + 1}")
        return names

    def _project_columns(
        self,
        select: SelectQuery,
        plan: VectorSelectPlan,
        batch: _Batch,
        overrides: Optional[Dict[int, list]],
    ) -> List[list]:
        columns: List[list] = []
        for item in select.projections:
            if isinstance(item.expr, Star):
                star = item.expr
                for slot, binding in enumerate(plan.bindings):
                    if (
                        star.table is not None
                        and binding.lower() != star.table.lower()
                    ):
                        continue
                    for column in batch.columns[slot]:
                        columns.append(
                            kernels.gather(
                                column, batch.indexes[slot], batch.nullable[slot]
                            )
                        )
                continue
            columns.append(self._eval(item.expr, batch, overrides))
        return columns

    def _finalize(
        self,
        select: SelectQuery,
        plan: VectorSelectPlan,
        names: List[str],
        rows: List[tuple],
        batch: _Batch,
        overrides: Optional[Dict[int, list]],
    ) -> Result:
        """Mirror of ``Executor._finalize``: order → distinct → limit."""
        prof = self._prof()
        started = prof.clock() if prof is not None else 0.0
        if select.limit == 0:
            # LIMIT 0 short-circuit, mirroring the row executor.
            if prof is not None:
                prof.record("vectorized", "finalize", 0, started)
            return Result(names, [])
        ordered = list(range(len(rows)))
        if select.order_by:
            keys_per_item = [
                self._order_keys(item, select, rows, batch, overrides)
                for item in select.order_by
            ]
            top_k = getattr(select, "top_k", None)
            if top_k is not None:
                ordered = kernels.top_k_indices(
                    keys_per_item,
                    [item.descending for item in select.order_by],
                    len(rows),
                    top_k,
                )
            else:
                for item_index in range(len(select.order_by) - 1, -1, -1):
                    item = select.order_by[item_index]
                    keys = keys_per_item[item_index]
                    ordered.sort(
                        key=lambda i: sort_key(keys[i]), reverse=item.descending
                    )
        output = [rows[i] for i in ordered]
        if select.distinct:
            seen = set()
            unique = []
            for row in output:
                key = tuple(normalize_for_comparison(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            output = unique
        output = _apply_limit(output, select.limit, select.offset)
        if prof is not None:
            prof.record("vectorized", "finalize", len(output), started)
        return Result(names, output)

    def _order_keys(
        self,
        item,
        select: SelectQuery,
        rows: List[tuple],
        batch: _Batch,
        overrides: Optional[Dict[int, list]],
    ) -> list:
        """Mirror of ``Executor._order_key``, one vector per item."""
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value - 1  # gate proved 1 <= value <= row width
            return [row[position] for row in rows]
        if isinstance(expr, ColumnRef) and expr.table is None:
            alias_position = _alias_position(select, expr.column)
            if alias_position is not None:
                return [row[alias_position] for row in rows]
        return self._eval(expr, batch, overrides)

    # -- vectorized expression evaluation ------------------------------------
    def _eval(
        self,
        expr: Expression,
        batch: _Batch,
        overrides: Optional[Dict[int, list]] = None,
    ) -> list:
        if overrides is not None:
            computed = overrides.get(id(expr))
            if computed is not None:
                return computed
        if isinstance(expr, Literal):
            return kernels.broadcast(expr.value, batch.length)
        if isinstance(expr, ColumnRef):
            slot, position = batch.plan.ref_slots[id(expr)]
            return kernels.gather(
                batch.columns[slot][position],
                batch.indexes[slot],
                batch.nullable[slot],
            )
        if isinstance(expr, Conjunction):
            return self._eval_conjunction(expr, batch, overrides)
        if isinstance(expr, UnaryOp):
            if expr.op == "NOT":
                return kernels.not_kernel(
                    kernels.bool3(self._eval(expr.operand, batch, overrides))
                )
            return kernels.negate_kernel(self._eval(expr.operand, batch, overrides))
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, batch, overrides)
        if isinstance(expr, LikeOp):
            values = self._eval(expr.expr, batch, overrides)
            if isinstance(expr.pattern, Literal):
                return kernels.like_const_kernel(
                    values,
                    expr.pattern.value,
                    _like_regex,
                    expr.case_insensitive,
                    expr.negated,
                )
            patterns = self._eval(expr.pattern, batch, overrides)
            return kernels.like_kernel(
                values, patterns, _like_regex, expr.case_insensitive, expr.negated
            )
        if isinstance(expr, BetweenOp):
            return self._eval_between(expr, batch, overrides)
        if isinstance(expr, IsNullOp):
            return kernels.is_null_kernel(
                self._eval(expr.expr, batch, overrides), expr.negated
            )
        if isinstance(expr, InOp):
            return self._eval_in(expr, batch, overrides)
        if isinstance(expr, FunctionCall):
            if is_aggregate_call(expr):
                raise ExecutionError(
                    f"aggregate {expr.name}() used outside an aggregation context"
                )
            handler = fn.SCALAR_FUNCTIONS.get(expr.name)
            if handler is None:  # pragma: no cover - gate rejects unknowns
                raise ExecutionError(f"unknown function {expr.name!r}")
            argument_vectors = [
                self._eval(argument, batch, overrides) for argument in expr.args
            ]
            return kernels.scalar_function_kernel(
                handler, argument_vectors, batch.length
            )
        raise ExecutionError(  # pragma: no cover - gate rejects these
            f"unsupported vectorized expression {type(expr).__name__}"
        )

    def _eval_conjunction(
        self, expr: Conjunction, batch: _Batch, overrides
    ) -> list:
        accumulate = (
            kernels.and_accumulate if expr.op == "AND" else kernels.or_accumulate
        )
        accumulator = kernels.broadcast(expr.op == "AND", batch.length)
        for term in expr.terms:
            coerced = kernels.bool3(self._eval(term, batch, overrides))
            accumulator = accumulate(accumulator, coerced)
        return accumulator

    def _eval_binary(self, expr: BinaryOp, batch: _Batch, overrides) -> list:
        classes = batch.plan.classes
        left = self._eval(expr.left, batch, overrides)
        right = self._eval(expr.right, batch, overrides)
        op = expr.op
        if op == "=" or op == "<>":
            return kernels.eq_kernel(
                left,
                right,
                classes.get(id(expr.left)),
                classes.get(id(expr.right)),
                negated=op == "<>",
            )
        if op in ("<", "<=", ">", ">="):
            return kernels.compare_kernel(
                op, left, right, classes.get(id(expr.left)), classes.get(id(expr.right))
            )
        if op == "||":
            return kernels.concat_kernel(left, right)
        return kernels.arithmetic_kernel(op, left, right)

    def _eval_between(self, expr: BetweenOp, batch: _Batch, overrides) -> list:
        classes = batch.plan.classes
        non_null = {
            classes.get(id(part))
            for part in (expr.expr, expr.low, expr.high)
        } - {"null"}
        direct = len(non_null) <= 1 and non_null <= {"number", "text"}
        return kernels.between_kernel(
            self._eval(expr.expr, batch, overrides),
            self._eval(expr.low, batch, overrides),
            self._eval(expr.high, batch, overrides),
            expr.negated,
            direct,
        )

    def _eval_in(self, expr: InOp, batch: _Batch, overrides) -> list:
        classes = batch.plan.classes
        options = expr.options or ()
        values = self._eval(expr.expr, batch, overrides)
        value_class = classes.get(id(expr.expr))
        if (
            value_class in ("number", "text")
            and options
            and all(
                isinstance(option, Literal)
                and option.value is not None
                and classes.get(id(option)) == value_class
                for option in options
            )
        ):
            members = frozenset(option.value for option in options)
            return kernels.in_set_kernel(values, members, expr.negated)
        option_vectors = [
            self._eval(option, batch, overrides) for option in options
        ]
        return kernels.in_kernel(values, option_vectors, expr.negated)
