"""Logical rewrites: constant folding and subquery simplification.

Every rewrite here must be *exactly* semantics-preserving with respect
to the executor — including error behaviour and SQL three-valued
logic — because the optimizer's contract is that optimized and
unoptimized execution return byte-identical results (enforced by the
differential sweep in ``tests/sqlengine/test_optimizer_differential.py``).

Three consequences shape the code:

* folding uses the very same helpers the executor evaluates with
  (:func:`~repro.sqlengine.values.sql_equal` and friends), so a folded
  literal can never disagree with runtime evaluation;
* anything that *could* raise at runtime (string arithmetic, division
  by zero, unresolvable column references) is left untouched — the
  optimizer folds only what it can prove, and bails to the identity
  rewrite otherwise;
* AND/OR short-circuit order is respected: a constant ``FALSE`` only
  collapses the whole conjunction when every term before it is a
  literal, otherwise the remaining terms are truncated but the prefix
  keeps its evaluation order (so a term that would raise still raises).

All functions are pure: input ASTs (which may live in the plan cache
and be shared across threads) are never mutated — changed nodes are
rebuilt with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ast_nodes import (
    BetweenOp,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Conjunction,
    ExistsOp,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    LikeOp,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    Star,
    UnaryOp,
    contains_aggregate,
)
from ..catalog import Schema, Table
from ..errors import CatalogError
from ..values import SqlType, TYPE_CLASSES, sql_compare, sql_equal, sql_not, sql_text


class Unplannable(Exception):
    """Raised internally when a query cannot be statically analyzed.

    The planner catches it and falls back to the identity plan — the
    unoptimized AST executes exactly as before, preserving whatever
    runtime behaviour (including errors) the query has.
    """


# ---------------------------------------------------------------------------
# Binding resolution
# ---------------------------------------------------------------------------


class SelectContext:
    """The FROM-clause binding map of one SELECT core."""

    def __init__(self, select: SelectQuery, schema: Schema) -> None:
        self.schema = schema
        self.bindings: Dict[str, Table] = {}
        self.order: List[str] = []  # binding keys in FROM order
        for ref in select.table_refs:
            key = ref.binding.lower()
            if key in self.bindings:
                raise Unplannable(f"duplicate binding {ref.binding!r}")
            try:
                table = schema.table(ref.table)
            except CatalogError as exc:
                raise Unplannable(str(exc)) from exc
            self.bindings[key] = table
            self.order.append(key)

    def table(self, binding: str) -> Optional[Table]:
        return self.bindings.get(binding.lower())


def contains_subquery(expr: Expression) -> bool:
    for node in expr.walk():
        if isinstance(node, (ExistsOp, ScalarSubquery)):
            return True
        if isinstance(node, InOp) and node.subquery is not None:
            return True
    return False


def referenced_bindings(
    expr: Expression, context: SelectContext
) -> Optional[Set[str]]:
    """Local bindings referenced by ``expr``, or ``None`` if unresolvable.

    ``None`` means a reference could belong to an outer (correlated)
    scope, is ambiguous, or sits inside a subquery — in every such case
    the caller must treat the expression as immovable.
    """
    if contains_subquery(expr):
        return None
    found: Set[str] = set()
    for node in expr.walk():
        if isinstance(node, Star):
            return None
        if not isinstance(node, ColumnRef):
            continue
        if node.table is not None:
            table = context.table(node.table)
            if table is None:
                return None  # outer scope or unknown alias
            if not table.has_column(node.column):
                return None  # would raise at runtime — leave in place
            found.add(node.table.lower())
        else:
            owners = [
                key
                for key, table in context.bindings.items()
                if table.has_column(node.column)
            ]
            if len(owners) != 1:
                return None  # outer-scoped (0) or ambiguous (>1)
            found.add(owners[0])
    return found


def order_items_statically_safe(
    select: SelectQuery, context: SelectContext
) -> bool:
    """True when dropping ORDER BY cannot suppress a runtime error.

    Positional items must be in-range integer literals (impossible to
    verify when a projection is ``*``), column items must resolve to a
    projection alias or exactly one local binding.
    """
    has_star = any(isinstance(item.expr, Star) for item in select.projections)
    aliases = {
        item.alias.lower() for item in select.projections if item.alias
    }
    for item in select.order_by:
        expr = item.expr
        if isinstance(expr, Literal):
            if not isinstance(expr.value, int) or isinstance(expr.value, bool):
                return False
            if has_star or not 1 <= expr.value <= len(select.projections):
                return False
            continue
        if isinstance(expr, ColumnRef):
            if expr.table is None and expr.column.lower() in aliases:
                continue
            if referenced_bindings(expr, context):
                continue
            return False
        return False
    return True


# ---------------------------------------------------------------------------
# Static error-freedom analysis
# ---------------------------------------------------------------------------
#
# Moving a predicate (WHERE → scan filter / ON condition, or between
# joins) changes *how often* it is evaluated.  For a predicate that can
# raise (``text_col > 5`` hits a TypeMismatchError the moment a
# non-numeric string meets the comparison), that would make errors
# appear or vanish depending on the plan — breaking byte-identical
# optimized/unoptimized behaviour.  So predicates only move when this
# analysis proves evaluation can never raise, using the catalog's
# column types (values are coerced on insert, so the types are exact).

def _value_class(expr: Expression, context: SelectContext) -> Optional[str]:
    """Static type class of a value expression, or None if unprovable.

    Classes: "number", "text", "bool", "null".  ``None`` means the
    expression might raise during evaluation or has an unknown type.
    NULL column values are fine — every evaluation helper handles
    ``None`` operands without raising.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return "number"
        return "text"
    if isinstance(expr, ColumnRef):
        refs = referenced_bindings(expr, context)
        if not refs:
            return None
        (binding,) = refs
        table = context.table(binding)
        column = table.column(expr.column) if table is not None else None
        return TYPE_CLASSES.get(column.sql_type) if column else None
    if isinstance(expr, UnaryOp) and expr.op == "-":
        operand = _value_class(expr.operand, context)
        return "number" if operand in ("number", "null") else None
    if isinstance(expr, BinaryOp):
        left = _value_class(expr.left, context)
        right = _value_class(expr.right, context)
        if left is None or right is None:
            return None
        if expr.op == "||":
            return "text"
        if expr.op in ("+", "-", "*"):
            if {left, right} <= {"number", "null"}:
                return "number"
            return None
        if expr.op in ("/", "%"):
            # a zero divisor raises; only a provably non-zero literal is safe
            if (
                {left, right} <= {"number", "null"}
                and isinstance(expr.right, Literal)
                and expr.right.value not in (0, 0.0, None)
            ):
                return "number"
            return None
    return None


def _comparable(left: Optional[str], right: Optional[str]) -> bool:
    """True when ``sql_compare`` on these classes can never raise.

    The only raising combination is text vs number with a non-numeric
    string (``_align`` falls through and ``<`` raises); bool/text and
    bool/number pairs align or compare natively.
    """
    if left is None or right is None:
        return False
    if "null" in (left, right):
        return True
    return {left, right} != {"text", "number"}


def cannot_raise_predicate(expr: Expression, context: SelectContext) -> bool:
    """True when evaluating ``expr`` as a filter can never raise.

    Covers both value evaluation and the boolean coercion the executor
    applies (a bare TEXT value raises in ``_eval_boolean``).
    """
    if isinstance(expr, Conjunction):
        return all(cannot_raise_predicate(term, context) for term in expr.terms)
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return cannot_raise_predicate(expr.operand, context)
    if isinstance(expr, BinaryOp):
        if expr.op in ("=", "<>"):
            # sql_equal aligns or falls back to ==, which never raises
            return (
                _value_class(expr.left, context) is not None
                and _value_class(expr.right, context) is not None
            )
        if expr.op in ("<", "<=", ">", ">="):
            return _comparable(
                _value_class(expr.left, context),
                _value_class(expr.right, context),
            )
        return False
    if isinstance(expr, BetweenOp):
        value = _value_class(expr.expr, context)
        return _comparable(value, _value_class(expr.low, context)) and _comparable(
            value, _value_class(expr.high, context)
        )
    if isinstance(expr, IsNullOp):
        return _value_class(expr.expr, context) is not None
    if isinstance(expr, LikeOp):
        # LIKE stringifies both operands; evaluation cannot raise
        return (
            _value_class(expr.expr, context) is not None
            and _value_class(expr.pattern, context) is not None
        )
    if isinstance(expr, InOp) and expr.subquery is None:
        if _value_class(expr.expr, context) is None:
            return False
        return all(
            _value_class(option, context) is not None
            for option in (expr.options or ())
        )
    if isinstance(expr, Literal):
        # a bare string literal raises at boolean coercion
        return _value_class(expr, context) in ("bool", "null", "number")
    if isinstance(expr, ColumnRef):
        return _value_class(expr, context) in ("bool", "number")
    return False


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def _is_literal(expr: Expression) -> bool:
    return isinstance(expr, Literal)


def _literal_truth(expr: Expression) -> Tuple[bool, Optional[bool]]:
    """(known, truth) for a folded term, mirroring ``_eval_boolean``.

    Strings are *not* known: the executor raises on them, and folding
    must never suppress that error.
    """
    if not isinstance(expr, Literal):
        return False, None
    value = expr.value
    if value is None or isinstance(value, bool):
        return True, value
    if isinstance(value, (int, float)):
        return True, value != 0
    return False, None


def _fold_binary(expr: BinaryOp) -> Expression:
    left, right = expr.left.value, expr.right.value  # type: ignore[union-attr]
    op = expr.op
    if op == "=":
        return Literal(sql_equal(left, right))
    if op == "<>":
        return Literal(sql_not(sql_equal(left, right)))
    if op in ("<", "<=", ">", ">="):
        try:
            comparison = sql_compare(left, right)
        except Exception:
            return expr  # runtime type error — preserve it
        if comparison is None:
            return Literal(None)
        verdict = {
            "<": comparison < 0,
            "<=": comparison <= 0,
            ">": comparison > 0,
            ">=": comparison >= 0,
        }[op]
        return Literal(verdict)
    if op == "||":
        if left is None or right is None:
            return Literal(None)
        return Literal(sql_text(left) + sql_text(right))
    if op in ("+", "-", "*", "/", "%"):
        if left is None or right is None:
            return Literal(None)
        for operand in (left, right):
            if not isinstance(operand, (int, float)) or isinstance(operand, bool):
                return expr  # arithmetic on non-number raises at runtime
        if op == "+":
            return Literal(left + right)
        if op == "-":
            return Literal(left - right)
        if op == "*":
            return Literal(left * right)
        if op == "/":
            if right == 0:
                return expr  # division by zero raises at runtime
            return Literal(left / right)
        if right == 0:
            return expr  # modulo by zero raises at runtime
        return Literal(left % right)
    return expr


def _fold_conjunction(op: str, terms: Sequence[Expression]) -> Expression:
    """Simplify an AND/OR chain of already-folded terms.

    Neutral literals are dropped anywhere; the absorbing literal
    (FALSE for AND, TRUE for OR) truncates the remaining terms and
    collapses the whole chain only when everything before it is a
    literal (the executor would have short-circuited without touching
    any non-literal term).
    """
    absorbing = op != "AND"
    kept: List[Expression] = []
    prefix_all_literal = True
    for term in terms:
        known, truth = _literal_truth(term)
        if known and truth is not None:
            if truth is not absorbing:
                continue  # neutral term: TRUE in AND, FALSE in OR
            if prefix_all_literal:
                return Literal(absorbing)
            kept.append(Literal(absorbing))
            break  # executor short-circuits here; later terms unreachable
        if not known:
            prefix_all_literal = False
        kept.append(term)
    if not kept:
        return Literal(not absorbing)
    if len(kept) == 1:
        return kept[0]
    return Conjunction(op, tuple(kept))


def _fold_case(expr: CaseExpr) -> Expression:
    whens: List[Tuple[Expression, Expression]] = []
    for condition, result in expr.whens:
        known, truth = _literal_truth(condition)
        if known and truth is not True:
            continue  # literal FALSE/NULL arm can never fire
        if known and truth is True and not whens:
            return result  # first reachable arm always fires
        whens.append((condition, result))
        if known and truth is True:
            break  # later arms are unreachable
    if not whens:
        return expr.default if expr.default is not None else Literal(None)
    if len(whens) == len(expr.whens):
        return expr
    return CaseExpr(whens=tuple(whens), default=expr.default)


def fold_expression(expr: Expression) -> Expression:
    """Recursively fold constant sub-expressions of ``expr``."""
    if isinstance(expr, (Literal, ColumnRef, Star, ExistsOp, ScalarSubquery)):
        return expr
    if isinstance(expr, Conjunction):
        terms = tuple(fold_expression(term) for term in expr.terms)
        folded = _fold_conjunction(expr.op, terms)
        if (
            isinstance(folded, Conjunction)
            and folded.op == expr.op
            and len(folded.terms) == len(expr.terms)
            and all(new is old for new, old in zip(folded.terms, expr.terms))
        ):
            return expr  # nothing changed: keep the shared parsed node
        return folded
    if isinstance(expr, BinaryOp):
        left = fold_expression(expr.left)
        right = fold_expression(expr.right)
        if _is_literal(left) and _is_literal(right):
            folded = _fold_binary(BinaryOp(expr.op, left, right))
            if isinstance(folded, Literal):
                return folded
        if left is expr.left and right is expr.right:
            return expr
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        return _fold_unary(expr)
    if isinstance(expr, BetweenOp):
        value = fold_expression(expr.expr)
        low = fold_expression(expr.low)
        high = fold_expression(expr.high)
        if all(_is_literal(part) for part in (value, low, high)):
            try:
                lower = sql_compare(value.value, low.value)  # type: ignore[union-attr]
                upper = sql_compare(value.value, high.value)  # type: ignore[union-attr]
            except Exception:
                lower = upper = NotImplemented
            if lower is not NotImplemented:
                if lower is None or upper is None:
                    return Literal(None)
                inside = lower >= 0 and upper <= 0
                return Literal(not inside if expr.negated else inside)
        if value is expr.expr and low is expr.low and high is expr.high:
            return expr
        return replace(expr, expr=value, low=low, high=high)
    if isinstance(expr, IsNullOp):
        inner = fold_expression(expr.expr)
        if _is_literal(inner):
            null = inner.value is None  # type: ignore[union-attr]
            return Literal(not null if expr.negated else null)
        if inner is expr.expr:
            return expr
        return replace(expr, expr=inner)
    if isinstance(expr, InOp):
        target = fold_expression(expr.expr)
        options = (
            tuple(fold_expression(option) for option in expr.options)
            if expr.options
            else expr.options
        )
        if (
            expr.subquery is None
            and _is_literal(target)
            and options
            and all(_is_literal(option) for option in options)
        ):
            saw_unknown = False
            verdict: Optional[bool] = False
            for option in options:
                equal = sql_equal(target.value, option.value)  # type: ignore[union-attr]
                if equal is True:
                    verdict = True
                    break
                if equal is None:
                    saw_unknown = True
            if verdict is not True and saw_unknown:
                return Literal(None)
            return Literal(not verdict if expr.negated else verdict)
        if target is expr.expr and options is expr.options:
            return expr
        return replace(expr, expr=target, options=options)
    if isinstance(expr, LikeOp):
        value = fold_expression(expr.expr)
        pattern = fold_expression(expr.pattern)
        if value is expr.expr and pattern is expr.pattern:
            return expr
        return replace(expr, expr=value, pattern=pattern)
    if isinstance(expr, FunctionCall):
        args = tuple(fold_expression(arg) for arg in expr.args)
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return replace(expr, args=args)
    if isinstance(expr, CaseExpr):
        whens = tuple(
            (fold_expression(condition), fold_expression(result))
            for condition, result in expr.whens
        )
        default = (
            fold_expression(expr.default) if expr.default is not None else None
        )
        unchanged = default is expr.default and all(
            new_c is old_c and new_r is old_r
            for (new_c, new_r), (old_c, old_r) in zip(whens, expr.whens)
        )
        folded = _fold_case(CaseExpr(whens=whens, default=default))
        if unchanged and isinstance(folded, CaseExpr) and len(folded.whens) == len(whens):
            return expr
        return folded
    return expr


def _fold_unary(expr: UnaryOp) -> Expression:
    operand = fold_expression(expr.operand)
    if isinstance(operand, Literal):
        if expr.op == "NOT":
            known, truth = _literal_truth(operand)
            if known:
                return Literal(sql_not(truth))
        else:  # unary minus
            value = operand.value
            if value is None:
                return Literal(None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return Literal(-value)
    if operand is expr.operand:
        return expr
    return UnaryOp(expr.op, operand)


# ---------------------------------------------------------------------------
# Subquery-context simplification
# ---------------------------------------------------------------------------

_PRUNABLE_PROJECTION = (ColumnRef, Literal, Star)


def _projections_prunable(select: SelectQuery, context: SelectContext) -> bool:
    """Projections may be replaced by ``1`` without changing errors."""
    for item in select.projections:
        expr = item.expr
        if isinstance(expr, Literal):
            continue
        if isinstance(expr, ColumnRef):
            if referenced_bindings(expr, context):
                continue
            return False
        if isinstance(expr, Star):
            if expr.table is None or context.table(expr.table) is not None:
                continue
            return False
        return False
    return True


def simplify_subquery(select: SelectQuery, schema: Schema, role: str) -> Tuple[SelectQuery, List[str]]:
    """Context-dependent simplification of a nested SELECT.

    ``role`` is ``"exists"``, ``"in"`` or ``"scalar"``.  Returns the
    (possibly) simplified select plus the list of rewrite labels
    applied.  Set operations are left untouched by the caller.
    """
    try:
        context = SelectContext(select, schema)
    except Unplannable:
        return select, []
    applied: List[str] = []
    changes = {}
    no_window = select.limit is None and select.offset is None

    if select.order_by and order_items_statically_safe(select, context):
        droppable = role == "exists" or no_window
        if droppable:
            changes["order_by"] = []
            applied.append("drop-subquery-order-by")

    if role in ("exists", "in") and select.distinct and no_window:
        changes["distinct"] = False
        applied.append("drop-redundant-distinct")

    # Projections may only be pruned when no ORDER BY survives: a kept
    # ORDER BY can reference the projections positionally or by alias,
    # and pruning would then raise errors (position out of range,
    # unresolvable alias) the unoptimized plan never hits.
    order_by_gone = not select.order_by or "order_by" in changes
    if (
        role == "exists"
        and no_window
        and order_by_gone
        and not select.group_by
        and select.having is None
        and not any(contains_aggregate(item.expr) for item in select.projections)
        and not any(contains_aggregate(item.expr) for item in select.order_by)
        and _projections_prunable(select, context)
        and not (len(select.projections) == 1
                 and isinstance(select.projections[0].expr, Literal))
    ):
        changes["projections"] = [SelectItem(Literal(1))]
        applied.append("prune-exists-projection")

    if not changes:
        return select, applied
    simplified = SelectQuery(
        projections=changes.get("projections", select.projections),
        from_table=select.from_table,
        joins=select.joins,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=changes.get("order_by", select.order_by),
        limit=select.limit,
        offset=select.offset,
        distinct=changes.get("distinct", select.distinct),
    )
    return simplified, applied


def drop_redundant_distinct(
    select: SelectQuery, context: SelectContext
) -> Optional[SelectQuery]:
    """DISTINCT is a no-op when the single scanned table's full primary
    key appears among the projected columns (rows are already unique).
    """
    if not select.distinct or select.joins or select.from_table is None:
        return None
    if select.group_by or select.having is not None:
        return None
    if any(contains_aggregate(item.expr) for item in select.projections):
        return None
    table = context.table(select.from_table.binding)
    if table is None:
        return None
    pk = [name.lower() for name in table.primary_key_columns]
    if not pk:
        return None
    projected = set()
    for item in select.projections:
        expr = item.expr
        if isinstance(expr, Star) and (
            expr.table is None
            or expr.table.lower() == select.from_table.binding.lower()
        ):
            projected.update(name.lower() for name in table.column_names)
        elif isinstance(expr, ColumnRef):
            if referenced_bindings(expr, context):
                projected.add(expr.column.lower())
    if not all(name in projected for name in pk):
        return None
    rebuilt = SelectQuery(
        projections=select.projections,
        from_table=select.from_table,
        joins=select.joins,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=False,
    )
    return rebuilt


# ---------------------------------------------------------------------------
# Correlated-subquery decorrelation
# ---------------------------------------------------------------------------
#
# A correlated EXISTS / IN conjunct re-executes its subquery once per
# outer row — O(outer × inner).  When the correlation is a conjunction
# of simple equalities over exactly-hashable types, the same 3VL
# verdict can be computed per outer row from a hash table built once
# over the inner table: a *hash semi/anti-join*.  Eligibility is
# deliberately conservative:
#
# * the inner query is a single-table SELECT core — no joins, grouping,
#   aggregates, HAVING or LIMIT/OFFSET; DISTINCT and statically-safe
#   ORDER BY are semantics-free in EXISTS/IN position and are removed
#   by :func:`simplify_subquery` first (keeping its rewrite labels);
# * every inner WHERE conjunct is either local to the inner binding and
#   provably non-raising, or a correlation equality
#   ``inner_column = outer_expr`` whose sides both have an *exact* hash
#   type ({int, text, bool} — REAL is excluded because
#   ``normalize_for_comparison`` rounds floats while ``sql_equal``
#   compares them exactly);
# * removing the conjunct leaves every remaining WHERE conjunct
#   provably non-raising, so the change in how often each one is
#   evaluated (the semi-join filters frames *before* WHERE) can never
#   make a runtime error appear or vanish.

_EXACT_HASH_TYPES = {
    SqlType.INTEGER: "int",
    SqlType.TEXT: "text",
    SqlType.BOOLEAN: "bool",
}


@dataclass
class SemiJoinSpec:
    """One decorrelated EXISTS/IN conjunct as a hash semi/anti-join.

    The executor builds ``groups`` over the inner ``table`` once per
    data version — ``{normalized key: [match count, NULL count,
    normalized IN values]}`` — and keeps an outer frame iff the 3VL
    verdict of the original conjunct is TRUE (see
    ``Executor._semi_keep``).
    """

    table: str
    binding: str
    #: correlation equalities as (outer probe expression, inner column)
    keys: Tuple[Tuple[Expression, str], ...]
    #: inner-only residual predicate (provably non-raising), or None
    where: Optional[Expression]
    anti: bool
    #: the IN value expression + projected inner column (None for EXISTS)
    in_probe: Optional[Expression] = None
    in_column: Optional[str] = None
    #: inner table cardinality at plan time (EXPLAIN annotation only)
    rows: int = 0
    label: str = "exists"
    #: runtime group cache: (TableData, version, groups) — version-checked
    cache: Optional[tuple] = field(default=None, compare=False, repr=False)


def _conjunction_terms(expr: Optional[Expression]) -> List[Expression]:
    if expr is None:
        return []
    if isinstance(expr, Conjunction) and expr.op == "AND":
        terms: List[Expression] = []
        for term in expr.terms:
            terms.extend(_conjunction_terms(term))
        return terms
    return [expr]


def _rebuild_conjunction(terms: Sequence[Expression]) -> Optional[Expression]:
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return Conjunction("AND", tuple(terms))


def _exact_hash_class(expr: Expression, context: SelectContext) -> Optional[str]:
    """Hash-key type of ``expr``: "int", "text", "bool", "null" or None.

    ``None`` means the value is not provably hash-exact — either its
    type is unknown, or it is a REAL/float whose
    ``normalize_for_comparison`` rounding diverges from ``sql_equal``.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, int):
            return "int"
        if isinstance(value, str):
            return "text"
        return None
    if isinstance(expr, ColumnRef):
        refs = referenced_bindings(expr, context)
        if not refs:
            return None
        (binding,) = refs
        table = context.table(binding)
        column = table.column(expr.column) if table is not None else None
        if column is None:
            return None
        return _EXACT_HASH_TYPES.get(column.sql_type)
    return None


def _mentions_inner_scope(expr: Expression, inner_key: str, inner_table: Table) -> bool:
    """True when any part of ``expr`` could resolve inside the subquery."""
    if contains_subquery(expr):
        return True
    for node in expr.walk():
        if isinstance(node, Star):
            return True
        if not isinstance(node, ColumnRef):
            continue
        if node.table is not None:
            if node.table.lower() == inner_key:
                return True
        elif inner_table.has_column(node.column):
            return True  # unqualified: the inner scope would shadow the outer
    return False


def _correlation_pair(
    term: Expression,
    inner_key: str,
    inner_table: Table,
    inner_context: SelectContext,
    outer_context: SelectContext,
) -> Optional[Tuple[Expression, str]]:
    """Match ``inner_column = outer_expr`` (either side order)."""
    if not (isinstance(term, BinaryOp) and term.op == "="):
        return None
    for inner_side, outer_side in ((term.left, term.right), (term.right, term.left)):
        if not isinstance(inner_side, ColumnRef):
            continue
        if referenced_bindings(inner_side, inner_context) != {inner_key}:
            continue
        inner_class = _exact_hash_class(inner_side, inner_context)
        if inner_class in (None, "null"):
            continue
        if _mentions_inner_scope(outer_side, inner_key, inner_table):
            continue
        outer_class = _exact_hash_class(outer_side, outer_context)
        if outer_class is None:
            continue
        if outer_class not in ("null", inner_class):
            continue
        return outer_side, inner_side.column
    return None


def try_decorrelate(
    term: Expression, context: SelectContext, schema: Schema
) -> Optional[Tuple[SemiJoinSpec, List[str]]]:
    """Turn one WHERE conjunct into a :class:`SemiJoinSpec`, or bail.

    Returns ``(spec, rewrite labels)`` — the labels include whatever
    :func:`simplify_subquery` applied to the inner select on the way.
    """
    anti = False
    expr = term
    while isinstance(expr, UnaryOp) and expr.op == "NOT":
        # NOT flips TRUE/FALSE and fixes UNKNOWN, exactly like the
        # executor's sql_not — a parity flip of the anti flag.
        anti = not anti
        expr = expr.operand
    if isinstance(expr, ExistsOp):
        subquery, in_probe = expr.subquery, None
        anti = anti != expr.negated
    elif isinstance(expr, InOp) and expr.subquery is not None and not expr.options:
        subquery, in_probe = expr.subquery, expr.expr
        anti = anti != expr.negated
    else:
        return None
    if not isinstance(subquery, SelectQuery):
        return None  # set operations stay correlated
    if (
        subquery.from_table is None
        or subquery.joins
        or subquery.group_by
        or subquery.having is not None
        or subquery.limit is not None
        or subquery.offset is not None
    ):
        return None
    role = "exists" if in_probe is None else "in"
    inner, labels = simplify_subquery(subquery, schema, role)
    if inner.order_by:
        return None  # ORDER BY not statically droppable — stays correlated
    try:
        inner_context = SelectContext(inner, schema)
    except Unplannable:
        return None
    inner_key = inner.from_table.binding.lower()
    inner_table = inner_context.table(inner_key)
    if inner_table is None:
        return None
    in_column: Optional[str] = None
    if in_probe is not None:
        if len(inner.projections) != 1:
            return None
        projection = inner.projections[0].expr
        if not isinstance(projection, ColumnRef):
            return None
        if referenced_bindings(projection, inner_context) != {inner_key}:
            return None
        inner_class = _exact_hash_class(projection, inner_context)
        probe_class = _exact_hash_class(in_probe, context)
        if inner_class in (None, "null") or probe_class is None:
            return None
        if probe_class not in ("null", inner_class):
            return None
        in_column = projection.column
    elif not _projections_prunable(inner, inner_context):
        return None  # projection could raise (or resolves outward) — bail
    keys: List[Tuple[Expression, str]] = []
    local: List[Expression] = []
    for conjunct in _conjunction_terms(inner.where):
        refs = referenced_bindings(conjunct, inner_context)
        if refs is not None and cannot_raise_predicate(conjunct, inner_context):
            local.append(conjunct)
            continue
        pair = _correlation_pair(
            conjunct, inner_key, inner_table, inner_context, context
        )
        if pair is None:
            return None
        keys.append(pair)
    spec = SemiJoinSpec(
        table=inner_table.name,
        binding=inner.from_table.binding,
        keys=tuple(keys),
        where=_rebuild_conjunction(local),
        anti=anti,
        in_probe=in_probe,
        in_column=in_column,
        label=role,
    )
    shape = "in" if in_probe is not None else "exists"
    labels = list(labels)
    labels.append(f"decorrelate-{'not-' if anti else ''}{shape}")
    return spec, labels


def decorrelate_where(
    where: Optional[Expression], context: SelectContext, schema: Schema
) -> Optional[Tuple[Optional[Expression], List[SemiJoinSpec], List[str]]]:
    """Decorrelate every eligible top-level WHERE conjunct.

    Returns ``(residual where, specs, labels)`` or ``None`` when
    nothing was decorrelated.  All-or-nothing on safety: if any
    *residual* conjunct could raise, the rewrite is abandoned so the
    original short-circuit evaluation (and its errors) is preserved.
    """
    if where is None:
        return None
    residual: List[Expression] = []
    specs: List[SemiJoinSpec] = []
    labels: List[str] = []
    for term in _conjunction_terms(where):
        attempt = try_decorrelate(term, context, schema)
        if attempt is None:
            residual.append(term)
        else:
            specs.append(attempt[0])
            labels.extend(attempt[1])
    if not specs:
        return None
    if not all(cannot_raise_predicate(term, context) for term in residual):
        return None
    return _rebuild_conjunction(residual), specs, labels
