"""Cost-based query optimizer for the in-memory SQL engine.

Four cooperating modules:

* :mod:`~repro.sqlengine.optimizer.stats` — lazily maintained
  per-table cardinalities and per-column NDV/min-max/null-fraction
  summaries, invalidated by the storage mutation epoch;
* :mod:`~repro.sqlengine.optimizer.rewrites` — semantics-preserving
  logical rewrites (constant folding, subquery simplification,
  redundant-DISTINCT elimination);
* :mod:`~repro.sqlengine.optimizer.planner` — predicate pushdown and
  greedy cost-based join ordering, emitting an annotated
  :class:`PlannedSelect` the executor runs unchanged;
* :mod:`~repro.sqlengine.optimizer.explain` — the stable textual plan
  behind ``Database.explain(sql)``.

The correctness contract: for every query, optimized and unoptimized
execution return identical results (identical up to the row order of
queries that never specified one) — enforced differentially against
the full benchmark, seeded morph chains and sqlite3 by
``tests/sqlengine/test_optimizer_differential.py``.
"""

from .explain import explain_plan
from .planner import (
    Estimator,
    JoinNote,
    PhysicalPlan,
    PlannedSelect,
    ScanNote,
    SelectNotes,
    optimize_query,
)
from .rewrites import fold_expression, simplify_subquery
from .stats import ColumnStats, StatsManager, TableStats, profile_table

__all__ = [
    "ColumnStats",
    "Estimator",
    "JoinNote",
    "PhysicalPlan",
    "PlannedSelect",
    "ScanNote",
    "SelectNotes",
    "StatsManager",
    "TableStats",
    "explain_plan",
    "fold_expression",
    "optimize_query",
    "profile_table",
    "simplify_subquery",
]
