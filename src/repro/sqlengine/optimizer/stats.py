"""Table and column statistics for the cost-based optimizer.

The collector derives, per table, the row count and per-column
summaries — number of distinct values (NDV), null fraction, minimum and
maximum — straight from :class:`~repro.sqlengine.storage.Storage`.
Statistics are computed lazily on first use and cached per table keyed
on the table's mutation ``version`` (bumped by every insert and
FK-rollback), so a mutated table is re-profiled on its next optimized
query while untouched tables keep their summaries.  ``epoch()`` exposes
the storage-wide mutation counter that cached optimized plans carry for
invalidation (see ``Database._plan_for``).

All numbers are *estimates for costing only*: the executor never reads
them, so a stale or clamped statistic can produce a worse join order
but never a wrong result.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..storage import Storage, TableData


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one column's value distribution."""

    name: str
    ndv: int
    null_fraction: float
    minimum: Any = None
    maximum: Any = None

    def range_fraction(self, low: Any, high: Any) -> Optional[float]:
        """Fraction of the [min, max] span covered by [low, high].

        ``None`` when the column is non-numeric or constant — callers
        fall back to a default selectivity.
        """
        if not _is_number(self.minimum) or not _is_number(self.maximum):
            return None
        span = self.maximum - self.minimum
        if span <= 0:
            return None
        if not _is_number(low) or not _is_number(high):
            return None
        lo = max(float(low), float(self.minimum))
        hi = min(float(high), float(self.maximum))
        if hi < lo:
            return 0.0
        return (hi - lo) / span


@dataclass(frozen=True)
class TableStats:
    """Cardinality plus per-column summaries for one table."""

    table: str
    row_count: int
    columns: Mapping[str, ColumnStats]
    version: int

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def profile_table(data: TableData) -> TableStats:
    """One pass over ``data`` computing all column summaries."""
    columns: Dict[str, ColumnStats] = {}
    total = len(data.rows)
    for position, column in enumerate(data.table.columns):
        values = [row[position] for row in data.rows]
        non_null = [value for value in values if value is not None]
        null_fraction = 1.0 - (len(non_null) / total) if total else 0.0
        ndv = len(set(non_null))
        minimum = maximum = None
        if non_null:
            try:
                minimum = min(non_null)
                maximum = max(non_null)
            except TypeError:  # pragma: no cover - heterogeneous column
                minimum = maximum = None
        columns[column.name.lower()] = ColumnStats(
            name=column.name,
            ndv=ndv,
            null_fraction=null_fraction,
            minimum=minimum,
            maximum=maximum,
        )
    return TableStats(
        table=data.table.name,
        row_count=total,
        columns=columns,
        version=data.version,
    )


class StatsManager:
    """Lazily maintained statistics over one storage instance.

    Thread-safe: grid workers share databases, so a cold profile build
    is serialized per manager (the build itself is a read-only pass
    over the row list, which inserts only append to).
    """

    def __init__(self, storage: Storage) -> None:
        self.storage = storage
        self._cache: Dict[str, TableStats] = {}
        self._lock = threading.Lock()
        self.builds = 0  # number of table profiles computed (observability)

    def epoch(self) -> int:
        """The storage-wide mutation counter (see ``Storage.data_epoch``)."""
        return self.storage.data_epoch()

    def table_stats(self, table_name: str) -> TableStats:
        """Current statistics for ``table_name`` (profiled on demand)."""
        data = self.storage.data(table_name)
        key = table_name.lower()
        cached = self._cache.get(key)
        if cached is not None and cached.version == data.version:
            return cached
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None and cached.version == data.version:
                return cached
            stats = profile_table(data)
            self._cache[key] = stats
            self.builds += 1
            return stats

    def column_stats(self, table_name: str, column: str) -> Optional[ColumnStats]:
        return self.table_stats(table_name).column(column)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def snapshot(self) -> Tuple[Tuple[str, int], ...]:
        """(table, cached row count) pairs — debug/EXPLAIN support."""
        with self._lock:
            return tuple(
                (stats.table, stats.row_count) for stats in self._cache.values()
            )
