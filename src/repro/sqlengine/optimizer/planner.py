"""Cost-based planning: predicate pushdown and greedy join ordering.

The planner turns a parsed :class:`~repro.sqlengine.ast_nodes.SelectQuery`
into a :class:`PlannedSelect` — a drop-in ``SelectQuery`` subclass the
executor runs unchanged, carrying two physical additions:

* ``scan_filters`` — single-binding WHERE conjuncts pushed down to the
  FROM-table scan, so frames that cannot survive the WHERE clause never
  enter the join pipeline;
* a join list rewritten in a cost-chosen order, with pushed conjuncts
  folded into the ON conditions (the executor's equi-condition splitter
  turns ``col = literal`` terms into hash-index key columns for free).

Safety is the organizing principle: every transformation either
provably commutes with the original evaluation order or is skipped.
The bail-out conditions are spelled out on each pass; when *anything*
cannot be statically resolved the select is planned as the identity
(annotated but untransformed), so invalid queries keep their exact
runtime errors.

Cardinality estimation follows the classic System-R recipe over the
:mod:`~repro.sqlengine.optimizer.stats` summaries: equality selects
``1/NDV``, ranges interpolate min/max, equi-joins select
``1/max(NDV_left, NDV_right)``.  Estimates only ever change *speed*,
never results — the executor does not read them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ast_nodes import (
    BetweenOp,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Conjunction,
    ExistsOp,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    QueryNode,
    ScalarSubquery,
    SelectQuery,
    SetOperation,
    Star,
    TableRef,
    UnaryOp,
)
from ..catalog import Schema
from .rewrites import (
    SelectContext,
    SemiJoinSpec,
    Unplannable,
    _exact_hash_class,
    _value_class,
    cannot_raise_predicate,
    decorrelate_where,
    drop_redundant_distinct,
    fold_expression,
    referenced_bindings,
    simplify_subquery,
)
from .stats import StatsManager

#: selectivity defaults (textbook values) when statistics cannot decide
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: an index scan must be at least this selective to beat the plain
#: in-memory scan (probing + position re-sorting has overhead)
INDEX_SCAN_SELECTIVITY = 0.25


# ---------------------------------------------------------------------------
# Plan node types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanNote:
    """EXPLAIN annotation for the FROM-table scan."""

    table: str
    binding: str
    rows: int
    pushed: Optional[Expression]
    est_rows: int
    #: "column (hash)" / "column (sorted)" when an index scan was chosen
    index: Optional[str] = None


@dataclass(frozen=True)
class IndexScan:
    """A secondary-index access path for the FROM-table scan.

    The executor fetches candidate rows from the named index instead of
    scanning the full table, then applies the *complete* pushed filter
    to the candidates — the index only ever narrows the rows the
    (provably non-raising) filter evaluates, so results are identical
    to the full scan by construction.
    """

    binding: str
    table: str
    column: str
    kind: str  # "hash" | "sorted"
    op: str  # "=", "<", "<=", ">", ">=", "between"
    values: Tuple[object, ...]
    selectivity: float


@dataclass(frozen=True)
class JoinNote:
    """EXPLAIN annotation for one join step."""

    table: str
    binding: str
    kind: str  # "hash" | "nested" | "left" | "cross"
    rows: int
    est_rows: Optional[int] = None  # estimated frames flowing out of this step


@dataclass(frozen=True)
class SelectNotes:
    """What the planner did to one SELECT core."""

    scan: Optional[ScanNote]
    joins: Tuple[JoinNote, ...]
    pushed_predicates: int
    reordered: bool
    rewrites: Tuple[str, ...]


@dataclass
class PlannedSelect(SelectQuery):
    """A SELECT core with physical planning attached.

    The executor treats it exactly as a ``SelectQuery`` except for
    ``scan_filters`` (applied while scanning the FROM table); the
    ``notes`` exist only for EXPLAIN and observability.
    """

    scan_filters: Dict[str, Expression] = field(default_factory=dict)
    #: decorrelated EXISTS/IN conjuncts, applied between FROM and WHERE
    semi_joins: Tuple[SemiJoinSpec, ...] = ()
    #: binding (lowercase) -> index access path for the FROM scan
    index_scans: Dict[str, IndexScan] = field(default_factory=dict)
    #: ORDER BY + LIMIT: only the first ``top_k`` sorted rows are needed
    top_k: Optional[int] = None
    notes: Optional[SelectNotes] = None


@dataclass(frozen=True)
class PhysicalPlan:
    """What the plan cache stores: source AST + planned tree + epoch."""

    root: QueryNode
    source: QueryNode
    stats_epoch: int
    rewrites: Tuple[str, ...]


# ---------------------------------------------------------------------------
# Selectivity estimation
# ---------------------------------------------------------------------------


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


def _single_column(expr: Expression, context: SelectContext, binding: str) -> Optional[str]:
    """The column name if ``expr`` is a reference into ``binding``."""
    if isinstance(expr, ColumnRef):
        refs = referenced_bindings(expr, context)
        if refs == {binding}:
            if expr.table is not None:
                return expr.column
            return expr.column
    return None


class Estimator:
    """Selectivity/cardinality estimates for one SELECT core."""

    def __init__(self, context: SelectContext, stats: StatsManager) -> None:
        self.context = context
        self.stats = stats

    def table_rows(self, binding: str) -> int:
        table = self.context.table(binding)
        if table is None:
            return 0
        return self.stats.table_stats(table.name).row_count

    def _column_stats(self, binding: str, column: str):
        table = self.context.table(binding)
        if table is None or not table.has_column(column):
            return None
        return self.stats.column_stats(table.name, column)

    def predicate_selectivity(self, expr: Expression, binding: str) -> float:
        """Estimated fraction of ``binding`` rows satisfying ``expr``."""
        if isinstance(expr, Conjunction):
            parts = [
                self.predicate_selectivity(term, binding) for term in expr.terms
            ]
            if expr.op == "AND":
                product = 1.0
                for part in parts:
                    product *= part
                return _clamp(product)
            miss = 1.0
            for part in parts:
                miss *= 1.0 - part
            return _clamp(1.0 - miss)
        if isinstance(expr, UnaryOp) and expr.op == "NOT":
            return _clamp(1.0 - self.predicate_selectivity(expr.operand, binding))
        if isinstance(expr, BinaryOp) and expr.op in ("=", "<>", "<", "<=", ">", ">="):
            column = _single_column(expr.left, self.context, binding)
            literal = expr.right if isinstance(expr.right, Literal) else None
            if column is None:
                column = _single_column(expr.right, self.context, binding)
                literal = expr.left if isinstance(expr.left, Literal) else None
            if column is None:
                return DEFAULT_SELECTIVITY
            stats = self._column_stats(binding, column)
            if expr.op == "=":
                if stats is not None and stats.ndv > 0:
                    return _clamp(1.0 / stats.ndv)
                return DEFAULT_EQ_SELECTIVITY
            if expr.op == "<>":
                if stats is not None and stats.ndv > 0:
                    return _clamp(1.0 - 1.0 / stats.ndv)
                return 1.0 - DEFAULT_EQ_SELECTIVITY
            if stats is not None and literal is not None:
                value = literal.value
                fraction = None
                if expr.op in ("<", "<="):
                    fraction = stats.range_fraction(stats.minimum, value)
                elif expr.op in (">", ">="):
                    fraction = stats.range_fraction(value, stats.maximum)
                if fraction is not None:
                    return _clamp(fraction)
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(expr, BetweenOp):
            column = _single_column(expr.expr, self.context, binding)
            if (
                column is not None
                and isinstance(expr.low, Literal)
                and isinstance(expr.high, Literal)
            ):
                stats = self._column_stats(binding, column)
                if stats is not None:
                    fraction = stats.range_fraction(expr.low.value, expr.high.value)
                    if fraction is not None:
                        selectivity = _clamp(fraction)
                        return _clamp(1.0 - selectivity) if expr.negated else selectivity
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(expr, IsNullOp):
            column = _single_column(expr.expr, self.context, binding)
            if column is not None:
                stats = self._column_stats(binding, column)
                if stats is not None:
                    fraction = _clamp(stats.null_fraction)
                    return _clamp(1.0 - fraction) if expr.negated else fraction
            return DEFAULT_EQ_SELECTIVITY
        if isinstance(expr, InOp) and expr.options is not None:
            column = _single_column(expr.expr, self.context, binding)
            if column is not None:
                stats = self._column_stats(binding, column)
                if stats is not None and stats.ndv > 0:
                    fraction = _clamp(len(expr.options) / stats.ndv)
                    return _clamp(1.0 - fraction) if expr.negated else fraction
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(expr, LikeOp):
            return DEFAULT_LIKE_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def join_selectivity(self, condition: Expression, bindings: Set[str]) -> float:
        """Selectivity of an equi-join condition between placed bindings."""
        terms = (
            list(condition.terms)
            if isinstance(condition, Conjunction) and condition.op == "AND"
            else [condition]
        )
        selectivity = 1.0
        for term in terms:
            if (
                isinstance(term, BinaryOp)
                and term.op == "="
                and isinstance(term.left, ColumnRef)
                and isinstance(term.right, ColumnRef)
            ):
                ndvs = []
                for ref in (term.left, term.right):
                    refs = referenced_bindings(ref, self.context)
                    if refs and len(refs) == 1:
                        (owner,) = refs
                        stats = self._column_stats(owner, ref.column)
                        if stats is not None and stats.ndv > 0:
                            ndvs.append(stats.ndv)
                selectivity *= 1.0 / max(ndvs) if ndvs else DEFAULT_EQ_SELECTIVITY
            else:
                selectivity *= DEFAULT_SELECTIVITY
        return _clamp(selectivity)


# ---------------------------------------------------------------------------
# Predicate pushdown
# ---------------------------------------------------------------------------


def _conjuncts(expr: Optional[Expression]) -> List[Expression]:
    if expr is None:
        return []
    if isinstance(expr, Conjunction) and expr.op == "AND":
        return list(expr.terms)
    return [expr]


def _and_together(terms: Sequence[Expression]) -> Optional[Expression]:
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return Conjunction("AND", tuple(terms))


def _pushable_bindings(select: SelectQuery) -> Set[str]:
    """Bindings safe to receive pushed predicates.

    The FROM table and every INNER/CROSS-joined table qualify; the
    nullable side of a LEFT join never does (a pushed predicate would
    suppress the NULL-extended row that WHERE would have seen).
    """
    allowed: Set[str] = set()
    if select.from_table is not None:
        allowed.add(select.from_table.binding.lower())
    for join in select.joins:
        if join.kind in (JoinKind.INNER, JoinKind.CROSS):
            allowed.add(join.table.binding.lower())
    return allowed


def push_predicates(
    select: SelectQuery, context: SelectContext
) -> Tuple[SelectQuery, Dict[str, Expression], int]:
    """Move single-binding WHERE conjuncts toward their tables.

    Returns ``(rewritten select, scan filters, pushed count)``.  WHERE
    keeps frames where the predicate is TRUE; a scan filter and an
    ON-condition term keep rows under exactly the same ``_truthy``
    test, and filtering earlier commutes with every later (inner or
    left) join because joins act frame-by-frame.  Conjuncts containing
    subqueries, outer references, stars or ambiguous names stay put —
    as does anything :func:`cannot_raise_predicate` cannot prove
    error-free, because moving a predicate changes how often it is
    evaluated and must never make a runtime error appear or vanish.
    """
    if select.where is None or select.from_table is None:
        return select, {}, 0
    allowed = _pushable_bindings(select)
    if not allowed:
        return select, {}, 0
    residual: List[Expression] = []
    pushed: Dict[str, List[Expression]] = {}
    for conjunct in _conjuncts(select.where):
        refs = referenced_bindings(conjunct, context)
        if refs is not None and len(refs) == 1:
            (binding,) = refs
            if binding in allowed and cannot_raise_predicate(conjunct, context):
                pushed.setdefault(binding, []).append(conjunct)
                continue
        residual.append(conjunct)
    if not pushed:
        return select, {}, 0
    pushed_count = sum(len(terms) for terms in pushed.values())
    scan_filters: Dict[str, Expression] = {}
    from_key = select.from_table.binding.lower()
    if from_key in pushed:
        scan_filters[from_key] = _and_together(pushed.pop(from_key))
    joins: List[Join] = []
    for join in select.joins:
        key = join.table.binding.lower()
        extra = pushed.pop(key, None)
        if extra is None:
            joins.append(join)
            continue
        terms = ([] if join.condition is None else [join.condition]) + extra
        joins.append(Join(JoinKind.INNER, join.table, _and_together(terms)))
    rewritten = SelectQuery(
        projections=select.projections,
        from_table=select.from_table,
        joins=joins,
        where=_and_together(residual),
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )
    return rewritten, scan_filters, pushed_count


# ---------------------------------------------------------------------------
# Index-scan access-path selection
# ---------------------------------------------------------------------------

_FLIPPED_OPS = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _index_candidate(
    term: Expression, binding: str, context: SelectContext
) -> Optional[Tuple[str, str, str, Tuple[object, ...]]]:
    """``(column, kind, op, values)`` when ``term`` is index-servable.

    Equality terms use the hash index and require *exact* hash types on
    both sides (the hash key normalization must agree with
    ``sql_equal`` — {int, text, bool}, never REAL).  Range/BETWEEN
    terms use the sorted index and require both sides in the same
    ``sql_compare``-total class ("number" or "text"), where
    ``sort_key`` order coincides with ``sql_compare`` order.
    """
    if isinstance(term, BinaryOp) and term.op in _FLIPPED_OPS:
        for column_side, value_side, op in (
            (term.left, term.right, term.op),
            (term.right, term.left, _FLIPPED_OPS[term.op]),
        ):
            if not isinstance(column_side, ColumnRef):
                continue
            if not isinstance(value_side, Literal):
                continue
            if referenced_bindings(column_side, context) != {binding}:
                continue
            if op == "=":
                column_class = _exact_hash_class(column_side, context)
                if column_class in (None, "null"):
                    continue
                if _exact_hash_class(value_side, context) != column_class:
                    continue
                return column_side.column, "hash", "=", (value_side.value,)
            column_class = _value_class(column_side, context)
            if column_class not in ("number", "text"):
                continue
            if _value_class(value_side, context) != column_class:
                continue
            return column_side.column, "sorted", op, (value_side.value,)
    if (
        isinstance(term, BetweenOp)
        and not term.negated
        and isinstance(term.expr, ColumnRef)
        and isinstance(term.low, Literal)
        and isinstance(term.high, Literal)
        and referenced_bindings(term.expr, context) == {binding}
    ):
        column_class = _value_class(term.expr, context)
        if column_class in ("number", "text") and all(
            _value_class(bound, context) == column_class
            for bound in (term.low, term.high)
        ):
            return term.expr.column, "sorted", "between", (
                term.low.value,
                term.high.value,
            )
    return None


def choose_index_scan(
    pushed: Expression,
    binding: str,
    context: SelectContext,
    estimator: Estimator,
) -> Optional[IndexScan]:
    """Pick the most selective index-servable conjunct of the pushed
    scan filter, or None when no conjunct beats the plain scan."""
    table = context.table(binding)
    if table is None:
        return None
    best: Optional[IndexScan] = None
    for term in _conjuncts(pushed):
        candidate = _index_candidate(term, binding, context)
        if candidate is None:
            continue
        selectivity = estimator.predicate_selectivity(term, binding)
        if selectivity > INDEX_SCAN_SELECTIVITY:
            continue
        if best is None or selectivity < best.selectivity:
            column, kind, op, values = candidate
            best = IndexScan(
                binding=binding,
                table=table.name,
                column=column,
                kind=kind,
                op=op,
                values=values,
                selectivity=selectivity,
            )
    return best


# ---------------------------------------------------------------------------
# Join ordering
# ---------------------------------------------------------------------------


def _may_reorder(select: SelectQuery) -> bool:
    """Join commutation is applied only where it provably cannot be
    observed: all-INNER join pipelines (LEFT is order-sensitive and a
    CROSS join carries no condition to reattach), no unqualified ``*``
    (its column order follows the join order), and no LIMIT/OFFSET at
    all (which rows survive an unsorted — or tie-broken — cut depends
    on join enumeration order).
    """
    if not select.joins or select.from_table is None:
        return False
    if select.limit is not None or select.offset is not None:
        return False
    if any(join.kind is not JoinKind.INNER or join.condition is None
           for join in select.joins):
        return False
    if any(isinstance(item.expr, Star) and item.expr.table is None
           for item in select.projections):
        return False
    return True


def order_joins(
    select: SelectQuery,
    context: SelectContext,
    estimator: Estimator,
    scan_filters: Dict[str, Expression],
) -> Tuple[SelectQuery, List[JoinNote], Optional[ScanNote], bool]:
    """Greedy cost-based join ordering (System-R style, greedy not DP).

    Nodes are FROM-clause bindings; each original ON condition is an
    edge requiring all referenced bindings to be placed.  Start from
    the smallest filtered table, then repeatedly join the table whose
    attachment minimizes the estimated intermediate cardinality.
    Bails (returns the original order) whenever a condition cannot be
    attributed to bindings or the graph is disconnected.
    """
    bindings: Dict[str, TableRef] = {}
    if select.from_table is not None:
        bindings[select.from_table.binding.lower()] = select.from_table
    for join in select.joins:
        bindings[join.table.binding.lower()] = join.table

    # Estimated starting cardinality per binding (after pushed filters).
    base_rows: Dict[str, float] = {}
    for key in bindings:
        rows = float(estimator.table_rows(key))
        pushed = scan_filters.get(key)
        if pushed is not None:
            rows *= estimator.predicate_selectivity(pushed, key)
        base_rows[key] = max(rows, 1.0)

    # Edges: (condition, referenced binding set); every condition must
    # statically resolve to local bindings — and be provably unable to
    # raise, since reordering changes how many (frame, row) pairs each
    # condition is evaluated on — or we keep the parsed order.
    edges: List[Tuple[Expression, Set[str]]] = []
    for join in select.joins:
        refs = referenced_bindings(join.condition, context)
        if refs is None or not refs:
            return select, [], None, False
        if not cannot_raise_predicate(join.condition, context):
            return select, [], None, False
        edges.append((join.condition, set(refs)))

    placed: List[str] = []
    placed_set: Set[str] = set()
    remaining_edges = list(edges)
    order: List[Tuple[str, List[Expression]]] = []  # (binding, conditions)

    start = min(bindings, key=lambda key: base_rows[key])
    placed.append(start)
    placed_set.add(start)

    current = base_rows[start]
    notes: List[JoinNote] = []
    while len(placed) < len(bindings):
        best: Optional[Tuple[float, str, List[Expression]]] = None
        for candidate in bindings:
            if candidate in placed_set:
                continue
            attachable = [
                (condition, refs)
                for condition, refs in remaining_edges
                if refs <= placed_set | {candidate} and candidate in refs
            ]
            if not attachable:
                continue
            selectivity = 1.0
            for condition, refs in attachable:
                selectivity *= estimator.join_selectivity(condition, refs)
            estimate = current * base_rows[candidate] * selectivity
            if best is None or estimate < best[0]:
                best = (estimate, candidate, [c for c, _ in attachable])
        if best is None:
            return select, [], None, False  # disconnected: keep parsed order
        estimate, chosen, conditions = best
        placed.append(chosen)
        placed_set.add(chosen)
        remaining_edges = [
            (condition, refs)
            for condition, refs in remaining_edges
            if not refs <= placed_set
        ]
        order.append((chosen, conditions))
        current = max(estimate, 1.0)
        notes.append(
            JoinNote(
                table=bindings[chosen].table,
                binding=bindings[chosen].binding,
                kind="hash",
                rows=estimator.table_rows(chosen),
                est_rows=int(round(current)),
            )
        )
    if remaining_edges:
        return select, [], None, False  # a condition never became coverable

    start_key = placed[0]
    new_from = bindings[start_key]
    # Two filter relocations around the new order:
    # * a binding demoted from FROM to a join takes its pushed scan
    #   filter with it — ANDed into the join condition, where the
    #   equi-splitter evaluates it per matched row;
    # * ON conjuncts that reference only the new FROM binding hoist
    #   into its scan filter, so base rows are dropped before any
    #   probing (everything here already passed cannot_raise_predicate).
    hoisted: List[Expression] = []
    new_joins = []
    for key, conditions in order:
        displaced = scan_filters.pop(key, None)
        if displaced is not None:
            conditions = conditions + [displaced]
        kept_terms: List[Expression] = []
        for condition in conditions:
            for term in _conjuncts(condition):
                if referenced_bindings(term, context) == {start_key}:
                    hoisted.append(term)
                else:
                    kept_terms.append(term)
        new_joins.append(
            Join(JoinKind.INNER, bindings[key], _and_together(kept_terms))
        )
    if hoisted:
        existing = scan_filters.get(start_key)
        terms = ([existing] if existing is not None else []) + hoisted
        scan_filters[start_key] = _and_together(terms)
    reordered = new_from is not select.from_table or any(
        new.table is not old.table or new.condition is not old.condition
        for new, old in zip(new_joins, select.joins)
    )
    rebuilt = SelectQuery(
        projections=select.projections,
        from_table=new_from,
        joins=new_joins,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )
    scan_key = new_from.binding.lower()
    scan_rows = estimator.table_rows(scan_key)
    final_filter = scan_filters.get(scan_key)
    est_rows = scan_rows
    if final_filter is not None:
        est_rows = int(
            round(scan_rows * estimator.predicate_selectivity(final_filter, scan_key))
        )
    scan_note = ScanNote(
        table=new_from.table,
        binding=new_from.binding,
        rows=scan_rows,
        pushed=final_filter,
        est_rows=est_rows,
    )
    return rebuilt, notes, scan_note, reordered


# ---------------------------------------------------------------------------
# Per-select planning pipeline
# ---------------------------------------------------------------------------


class Planner:
    """Plans whole query trees against one schema + statistics set."""

    def __init__(self, schema: Schema, stats: StatsManager) -> None:
        self.schema = schema
        self.stats = stats

    # -- expression recursion (optimizes nested subqueries) -----------------
    def _plan_expression(self, expr: Expression, applied: List[str]) -> Expression:
        """Rebuild ``expr`` with every nested subquery planned.

        Nodes without subqueries below them are returned as-is (object
        identity is preserved so unchanged plans share the parsed AST).
        """
        if isinstance(expr, ExistsOp):
            return ExistsOp(
                subquery=self._plan_subquery(expr.subquery, "exists", applied),
                negated=expr.negated,
            )
        if isinstance(expr, ScalarSubquery):
            return ScalarSubquery(
                subquery=self._plan_subquery(expr.subquery, "scalar", applied)
            )
        if isinstance(expr, InOp):
            inner = self._plan_expression(expr.expr, applied)
            options = (
                tuple(self._plan_expression(o, applied) for o in expr.options)
                if expr.options
                else expr.options
            )
            subquery = (
                self._plan_subquery(expr.subquery, "in", applied)
                if expr.subquery is not None
                else None
            )
            if (
                inner is expr.expr
                and options is expr.options
                and subquery is expr.subquery
            ):
                return expr
            return InOp(inner, options=options, subquery=subquery, negated=expr.negated)
        if isinstance(expr, Conjunction):
            terms = tuple(self._plan_expression(t, applied) for t in expr.terms)
            if any(new is not old for new, old in zip(terms, expr.terms)):
                return Conjunction(expr.op, terms)
            return expr
        if isinstance(expr, BinaryOp):
            left = self._plan_expression(expr.left, applied)
            right = self._plan_expression(expr.right, applied)
            if left is not expr.left or right is not expr.right:
                return BinaryOp(expr.op, left, right)
            return expr
        if isinstance(expr, UnaryOp):
            operand = self._plan_expression(expr.operand, applied)
            if operand is not expr.operand:
                return UnaryOp(expr.op, operand)
            return expr
        if isinstance(expr, BetweenOp):
            value = self._plan_expression(expr.expr, applied)
            low = self._plan_expression(expr.low, applied)
            high = self._plan_expression(expr.high, applied)
            if value is expr.expr and low is expr.low and high is expr.high:
                return expr
            return BetweenOp(value, low, high, negated=expr.negated)
        if isinstance(expr, LikeOp):
            value = self._plan_expression(expr.expr, applied)
            pattern = self._plan_expression(expr.pattern, applied)
            if value is expr.expr and pattern is expr.pattern:
                return expr
            return LikeOp(value, pattern, expr.case_insensitive, expr.negated)
        if isinstance(expr, IsNullOp):
            inner = self._plan_expression(expr.expr, applied)
            if inner is expr.expr:
                return expr
            return IsNullOp(inner, negated=expr.negated)
        if isinstance(expr, FunctionCall):
            args = tuple(self._plan_expression(a, applied) for a in expr.args)
            if all(new is old for new, old in zip(args, expr.args)):
                return expr
            return FunctionCall(expr.name, args, distinct=expr.distinct)
        if isinstance(expr, CaseExpr):
            whens = tuple(
                (
                    self._plan_expression(condition, applied),
                    self._plan_expression(result, applied),
                )
                for condition, result in expr.whens
            )
            default = (
                self._plan_expression(expr.default, applied)
                if expr.default is not None
                else None
            )
            if default is expr.default and all(
                new_c is old_c and new_r is old_r
                for (new_c, new_r), (old_c, old_r) in zip(whens, expr.whens)
            ):
                return expr
            return CaseExpr(whens=whens, default=default)
        return expr

    def _plan_subquery(self, node: QueryNode, role: str, applied: List[str]) -> QueryNode:
        if isinstance(node, SetOperation):
            return self.plan_query(node, applied)
        simplified, labels = simplify_subquery(node, self.schema, role)
        applied.extend(labels)
        return self._plan_select(simplified, applied)

    # -- query/select planning ----------------------------------------------
    def plan_query(self, node: QueryNode, applied: List[str]) -> QueryNode:
        if isinstance(node, SetOperation):
            return SetOperation(
                operator=node.operator,
                left=self.plan_query(node.left, applied),
                right=self.plan_query(node.right, applied),
                order_by=node.order_by,
                limit=node.limit,
                offset=node.offset,
            )
        return self._plan_select(node, applied)

    def _plan_select(self, select: SelectQuery, applied: List[str]) -> SelectQuery:
        try:
            context = SelectContext(select, self.schema)
        except Unplannable:
            return select  # unresolvable FROM clause: identity plan

        rewrites: List[str] = []

        # 1. constant folding in filter positions
        where = select.where
        if where is not None:
            folded = fold_expression(where)
            if folded is not where:
                rewrites.append("constant-fold")
            where = folded
            if isinstance(where, Literal) and where.value is True:
                where = None
                rewrites.append("drop-true-where")
        having = select.having
        if having is not None:
            folded = fold_expression(having)
            if folded is not having:
                rewrites.append("constant-fold-having")
            having = folded
            if isinstance(having, Literal) and having.value is True:
                having = None
        joins = []
        for join in select.joins:
            if join.condition is None:
                joins.append(join)
                continue
            folded = fold_expression(join.condition)
            if folded is not join.condition:
                rewrites.append("constant-fold-join")
                joins.append(Join(join.kind, join.table, folded))
            else:
                joins.append(join)

        # 1b. decorrelate eligible EXISTS/IN conjuncts into hash
        # semi/anti-joins (before subquery recursion: a decorrelated
        # subquery is decomposed into the spec and never planned as a
        # nested select)
        semi_specs: List[SemiJoinSpec] = []
        if where is not None and select.from_table is not None:
            decorrelated = decorrelate_where(where, context, self.schema)
            if decorrelated is not None:
                where, semi_specs, labels = decorrelated
                rewrites.extend(labels)

        # 2. recurse into subqueries wherever they appear
        current = SelectQuery(
            projections=[
                _rebuild_item(item, self._plan_expression(item.expr, rewrites))
                for item in select.projections
            ],
            from_table=select.from_table,
            joins=joins,
            where=self._plan_expression(where, rewrites) if where is not None else None,
            group_by=[self._plan_expression(e, rewrites) for e in select.group_by],
            having=self._plan_expression(having, rewrites) if having is not None else None,
            order_by=[
                _rebuild_order_item(item, self._plan_expression(item.expr, rewrites))
                for item in select.order_by
            ],
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
        )

        # 3. PK-based DISTINCT elimination
        undistinct = drop_redundant_distinct(current, context)
        if undistinct is not None:
            current = undistinct
            rewrites.append("drop-pk-distinct")

        # 4. predicate pushdown
        current, scan_filters, pushed_count = push_predicates(current, context)
        if pushed_count:
            rewrites.append(f"pushdown({pushed_count})")

        # 5. cost-based join ordering
        estimator = Estimator(context, self.stats)
        join_notes: List[JoinNote] = []
        scan_note: Optional[ScanNote] = None
        reordered = False
        if _may_reorder(current):
            current, join_notes, scan_note, reordered = order_joins(
                current, context, estimator, scan_filters
            )
            if reordered:
                rewrites.append("join-reorder")
        if scan_note is None and current.from_table is not None:
            key = current.from_table.binding.lower()
            rows = estimator.table_rows(key)
            pushed = scan_filters.get(key)
            est = rows
            if pushed is not None:
                est = int(round(rows * estimator.predicate_selectivity(pushed, key)))
            scan_note = ScanNote(
                table=current.from_table.table,
                binding=current.from_table.binding,
                rows=rows,
                pushed=pushed,
                est_rows=est,
            )
        if not join_notes and current.joins:
            join_notes = [
                JoinNote(
                    table=join.table.table,
                    binding=join.table.binding,
                    kind=(
                        "cross"
                        if join.kind is JoinKind.CROSS or join.condition is None
                        else "left" if join.kind is JoinKind.LEFT else "hash"
                    ),
                    rows=estimator.table_rows(join.table.binding.lower()),
                )
                for join in current.joins
            ]

        # 6. secondary-index access path for the FROM-table scan
        index_scans: Dict[str, IndexScan] = {}
        if current.from_table is not None:
            scan_key = current.from_table.binding.lower()
            pushed = scan_filters.get(scan_key)
            if pushed is not None:
                chosen = choose_index_scan(pushed, scan_key, context, estimator)
                if chosen is not None:
                    index_scans[scan_key] = chosen
                    rewrites.append(f"index-scan({chosen.column})")
                    if scan_note is not None:
                        scan_note = replace(
                            scan_note, index=f"{chosen.column} ({chosen.kind})"
                        )

        # 7. semi-join cardinality annotations for EXPLAIN
        for spec in semi_specs:
            spec.rows = self.stats.table_stats(spec.table).row_count

        # 8. ORDER BY … LIMIT k: only the first k sorted rows are ever
        # output, so the executor may heap-select instead of fully
        # sorting.  DISTINCT bails (it dedups after the sort, so the
        # full order is needed); sort keys are still computed for every
        # row, preserving error behaviour exactly.
        top_k: Optional[int] = None
        if current.order_by and current.limit is not None and not current.distinct:
            # LIMIT 0 can never emit a row regardless of OFFSET: plan a
            # zero-row selection (the executors short-circuit on it)
            # instead of a size-`offset` heap whose output is discarded.
            top_k = 0 if current.limit == 0 else (current.offset or 0) + current.limit
            rewrites.append(f"top-k({top_k})")

        applied.extend(rewrites)
        planned = PlannedSelect(
            projections=current.projections,
            from_table=current.from_table,
            joins=current.joins,
            where=current.where,
            group_by=current.group_by,
            having=current.having,
            order_by=current.order_by,
            limit=current.limit,
            offset=current.offset,
            distinct=current.distinct,
            scan_filters=scan_filters,
            semi_joins=tuple(semi_specs),
            index_scans=index_scans,
            top_k=top_k,
            notes=SelectNotes(
                scan=scan_note,
                joins=tuple(join_notes),
                pushed_predicates=pushed_count,
                reordered=reordered,
                rewrites=tuple(rewrites),
            ),
        )
        return planned


def _rebuild_item(item, expr):
    from ..ast_nodes import SelectItem

    if expr is item.expr:
        return item
    return SelectItem(expr, item.alias)


def _rebuild_order_item(item, expr):
    from ..ast_nodes import OrderItem

    if expr is item.expr:
        return item
    return OrderItem(expr, item.descending)


def optimize_query(
    node: QueryNode, schema: Schema, stats: StatsManager
) -> PhysicalPlan:
    """Plan ``node`` and wrap it for the plan cache."""
    applied: List[str] = []
    planner = Planner(schema, stats)
    root = planner.plan_query(node, applied)
    return PhysicalPlan(
        root=root,
        source=node,
        stats_epoch=stats.epoch(),
        rewrites=tuple(applied),
    )
