"""EXPLAIN: render a physical plan as a stable, testable text tree.

``Database.explain(sql)`` returns this rendering.  The format is part
of the test surface (golden-string tests in
``tests/sqlengine/test_explain.py``), so changes here are deliberate:

* one node per line, two-space indentation per nesting level;
* scans and joins carry bracketed annotations — actual table row
  counts and the planner's cardinality estimates;
* the footer lists the rewrites applied and the statistics epoch the
  plan was computed under.

Example::

    plan for: SELECT name FROM team WHERE founded > 1900
    select
      scan team  [rows=3 filter: founded > 1900 est=2]
      project: name
    rewrites: pushdown(1)
    stats epoch: 8
"""

from __future__ import annotations

from typing import List

from ..ast_nodes import (
    Join,
    JoinKind,
    QueryNode,
    SelectQuery,
    SetOperation,
    Star,
)
from ..formatter import format_expression
from .planner import PhysicalPlan, PlannedSelect


def explain_plan(plan: PhysicalPlan, sql: str = "") -> str:
    lines: List[str] = []
    if sql:
        lines.append(f"plan for: {sql}")
    _render_node(plan.root, lines, indent=0)
    rewrites = ", ".join(plan.rewrites) if plan.rewrites else "none"
    lines.append(f"rewrites: {rewrites}")
    lines.append(f"stats epoch: {plan.stats_epoch}")
    return "\n".join(lines)


def _pad(indent: int) -> str:
    return "  " * indent


def _render_node(node: QueryNode, lines: List[str], indent: int) -> None:
    if isinstance(node, SetOperation):
        lines.append(f"{_pad(indent)}{node.operator.value.lower()}")
        _render_node(node.left, lines, indent + 1)
        _render_node(node.right, lines, indent + 1)
        if node.order_by:
            lines.append(f"{_pad(indent + 1)}order by: {_order_text(node.order_by)}")
        _render_window(node.limit, node.offset, lines, indent + 1)
        return
    _render_select(node, lines, indent)


def _render_select(select: SelectQuery, lines: List[str], indent: int) -> None:
    pad = _pad(indent)
    inner = _pad(indent + 1)
    lines.append(f"{pad}select")
    notes = select.notes if isinstance(select, PlannedSelect) else None

    if select.from_table is None:
        lines.append(f"{inner}no table")
    else:
        scan = notes.scan if notes is not None else None
        binding = _binding_text(select.from_table.table, select.from_table.alias)
        if scan is not None:
            annotation = f"rows={scan.rows}"
            if scan.pushed is not None:
                annotation += (
                    f" filter: {format_expression(scan.pushed)} est={scan.est_rows}"
                )
            if scan.index is not None:
                annotation += f" index: {scan.index}"
            lines.append(f"{inner}scan {binding}  [{annotation}]")
        else:
            lines.append(f"{inner}scan {binding}")
        note_by_binding = {}
        if notes is not None:
            note_by_binding = {
                note.binding.lower(): note for note in notes.joins
            }
        for join in select.joins:
            lines.append(
                _join_line(join, note_by_binding.get(join.table.binding.lower()), inner)
            )
        for spec in getattr(select, "semi_joins", ()):
            lines.append(_semi_join_line(spec, inner))

    if select.where is not None:
        lines.append(f"{inner}where: {format_expression(select.where)}")
    if select.group_by:
        rendered = ", ".join(format_expression(expr) for expr in select.group_by)
        lines.append(f"{inner}group by: {rendered}")
    if select.having is not None:
        lines.append(f"{inner}having: {format_expression(select.having)}")
    if select.distinct:
        lines.append(f"{inner}distinct")
    if select.order_by:
        lines.append(f"{inner}order by: {_order_text(select.order_by)}")
    _render_window(select.limit, select.offset, lines, indent + 1)
    lines.append(f"{inner}project: {_projection_text(select)}")

    # Nested subqueries get their own indented plan blocks.
    for subquery, role in _iter_direct_subqueries(select):
        lines.append(f"{inner}{role} subquery:")
        _render_node(subquery, lines, indent + 2)


def _join_line(join: Join, note, inner: str) -> str:
    binding = _binding_text(join.table.table, join.table.alias)
    if join.kind is JoinKind.CROSS or join.condition is None:
        text = f"cross join {binding}"
    else:
        strategy = "left join" if join.kind is JoinKind.LEFT else "hash join"
        text = f"{strategy} {binding} ON {format_expression(join.condition)}"
    if note is not None:
        annotation = f"rows={note.rows}"
        if note.est_rows is not None:
            annotation += f" est out={note.est_rows}"
        text += f"  [{annotation}]"
    return f"{inner}{text}"


def _semi_join_line(spec, inner: str) -> str:
    """One decorrelated EXISTS/IN conjunct as a hash semi/anti-join."""
    strategy = "anti join" if spec.anti else "semi join"
    parts = [
        f"{spec.binding}.{column} = {format_expression(outer)}"
        for outer, column in spec.keys
    ]
    if spec.in_probe is not None:
        parts.append(
            f"{format_expression(spec.in_probe)} IN {spec.binding}.{spec.in_column}"
        )
    binding = _binding_text(
        spec.table, spec.binding if spec.binding.lower() != spec.table.lower() else None
    )
    text = f"{strategy} {binding} ON {' AND '.join(parts)}"
    annotation = f"rows={spec.rows}"
    if spec.where is not None:
        annotation += f" filter: {format_expression(spec.where)}"
    return f"{inner}{text}  [{annotation}]"


def _binding_text(table: str, alias) -> str:
    return f"{table} AS {alias}" if alias else table


def _render_window(limit, offset, lines: List[str], indent: int) -> None:
    if limit is not None:
        lines.append(f"{_pad(indent)}limit {limit}")
    if offset is not None:
        lines.append(f"{_pad(indent)}offset {offset}")


def _order_text(order_by) -> str:
    return ", ".join(
        format_expression(item.expr) + (" DESC" if item.descending else "")
        for item in order_by
    )


def _projection_text(select: SelectQuery) -> str:
    parts = []
    for item in select.projections:
        if isinstance(item.expr, Star):
            parts.append(f"{item.expr.table}.*" if item.expr.table else "*")
        else:
            rendered = format_expression(item.expr)
            if item.alias:
                rendered += f" AS {item.alias}"
            parts.append(rendered)
    return ", ".join(parts)


def _iter_direct_subqueries(select: SelectQuery):
    """(subquery, role) pairs directly below this SELECT's expressions."""
    from ..ast_nodes import ExistsOp, InOp, ScalarSubquery

    for expr in select.iter_expressions():
        for node in expr.walk():
            if isinstance(node, ExistsOp):
                yield node.subquery, "exists"
            elif isinstance(node, ScalarSubquery):
                yield node.subquery, "scalar"
            elif isinstance(node, InOp) and node.subquery is not None:
                yield node.subquery, "in"
