"""Query executor: interprets the AST against :class:`Storage`.

Evaluation model
----------------
A *frame* binds each FROM-clause table instance (by alias) to one row.
The FROM/JOIN pipeline produces a stream of frames; WHERE filters them;
GROUP BY partitions them; projections evaluate expressions against a
:class:`Scope` that chains to outer scopes for correlated subqueries.

Joins with equi-conditions use hash joins so that the ~100K-row
FootballDB instances stay fast under the evaluation harness (thousands
of executions per experiment); everything else falls back to
nested-loop evaluation.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from . import functions as fn
from .ast_nodes import (
    BetweenOp,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Conjunction,
    ExistsOp,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOperator,
    Star,
    TableRef,
    UnaryOp,
    contains_aggregate,
    is_aggregate_call,
)
from .catalog import Table
from .errors import CatalogError, ExecutionError, TypeMismatchError
from .storage import Storage
from .values import (
    normalize_for_comparison,
    row_sort_key,
    sort_key,
    sql_and,
    sql_compare,
    sql_equal,
    sql_not,
    sql_or,
    sql_text,
    type_class,
)


class Result:
    """A query result: ordered column names plus row tuples."""

    def __init__(self, columns: List[str], rows: List[tuple]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:  # pragma: no cover - convenience
        if not isinstance(other, Result):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def normalized_multiset(self) -> Dict[tuple, int]:
        """Multiset of normalized rows — the basis of the EX metric."""
        counts: Dict[tuple, int] = {}
        for row in self.rows:
            key = tuple(normalize_for_comparison(value) for value in row)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Result({self.columns!r}, {len(self.rows)} rows)"


class Frame:
    """One binding environment: table instances resolved to single rows."""

    __slots__ = ("entries", "_index")

    def __init__(self, entries: List[Tuple[str, Table, Optional[tuple]]]) -> None:
        self.entries = entries
        self._index = {
            binding.lower(): position
            for position, (binding, _, _) in enumerate(entries)
        }

    def extended(self, binding: str, table: Table, row: Optional[tuple]) -> "Frame":
        return Frame(self.entries + [(binding, table, row)])

    def lookup_binding(self, binding: str) -> Optional[Tuple[Table, Optional[tuple]]]:
        position = self._index.get(binding.lower())
        if position is None:
            return None
        _, table, row = self.entries[position]
        return table, row

    def resolve_unqualified(self, column: str) -> Tuple[bool, Any]:
        """Return (found, value); raises on ambiguity."""
        matches = []
        for binding, table, row in self.entries:
            if table.has_column(column):
                matches.append((table, row))
        if not matches:
            return False, None
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference {column!r}")
        table, row = matches[0]
        if row is None:
            return True, None
        return True, row[table.column_position(column)]


EMPTY_FRAME = Frame([])

#: sentinel distinguishing "not cached yet" from "known correlated" (None)
_CACHE_MISS = object()


class Scope:
    """Expression evaluation scope: a frame, optional group rows, outer link."""

    __slots__ = ("frame", "group_frames", "outer")

    def __init__(
        self,
        frame: Frame,
        group_frames: Optional[List[Frame]] = None,
        outer: Optional["Scope"] = None,
    ) -> None:
        self.frame = frame
        self.group_frames = group_frames
        self.outer = outer

    def row_scope(self, frame: Frame) -> "Scope":
        """Scope for evaluating an aggregate argument on one group row."""
        return Scope(frame, None, self.outer)


class Executor:
    """Interprets query ASTs against one storage instance."""

    def __init__(self, storage: Storage) -> None:
        self.storage = storage
        # Memoized hash-join indexes live in TableData; disable to
        # benchmark the per-execution index build.
        self.use_join_index = True
        # Per-statement cache of *uncorrelated* subquery results, so a
        # scalar subquery in WHERE runs once, not once per outer row.
        # Thread-local: the parallel harness executes concurrently
        # against one shared executor, and statements must not clear
        # each other's in-flight caches.
        self._local = threading.local()

    @property
    def _subquery_cache(self) -> Dict[int, Optional[Result]]:
        cache = getattr(self._local, "subquery_cache", None)
        if cache is None:
            cache = {}
            self._local.subquery_cache = cache
        return cache

    # -- profiling (EXPLAIN ANALYZE substrate) -------------------------------
    def set_profile(self, profile) -> None:
        """Install (or clear, with None) a per-operator collector for
        this thread's executions (see :mod:`repro.obs.profile`)."""
        self._local.profile = profile

    def _prof(self):
        return getattr(self._local, "profile", None)

    # -- public entry point -------------------------------------------------
    def execute(self, query: QueryNode) -> Result:
        self._local.subquery_cache = {}
        return self._execute(query, outer=None)

    def _execute_subquery(self, query: QueryNode, scope: Scope) -> Result:
        """Evaluate a nested query, caching it when uncorrelated.

        The fast path tries the subquery *without* the outer scope; if
        that raises a resolution error the subquery is correlated and
        must be evaluated per outer row (marked by a ``None`` cache
        entry).
        """
        prof = self._prof()
        if prof is not None:
            prof.depth += 1
        try:
            key = id(query)
            cached = self._subquery_cache.get(key, _CACHE_MISS)
            if cached is None:
                return self._execute(query, scope)  # known correlated
            if cached is not _CACHE_MISS:
                return cached
            try:
                result = self._execute(query, outer=None)
            except CatalogError:
                self._subquery_cache[key] = None
                return self._execute(query, scope)
            self._subquery_cache[key] = result
            return result
        finally:
            if prof is not None:
                prof.depth -= 1

    def _execute(self, query: QueryNode, outer: Optional[Scope]) -> Result:
        if isinstance(query, SetOperation):
            return self._execute_set_operation(query, outer)
        return self._execute_select(query, outer)

    # -- set operations -------------------------------------------------------
    def _execute_set_operation(self, node: SetOperation, outer: Optional[Scope]) -> Result:
        left = self._execute(node.left, outer)
        right = self._execute(node.right, outer)
        return self.finish_set_operation(node, left, right)

    def finish_set_operation(
        self, node: SetOperation, left: Result, right: Result
    ) -> Result:
        """Combine two child results (shared with the vectorized
        executor, which dispatches the children per backend but must
        keep the combine/order/limit semantics in one place)."""
        if left.columns and right.columns and len(left.columns) != len(right.columns):
            raise ExecutionError(
                "set operation requires matching column counts "
                f"({len(left.columns)} vs {len(right.columns)})"
            )
        rows = self._combine(node.operator, left.rows, right.rows)
        result = Result(left.columns, rows)
        if node.order_by:
            result = Result(
                result.columns,
                self._order_output_rows(result, node.order_by),
            )
        result = Result(result.columns, _apply_limit(result.rows, node.limit, node.offset))
        return result

    @staticmethod
    def _combine(operator: SetOperator, left: List[tuple], right: List[tuple]) -> List[tuple]:
        def norm(row: tuple) -> tuple:
            return tuple(normalize_for_comparison(value) for value in row)

        if operator is SetOperator.UNION_ALL:
            return left + right
        if operator is SetOperator.UNION:
            seen = set()
            combined = []
            for row in left + right:
                key = norm(row)
                if key not in seen:
                    seen.add(key)
                    combined.append(row)
            return combined
        right_keys = {norm(row) for row in right}
        seen = set()
        combined = []
        for row in left:
            key = norm(row)
            if key in seen:
                continue
            seen.add(key)
            if operator is SetOperator.INTERSECT and key in right_keys:
                combined.append(row)
            elif operator is SetOperator.EXCEPT and key not in right_keys:
                combined.append(row)
        return combined

    def _order_output_rows(self, result: Result, order_by: List[OrderItem]) -> List[tuple]:
        """ORDER BY on a compound result: positions or output column names."""
        decorated = list(result.rows)
        for item in reversed(order_by):
            position = self._output_position(result.columns, item)
            decorated.sort(
                key=lambda row: sort_key(row[position]), reverse=item.descending
            )
        return decorated

    @staticmethod
    def _output_position(columns: List[str], item: OrderItem) -> int:
        if isinstance(item.expr, Literal) and isinstance(item.expr.value, int):
            position = item.expr.value - 1
            if not 0 <= position < len(columns):
                raise ExecutionError(f"ORDER BY position {item.expr.value} out of range")
            return position
        if isinstance(item.expr, ColumnRef):
            lowered = [name.lower() for name in columns]
            name = item.expr.column.lower()
            if name in lowered:
                return lowered.index(name)
        raise ExecutionError(
            "ORDER BY on a set operation must reference an output column"
        )

    # -- select core ----------------------------------------------------------
    def _execute_select(self, query: SelectQuery, outer: Optional[Scope]) -> Result:
        prof = self._prof()
        frames = self._evaluate_from(query, outer)
        # Optimized plans may carry decorrelated EXISTS/IN conjuncts
        # (optimizer.SemiJoinSpec).  They filter frames exactly where
        # the original WHERE conjunct did — between FROM and WHERE.
        semi_joins = getattr(query, "semi_joins", None)
        if semi_joins:
            for spec in semi_joins:
                started = prof.clock() if prof is not None else 0.0
                groups = self.semi_join_groups(spec)
                frames = [
                    frame
                    for frame in frames
                    if self._semi_keep(spec, groups, Scope(frame, None, outer))
                ]
                if prof is not None:
                    kind = "anti join" if spec.anti else "semi join"
                    prof.record("row", f"{kind} {spec.table}", len(frames), started)
        if query.where is not None:
            started = prof.clock() if prof is not None else 0.0
            frames = [
                frame
                for frame in frames
                if self._truthy(query.where, Scope(frame, None, outer))
            ]
            if prof is not None:
                prof.record("row", "filter", len(frames), started)
        aggregated = bool(query.group_by) or uses_aggregates(query)
        if aggregated:
            return self._execute_aggregated(query, frames, outer)
        return self._execute_plain(query, frames, outer)

    # -- FROM/JOIN pipeline -----------------------------------------------------
    def _evaluate_from(self, query: SelectQuery, outer: Optional[Scope]) -> List[Frame]:
        if query.from_table is None:
            return [EMPTY_FRAME]
        # Optimized plans (optimizer.PlannedSelect) carry predicates
        # pushed down to the scan; a plain SelectQuery has none.  The
        # filter keeps rows under the same _truthy test WHERE would
        # apply later, so only the amount of work changes, never the
        # surviving frame sequence.
        prof = self._prof()
        scan_filters = getattr(query, "scan_filters", None)
        key = query.from_table.binding.lower()
        pushed = scan_filters.get(key) if scan_filters else None
        index_scans = getattr(query, "index_scans", None)
        index_scan = index_scans.get(key) if index_scans else None
        started = prof.clock() if prof is not None else 0.0
        frames = self._scan(query.from_table, pushed, outer, index_scan)
        if prof is not None:
            prof.record("row", f"scan {query.from_table.table}", len(frames), started)
        for join in query.joins:
            if prof is not None:
                label = self._join_label(frames, join)
                started = prof.clock()
            frames = self._apply_join(frames, join, outer)
            if prof is not None:
                prof.record("row", label, len(frames), started)
        return frames

    def _join_label(self, frames: List[Frame], join: Join) -> str:
        """Human-readable strategy label for EXPLAIN ANALYZE output;
        mirrors the dispatch in :meth:`_apply_join`."""
        table_name = join.table.table
        if join.kind is JoinKind.CROSS or join.condition is None:
            return f"cross join {table_name}"
        if join.kind is JoinKind.LEFT:
            return f"left join {table_name}"
        if frames:
            data = self.storage.data(table_name)
            equi_pairs, _ = self._split_equi_condition(
                join.condition, frames[0], join.table.binding, data.table
            )
            if equi_pairs:
                return f"hash join {table_name}"
        return f"loop join {table_name}"

    def _scan(
        self,
        ref: TableRef,
        pushed: Optional[Expression] = None,
        outer: Optional[Scope] = None,
        index_scan=None,
    ) -> List[Frame]:
        data = self.storage.data(ref.table)
        binding = ref.binding
        if index_scan is not None and pushed is not None:
            rows = self._index_candidates(data, index_scan)
        else:
            rows = data.rows
        frames = [Frame([(binding, data.table, row)]) for row in rows]
        if pushed is not None:
            frames = [
                frame
                for frame in frames
                if self._truthy(pushed, Scope(frame, None, outer))
            ]
        return frames

    @staticmethod
    def _index_candidates(data, index_scan) -> List[tuple]:
        """Candidate rows for an index-servable scan filter, in original
        row order.

        The candidates are a superset of the rows satisfying the chosen
        conjunct (over exact/same-class types the index lookup *is* the
        ``sql_equal``/``sql_compare`` semantics), and the caller then
        applies the complete pushed filter — so the surviving frame
        sequence is byte-identical to the full scan's.
        """
        position = data.table.column_position(index_scan.column)
        if index_scan.kind == "hash":
            key = (normalize_for_comparison(index_scan.values[0]),)
            # buckets keep rows in insertion order == original row order
            return data.hash_index(position).get(key, [])
        keys, positions = data.sorted_index(position)
        if index_scan.op == "between":
            low, high = index_scan.values
            start = bisect.bisect_left(keys, sort_key(low))
            stop = bisect.bisect_right(keys, sort_key(high))
        elif index_scan.op == ">":
            start, stop = bisect.bisect_right(keys, sort_key(index_scan.values[0])), len(keys)
        elif index_scan.op == ">=":
            start, stop = bisect.bisect_left(keys, sort_key(index_scan.values[0])), len(keys)
        elif index_scan.op == "<":
            start, stop = 0, bisect.bisect_left(keys, sort_key(index_scan.values[0]))
        else:  # "<="
            start, stop = 0, bisect.bisect_right(keys, sort_key(index_scan.values[0]))
        selected = sorted(positions[start:stop])  # restore row order
        rows = data.rows
        return [rows[i] for i in selected]

    def _apply_join(
        self, frames: List[Frame], join: Join, outer: Optional[Scope]
    ) -> List[Frame]:
        data = self.storage.data(join.table.table)
        binding = join.table.binding
        table = data.table
        if join.kind is JoinKind.CROSS or join.condition is None:
            return [
                frame.extended(binding, table, row)
                for frame in frames
                for row in data.rows
            ]
        if not frames:
            return []
        equi_pairs, residual = self._split_equi_condition(
            join.condition, frames[0], binding, table
        )
        if equi_pairs:
            return self._hash_join(frames, join, data, equi_pairs, residual, outer)
        return self._nested_loop_join(frames, join, data, outer)

    def _split_equi_condition(
        self,
        condition: Expression,
        sample_frame: Frame,
        new_binding: str,
        new_table: Table,
    ) -> Tuple[List[Tuple[Expression, str]], List[Expression]]:
        """Split an ON condition into hash-joinable pairs and a residual.

        A pair is ``(outer expression, new-table column name)`` for each
        top-level conjunct of the form ``a = b`` where exactly one side
        is a column of the table being joined.
        """
        terms: List[Expression]
        if isinstance(condition, Conjunction) and condition.op == "AND":
            terms = list(condition.terms)
        else:
            terms = [condition]
        pairs: List[Tuple[Expression, str]] = []
        residual: List[Expression] = []
        for term in terms:
            pair = self._match_equi_term(term, sample_frame, new_binding, new_table)
            if pair is not None:
                pairs.append(pair)
            else:
                residual.append(term)
        return pairs, residual

    def _match_equi_term(
        self,
        term: Expression,
        sample_frame: Frame,
        new_binding: str,
        new_table: Table,
    ) -> Optional[Tuple[Expression, str]]:
        if not (isinstance(term, BinaryOp) and term.op == "="):
            return None
        for inner, other in ((term.left, term.right), (term.right, term.left)):
            if (
                isinstance(inner, ColumnRef)
                and self._belongs_to_new(inner, sample_frame, new_binding, new_table)
                and not self._references_binding(other, new_binding, new_table, sample_frame)
                and self._hash_compatible(inner, other, sample_frame, new_table)
            ):
                return other, inner.column
        return None

    def _hash_compatible(
        self,
        inner: ColumnRef,
        other: Expression,
        sample_frame: Frame,
        new_table: Table,
    ) -> bool:
        """Whether ``inner = other`` may be evaluated by hash lookup.

        Hash keys use ``normalize_for_comparison``, which does NOT
        perform ``sql_equal``'s cross-type alignment (booleans against
        ``'True'`` text, numbers against numeric strings) — alignment
        is not even transitive, so no canonical key exists for mixed
        classes.  A term is hashable only when both sides provably
        belong to the same type class (numbers normalize consistently
        across int/real); everything else stays a residual term
        evaluated with full ``sql_equal`` semantics.
        """
        if not new_table.has_column(inner.column):
            return False  # residual evaluation raises the proper error
        column_class = type_class(new_table.column(inner.column).sql_type)
        other_class = self._static_class(other, sample_frame)
        return other_class is not None and other_class in ("null", column_class)

    def _static_class(
        self, expr: Expression, sample_frame: Frame
    ) -> Optional[str]:
        """Static type class of an ON-condition operand, or None."""
        if isinstance(expr, Literal):
            value = expr.value
            if value is None:
                return "null"
            if isinstance(value, bool):
                return "bool"
            if isinstance(value, (int, float)):
                return "number"
            return "text"
        if isinstance(expr, ColumnRef):
            if expr.table is not None:
                found = sample_frame.lookup_binding(expr.table)
                if found is None:
                    return None
                table, _ = found
            else:
                owners = [
                    table
                    for _, table, _ in sample_frame.entries
                    if table.has_column(expr.column)
                ]
                if len(owners) != 1:
                    return None
                table = owners[0]
            if not table.has_column(expr.column):
                return None
            return type_class(table.column(expr.column).sql_type)
        if isinstance(expr, BinaryOp):
            if expr.op in ("+", "-", "*", "/", "%"):
                return "number"
            if expr.op == "||":
                return "text"
            return None
        if isinstance(expr, UnaryOp) and expr.op == "-":
            return "number"
        return None

    @staticmethod
    def _belongs_to_new(
        ref: ColumnRef, sample_frame: Frame, new_binding: str, new_table: Table
    ) -> bool:
        if ref.table is not None:
            return ref.table.lower() == new_binding.lower()
        # Unqualified: counts as the new table's column only if no
        # existing binding also exposes the name (else it is ambiguous
        # and the nested-loop path will raise the proper error).
        if not new_table.has_column(ref.column):
            return False
        for _, table, _ in sample_frame.entries:
            if table.has_column(ref.column):
                return False
        return True

    def _references_binding(
        self,
        expr: Expression,
        binding: str,
        new_table: Table,
        sample_frame: Frame,
    ) -> bool:
        for node in expr.walk():
            if isinstance(node, ColumnRef):
                if node.table is not None and node.table.lower() == binding.lower():
                    return True
                if node.table is None and self._belongs_to_new(
                    node, sample_frame, binding, new_table
                ):
                    return True
        return False

    def _hash_join(
        self,
        frames: List[Frame],
        join: Join,
        data,
        equi_pairs: List[Tuple[Expression, str]],
        residual: List[Expression],
        outer: Optional[Scope],
    ) -> List[Frame]:
        table = data.table
        positions = tuple(table.column_position(column) for _, column in equi_pairs)
        if self.use_join_index:
            index = data.join_index(positions)
        else:
            index = {}
            for row in data.rows:
                key = tuple(normalize_for_comparison(row[p]) for p in positions)
                if any(part is None for part in key):
                    continue  # NULLs never match an equi-join
                index.setdefault(key, []).append(row)
        binding = join.table.binding
        joined: List[Frame] = []
        for frame in frames:
            scope = Scope(frame, None, outer)
            probe = tuple(
                normalize_for_comparison(self._eval(expr, scope))
                for expr, _ in equi_pairs
            )
            matches: Iterable[tuple]
            if any(part is None for part in probe):
                matches = ()
            else:
                matches = index.get(probe, ())
            matched = False
            for row in matches:
                extended = frame.extended(binding, table, row)
                if residual:
                    inner_scope = Scope(extended, None, outer)
                    if not all(self._truthy(term, inner_scope) for term in residual):
                        continue
                matched = True
                joined.append(extended)
            if not matched and join.kind is JoinKind.LEFT:
                joined.append(frame.extended(binding, table, None))
        return joined

    def _nested_loop_join(
        self, frames: List[Frame], join: Join, data, outer: Optional[Scope]
    ) -> List[Frame]:
        binding = join.table.binding
        table = data.table
        joined: List[Frame] = []
        for frame in frames:
            matched = False
            for row in data.rows:
                extended = frame.extended(binding, table, row)
                if self._truthy(join.condition, Scope(extended, None, outer)):
                    matched = True
                    joined.append(extended)
            if not matched and join.kind is JoinKind.LEFT:
                joined.append(frame.extended(binding, table, None))
        return joined

    # -- decorrelated subqueries -------------------------------------------------
    def semi_join_groups(self, spec) -> Dict[tuple, list]:
        """Build (or reuse) the probe table for a decorrelated subquery.

        Maps each normalized correlation key to ``[row count, NULL count
        of the IN column, set of normalized IN-column values]`` over the
        inner rows that pass the spec's local filter.  The result is
        memoized on the spec, stamped with the table's version, so
        mutations invalidate it and repeated executions reuse it.
        """
        data = self.storage.data(spec.table)
        cache = spec.cache
        if cache is not None and cache[0] is data and cache[1] == data.version:
            return cache[2]
        table = data.table
        key_positions = [table.column_position(column) for _, column in spec.keys]
        in_position = (
            table.column_position(spec.in_column) if spec.in_column else None
        )
        groups: Dict[tuple, list] = {}
        for row in data.rows:
            if spec.where is not None and not self._truthy(
                spec.where, Scope(Frame([(spec.binding, table, row)]), None, None)
            ):
                continue
            key = tuple(normalize_for_comparison(row[p]) for p in key_positions)
            if any(part is None for part in key):
                continue  # NULL keys never match the equi-correlation
            group = groups.get(key)
            if group is None:
                group = groups[key] = [0, 0, set()]
            group[0] += 1
            if in_position is not None:
                value = row[in_position]
                if value is None:
                    group[1] += 1
                else:
                    group[2].add(normalize_for_comparison(value))
        spec.cache = (data, data.version, groups)
        return groups

    def _semi_keep(self, spec, groups: Dict[tuple, list], scope: Scope) -> bool:
        """Decide one outer frame under a decorrelated EXISTS/IN, with
        the same three-valued verdict the original subquery produced."""
        probe = [
            normalize_for_comparison(self._eval(expr, scope)) for expr, _ in spec.keys
        ]
        group = None
        if not any(part is None for part in probe):
            group = groups.get(tuple(probe))
        if spec.in_probe is None:  # EXISTS / NOT EXISTS
            return (group is not None) != spec.anti
        # IN / NOT IN: empty set -> FALSE; NULL probe or NULL-bearing
        # set without a match -> UNKNOWN; match -> TRUE.
        if group is None:
            verdict: Optional[bool] = False
        else:
            value = self._eval(spec.in_probe, scope)
            if value is None:
                verdict = None
            else:
                normalized = normalize_for_comparison(value)
                if normalized in group[2]:
                    verdict = True
                elif group[1]:
                    verdict = None
                else:
                    verdict = False
        if spec.anti:
            verdict = sql_not(verdict)
        return verdict is True

    # -- non-aggregated output ---------------------------------------------------
    def _execute_plain(
        self, query: SelectQuery, frames: List[Frame], outer: Optional[Scope]
    ) -> Result:
        prof = self._prof()
        started = prof.clock() if prof is not None else 0.0
        columns = self._output_columns(query, frames)
        rows: List[tuple] = []
        scopes: List[Scope] = []
        for frame in frames:
            scope = Scope(frame, None, outer)
            rows.append(self._project(query.projections, scope))
            scopes.append(scope)
        if prof is not None:
            prof.record("row", "project", len(rows), started)
        return self._finalize(query, columns, rows, scopes)

    # -- aggregated output ---------------------------------------------------------
    def _execute_aggregated(
        self, query: SelectQuery, frames: List[Frame], outer: Optional[Scope]
    ) -> Result:
        prof = self._prof()
        started = prof.clock() if prof is not None else 0.0
        groups: List[Tuple[Frame, List[Frame]]] = []
        if query.group_by:
            keyed: Dict[tuple, List[Frame]] = {}
            order: List[tuple] = []
            for frame in frames:
                scope = Scope(frame, None, outer)
                key = tuple(
                    normalize_for_comparison(self._eval(expr, scope))
                    for expr in query.group_by
                )
                if key not in keyed:
                    keyed[key] = []
                    order.append(key)
                keyed[key].append(frame)
            groups = [(keyed[key][0], keyed[key]) for key in order]
        else:
            representative = frames[0] if frames else EMPTY_FRAME
            groups = [(representative, frames)]
        columns = self._output_columns(query, frames)
        rows: List[tuple] = []
        scopes: List[Scope] = []
        for representative, members in groups:
            scope = Scope(representative, members, outer)
            if query.having is not None and not self._truthy(query.having, scope):
                continue
            rows.append(self._project(query.projections, scope))
            scopes.append(scope)
        if prof is not None:
            prof.record("row", "aggregate", len(rows), started)
        return self._finalize(query, columns, rows, scopes)

    # -- shared output plumbing ------------------------------------------------------
    def _project(self, projections: List[SelectItem], scope: Scope) -> tuple:
        values: List[Any] = []
        for item in projections:
            if isinstance(item.expr, Star):
                values.extend(self._expand_star(item.expr, scope))
            else:
                values.append(self._eval(item.expr, scope))
        return tuple(values)

    def _expand_star(self, star: Star, scope: Scope) -> List[Any]:
        values: List[Any] = []
        for binding, table, row in scope.frame.entries:
            if star.table is not None and binding.lower() != star.table.lower():
                continue
            if row is None:
                values.extend([None] * len(table.columns))
            else:
                values.extend(row)
        if star.table is not None and not values:
            found = scope.frame.lookup_binding(star.table)
            if found is None:
                raise ExecutionError(f"unknown table alias {star.table!r} in *")
        return values

    def _output_columns(self, query: SelectQuery, frames: List[Frame]) -> List[str]:
        sample = frames[0] if frames else EMPTY_FRAME
        names: List[str] = []
        for item in query.projections:
            if isinstance(item.expr, Star):
                for binding, table, _ in sample.entries:
                    if item.expr.table is not None and binding.lower() != item.expr.table.lower():
                        continue
                    names.extend(table.column_names)
                if not sample.entries:
                    names.append("*")
                continue
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                names.append(item.expr.column)
            elif isinstance(item.expr, FunctionCall):
                names.append(item.expr.name)
            else:
                names.append(f"column{len(names) + 1}")
        return names

    def _finalize(
        self,
        query: SelectQuery,
        columns: List[str],
        rows: List[tuple],
        scopes: List[Scope],
    ) -> Result:
        prof = self._prof()
        started = prof.clock() if prof is not None else 0.0
        if query.limit == 0:
            # LIMIT 0 emits no rows no matter the ordering or offset;
            # skip sorting/dedup entirely (sqlite likewise never
            # evaluates ORDER BY keys for rows it will not emit).
            if prof is not None:
                prof.record("row", "finalize", 0, started)
            return Result(columns, [])
        ordered = list(range(len(rows)))
        if query.order_by:
            keys_per_item = []
            for item in query.order_by:
                keys_per_item.append(
                    [self._order_key(item, query, rows[i], scopes[i]) for i in ordered]
                )
            top_k = getattr(query, "top_k", None)
            if top_k is not None:
                # ORDER BY ... LIMIT k: a bounded heap selection replaces
                # the full sort.  Keys were computed for every row above,
                # so errors surface exactly as they would under the sort.
                from .columnar.kernels import top_k_indices

                ordered = top_k_indices(
                    keys_per_item,
                    [item.descending for item in query.order_by],
                    len(rows),
                    top_k,
                )
            else:
                for item_index in range(len(query.order_by) - 1, -1, -1):
                    item = query.order_by[item_index]
                    keys = keys_per_item[item_index]
                    ordered.sort(
                        key=lambda i: sort_key(keys[i]), reverse=item.descending
                    )
        output = [rows[i] for i in ordered]
        if query.distinct:
            seen = set()
            unique = []
            for row in output:
                key = tuple(normalize_for_comparison(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            output = unique
        output = _apply_limit(output, query.limit, query.offset)
        if prof is not None:
            prof.record("row", "finalize", len(output), started)
        return Result(columns, output)

    def _order_key(
        self, item: OrderItem, query: SelectQuery, row: tuple, scope: Scope
    ) -> Any:
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(row):
                raise ExecutionError(f"ORDER BY position {expr.value} out of range")
            return row[position]
        if isinstance(expr, ColumnRef) and expr.table is None:
            for position, projection in enumerate(query.projections):
                if projection.alias and projection.alias.lower() == expr.column.lower():
                    return row[position]
        return self._eval(expr, scope)

    # -- expression evaluation ----------------------------------------------------
    def _truthy(self, expr: Expression, scope: Scope) -> bool:
        return self._eval_boolean(expr, scope) is True

    def _eval_boolean(self, expr: Expression, scope: Scope) -> Optional[bool]:
        value = self._eval(expr, scope)
        if value is None or isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        raise TypeMismatchError(f"expected boolean, got {value!r}")

    def _eval(self, expr: Expression, scope: Scope) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return self._eval_column(expr, scope)
        if isinstance(expr, Star):
            raise ExecutionError("'*' is only valid in projections and COUNT(*)")
        if isinstance(expr, Conjunction):
            return self._eval_conjunction(expr, scope)
        if isinstance(expr, UnaryOp):
            return self._eval_unary(expr, scope)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, scope)
        if isinstance(expr, LikeOp):
            return self._eval_like(expr, scope)
        if isinstance(expr, BetweenOp):
            return self._eval_between(expr, scope)
        if isinstance(expr, IsNullOp):
            value = self._eval(expr.expr, scope)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, InOp):
            return self._eval_in(expr, scope)
        if isinstance(expr, ExistsOp):
            result = self._execute_subquery(expr.subquery, scope)
            exists = len(result.rows) > 0
            return not exists if expr.negated else exists
        if isinstance(expr, ScalarSubquery):
            return self._eval_scalar_subquery(expr, scope)
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, scope)
        if isinstance(expr, CaseExpr):
            return self._eval_case(expr, scope)
        raise ExecutionError(f"unsupported expression node {type(expr).__name__}")

    def _eval_column(self, ref: ColumnRef, scope: Scope) -> Any:
        current: Optional[Scope] = scope
        while current is not None:
            if ref.table is not None:
                found = current.frame.lookup_binding(ref.table)
                if found is not None:
                    table, row = found
                    if not table.has_column(ref.column):
                        raise CatalogError(
                            f"table {ref.table!r} has no column {ref.column!r}"
                        )
                    if row is None:
                        return None
                    return row[table.column_position(ref.column)]
            else:
                found_flag, value = current.frame.resolve_unqualified(ref.column)
                if found_flag:
                    return value
            current = current.outer
        raise CatalogError(f"cannot resolve column reference {ref.qualified!r}")

    def _eval_conjunction(self, expr: Conjunction, scope: Scope) -> Optional[bool]:
        combine = sql_and if expr.op == "AND" else sql_or
        accumulator: Optional[bool] = expr.op == "AND"
        for term in expr.terms:
            accumulator = combine(accumulator, self._eval_boolean(term, scope))
            if expr.op == "AND" and accumulator is False:
                return False
            if expr.op == "OR" and accumulator is True:
                return True
        return accumulator

    def _eval_unary(self, expr: UnaryOp, scope: Scope) -> Any:
        if expr.op == "NOT":
            return sql_not(self._eval_boolean(expr.operand, scope))
        value = self._eval(expr.operand, scope)
        if value is None:
            return None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
        raise TypeMismatchError(f"cannot negate {value!r}")

    def _eval_binary(self, expr: BinaryOp, scope: Scope) -> Any:
        left = self._eval(expr.left, scope)
        right = self._eval(expr.right, scope)
        op = expr.op
        if op == "=":
            return sql_equal(left, right)
        if op == "<>":
            return sql_not(sql_equal(left, right))
        if op in ("<", "<=", ">", ">="):
            comparison = sql_compare(left, right)
            if comparison is None:
                return None
            return {
                "<": comparison < 0,
                "<=": comparison <= 0,
                ">": comparison > 0,
                ">=": comparison >= 0,
            }[op]
        if op == "||":
            if left is None or right is None:
                return None
            return sql_text(left) + sql_text(right)
        if left is None or right is None:
            return None
        if not isinstance(left, (int, float)) or isinstance(left, bool):
            raise TypeMismatchError(f"arithmetic on non-number {left!r}")
        if not isinstance(right, (int, float)) or isinstance(right, bool):
            raise TypeMismatchError(f"arithmetic on non-number {right!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return left / right  # SQL real division for analytics
            return left / right
        if op == "%":
            if right == 0:
                raise ExecutionError("modulo by zero")
            return left % right
        raise ExecutionError(f"unknown operator {op!r}")

    def _eval_like(self, expr: LikeOp, scope: Scope) -> Optional[bool]:
        value = self._eval(expr.expr, scope)
        pattern = self._eval(expr.pattern, scope)
        if value is None or pattern is None:
            return None
        regex = _like_regex(str(pattern), expr.case_insensitive)
        matched = regex.fullmatch(str(value)) is not None
        return not matched if expr.negated else matched

    def _eval_between(self, expr: BetweenOp, scope: Scope) -> Optional[bool]:
        value = self._eval(expr.expr, scope)
        low = self._eval(expr.low, scope)
        high = self._eval(expr.high, scope)
        lower = sql_compare(value, low)
        upper = sql_compare(value, high)
        if lower is None or upper is None:
            return None
        inside = lower >= 0 and upper <= 0
        return not inside if expr.negated else inside

    def _eval_in(self, expr: InOp, scope: Scope) -> Optional[bool]:
        value = self._eval(expr.expr, scope)
        if expr.subquery is not None:
            result = self._execute_subquery(expr.subquery, scope)
            if result.rows and len(result.rows[0]) != 1:
                raise ExecutionError("IN subquery must return a single column")
            candidates = [row[0] for row in result.rows]
        else:
            candidates = [self._eval(option, scope) for option in (expr.options or ())]
        saw_unknown = False
        for candidate in candidates:
            verdict = sql_equal(value, candidate)
            if verdict is True:
                return False if expr.negated else True
            if verdict is None:
                saw_unknown = True
        if saw_unknown:
            return None
        return True if expr.negated else False

    def _eval_scalar_subquery(self, expr: ScalarSubquery, scope: Scope) -> Any:
        result = self._execute_subquery(expr.subquery, scope)
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(result.rows[0]) != 1:
            raise ExecutionError("scalar subquery must return a single column")
        return result.rows[0][0]

    def _eval_function(self, expr: FunctionCall, scope: Scope) -> Any:
        if is_aggregate_call(expr):
            return self._eval_aggregate(expr, scope)
        handler = fn.SCALAR_FUNCTIONS.get(expr.name)
        if handler is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = [self._eval(arg, scope) for arg in expr.args]
        return handler(args)

    def _eval_aggregate(self, expr: FunctionCall, scope: Scope) -> Any:
        if scope.group_frames is None:
            raise ExecutionError(
                f"aggregate {expr.name}() used outside an aggregation context"
            )
        star = len(expr.args) == 1 and isinstance(expr.args[0], Star)
        if expr.name == "count" and (star or not expr.args):
            values = [1] * len(scope.group_frames)
            return fn.aggregate_count(values, expr.distinct, star=True)
        if len(expr.args) != 1:
            raise ExecutionError(f"{expr.name}() expects exactly one argument")
        argument = expr.args[0]
        values = [
            self._eval(argument, scope.row_scope(frame))
            for frame in scope.group_frames
        ]
        if expr.name == "count":
            return fn.aggregate_count(values, expr.distinct, star=False)
        if expr.name == "sum":
            return fn.aggregate_sum(values, expr.distinct)
        if expr.name == "avg":
            return fn.aggregate_avg(values, expr.distinct)
        if expr.name == "min":
            return fn.aggregate_min(values, expr.distinct)
        if expr.name == "max":
            return fn.aggregate_max(values, expr.distinct)
        raise ExecutionError(f"unknown aggregate {expr.name!r}")

    def _eval_case(self, expr: CaseExpr, scope: Scope) -> Any:
        for condition, result in expr.whens:
            if self._truthy(condition, scope):
                return self._eval(result, scope)
        if expr.default is not None:
            return self._eval(expr.default, scope)
        return None


def uses_aggregates(query: SelectQuery) -> bool:
    """Whether a SELECT core without GROUP BY still aggregates.

    The single source of truth for the aggregated-vs-plain execution
    split — shared with the vectorized executor's analysis, which must
    classify exactly as the row path does.
    """
    for item in query.projections:
        if contains_aggregate(item.expr):
            return True
    if query.having is not None:
        return True
    return any(contains_aggregate(item.expr) for item in query.order_by)


def _apply_limit(rows: List[tuple], limit: Optional[int], offset: Optional[int]) -> List[tuple]:
    start = offset or 0
    if limit is None:
        return rows[start:]
    return rows[start : start + limit]


_LIKE_CACHE: Dict[Tuple[str, bool], re.Pattern] = {}


def _like_regex(pattern: str, case_insensitive: bool) -> re.Pattern:
    key = (pattern, case_insensitive)
    cached = _LIKE_CACHE.get(key)
    if cached is not None:
        return cached
    pieces: List[str] = []
    for char in pattern:
        if char == "%":
            pieces.append(".*")
        elif char == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(char))
    flags = re.IGNORECASE | re.DOTALL if case_insensitive else re.DOTALL
    compiled = re.compile("".join(pieces), flags)
    if len(_LIKE_CACHE) > 4096:
        _LIKE_CACHE.clear()
    _LIKE_CACHE[key] = compiled
    return compiled
