"""Database facade tying catalog, storage, parser and executor together.

This is the object the rest of the library passes around: loaders fill
it with FootballDB rows, Text-to-SQL systems read its schema and
content, and the evaluation harness executes gold/predicted SQL
against it.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .catalog import Column, Schema, Table
from .columnar import VectorizedExecutor
from .executor import Executor, Result
from .optimizer import PhysicalPlan, StatsManager, explain_plan, optimize_query
from .parser import parse_sql
from .plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache
from .storage import Storage, TableData
from .values import SqlType

#: accepted ``engine_mode`` values; "auto" and "vectorized" both route
#: through the vectorized executor (which falls back per plan node),
#: "row" pins the classic tuple-at-a-time interpreter.
ENGINE_MODES = ("row", "vectorized", "auto")


class Database:
    """An in-memory relational database for one schema instance.

    Every database owns a :class:`PlanCache` (disable with
    ``plan_cache_size=0``): repeated SQL strings skip tokenize+parse,
    a fixed per-statement cost (~0.07–0.7 ms depending on query
    length, see docs/ARCHITECTURE.md) that matters most for the
    short, highly repetitive statements the evaluation harness and
    the deployed service issue; scan-bound analytics gain modestly.

    Statements additionally pass through the cost-based optimizer
    (:mod:`repro.sqlengine.optimizer`) unless ``optimize=False`` is
    given — per call or for the whole database.  The plan cache stores
    *optimized* plans: entries carry the statistics epoch they were
    planned under, so a mutation re-plans (not just re-parses) on the
    next hit, and the raw parsed AST rides along inside the entry for
    ``optimize=False`` calls.

    ``engine_mode`` selects the execution backend: ``"row"`` is the
    classic tuple-at-a-time interpreter; ``"vectorized"`` and
    ``"auto"`` (the default) run each plan node through the columnar
    batch executor when its every expression is provably vectorizable,
    falling back node-by-node to the row executor otherwise — results
    are byte-identical in all modes (see docs/ARCHITECTURE.md
    § "Vectorized execution").
    """

    def __init__(
        self,
        schema: Schema,
        enforce_foreign_keys: bool = True,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        plan_cache: Optional[PlanCache] = None,
        optimize: bool = True,
        engine_mode: str = "auto",
        tracer: Optional[Any] = None,
    ) -> None:
        if engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {ENGINE_MODES}, got {engine_mode!r}"
            )
        self.schema = schema
        # Optional repro.obs.Tracer: when set, execute() emits db.plan /
        # db.run spans under the caller's current span (or a new trace).
        self.tracer = tracer
        self.storage = Storage(schema, enforce_foreign_keys=enforce_foreign_keys)
        self._executor = Executor(self.storage)
        self._vectorized = VectorizedExecutor(self.storage, self._executor)
        self.engine_mode = engine_mode
        self.optimize = optimize
        self.stats = StatsManager(self.storage)
        self._optimizer_lock = threading.Lock()
        self._optimizer_counters: Dict[str, Any] = {
            "optimizations": 0,
            "reoptimizations": 0,
            "optimize_seconds": 0.0,
        }
        self._engine_mode_lock = threading.Lock()
        self._engine_mode_counters: Dict[str, int] = {"row_statements": 0}
        # Plans are keyed on (schema.name, schema.version, normalized SQL)
        # so a cache shared across schema variants (``plan_cache=``, used
        # by the morph fleets) never serves one version's plan for
        # another's identical SQL text.
        if plan_cache is not None:
            self.plan_cache: Optional[PlanCache] = plan_cache.for_scope(
                (schema.name, schema.version)
            )
        else:
            self.plan_cache = (
                PlanCache(plan_cache_size, scope=(schema.name, schema.version))
                if plan_cache_size
                else None
            )

    # -- data manipulation ---------------------------------------------------
    def insert(self, table_name: str, row: Sequence[Any]) -> None:
        self.storage.insert(table_name, row)

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.storage.insert_many(table_name, rows)

    def insert_dicts(self, table_name: str, records: Iterable[Dict[str, Any]]) -> int:
        """Insert mapping-shaped records; missing columns become NULL."""
        table = self.schema.table(table_name)
        count = 0
        for record in records:
            row = [record.get(column.name) for column in table.columns]
            self.storage.insert(table_name, row)
            count += 1
        return count

    # -- querying ---------------------------------------------------------------
    def execute(
        self,
        sql: str,
        cached: bool = True,
        optimize: Optional[bool] = None,
        engine_mode: Optional[str] = None,
    ) -> Result:
        """Parse, optimize and execute a SQL string.

        ``cached=False`` bypasses the plan cache for this call (used by
        benchmarks and cache-equivalence tests); the storage-level join
        indexes are independent and controlled by
        :attr:`Executor.use_join_index`.  ``optimize=False`` is the
        escape hatch executing the raw parsed AST exactly as the
        pre-optimizer engine did (``None`` inherits the database-wide
        :attr:`optimize` default).  ``engine_mode`` overrides the
        database-wide backend selection for this call (``"row"``,
        ``"vectorized"`` or ``"auto"``); every mode returns
        byte-identical results.
        """
        mode = self._resolve_engine_mode(engine_mode)
        tracer = self.tracer
        if tracer is None:
            plan = self._plan_for(sql, cached, self._resolve_optimize(optimize))
            root = plan.root if isinstance(plan, PhysicalPlan) else plan
            return self._run_plan(root, mode)
        with tracer.span(
            "db.execute", schema=self.schema.name, mode=mode, sql=sql[:120]
        ):
            with tracer.span("db.plan") as plan_span:
                hits_before = self.plan_cache.hits
                plan = self._plan_for(sql, cached, self._resolve_optimize(optimize))
                root = plan.root if isinstance(plan, PhysicalPlan) else plan
                plan_span.set_label(
                    "cached", cached and self.plan_cache.hits > hits_before
                )
            with tracer.span("db.run") as run_span:
                result = self._run_plan(root, mode)
                run_span.set_label("rows", len(result.rows))
            return result

    def _run_plan(self, root, mode: str) -> Result:
        if mode == "row":
            with self._engine_mode_lock:
                self._engine_mode_counters["row_statements"] += 1
            return self._executor.execute(root)
        return self._vectorized.execute(root)

    def execute_many(
        self,
        statements: Iterable[str],
        cached: bool = True,
        optimize: Optional[bool] = None,
        engine_mode: Optional[str] = None,
    ) -> List[Result]:
        """Batch entry point: execute statements in order.

        Repeats within the batch hit the plan cache, which is what
        makes the harness' gold-vs-predicted pairs and the service's
        ``ask_many`` fast.
        """
        return [
            self.execute(sql, cached=cached, optimize=optimize, engine_mode=engine_mode)
            for sql in statements
        ]

    def execute_ast(self, query) -> Result:
        return self._executor.execute(query)

    def explain(self, sql: str, optimize: Optional[bool] = None) -> str:
        """The textual execution plan for ``sql`` (without executing it).

        With optimization on (the default) the rendering includes scan
        and join annotations — table cardinalities, pushed predicates,
        the planner's cardinality estimates — plus the list of applied
        rewrites and the statistics epoch; with ``optimize=False`` it
        shows the raw logical plan.  The format is stable and covered
        by golden-string tests.
        """
        if self._resolve_optimize(optimize):
            plan = self._plan_for(sql, cached=True, optimize=True)
            if not isinstance(plan, PhysicalPlan):  # pragma: no cover - safety
                plan = self._optimize(plan)
        else:
            ast = self._plan_for(sql, cached=True, optimize=False)
            plan = PhysicalPlan(
                root=ast, source=ast, stats_epoch=self.stats.epoch(), rewrites=()
            )
        return explain_plan(plan, sql=sql)

    def profile_execute(
        self,
        sql: str,
        optimize: Optional[bool] = None,
        engine_mode: Optional[str] = None,
        clock=None,
    ):
        """Execute ``sql`` with per-operator instrumentation.

        Returns ``(result, profile, total_seconds)`` where ``profile``
        is a :class:`repro.obs.ExecProfile` holding one record per
        executed operator (scan, each join, filter, aggregate/project,
        finalize) with output row counts and wall times.  The profile
        is installed thread-locally on *both* executors, so vectorized
        plans that fall back per node attribute the row-executed
        operators to the row engine.  ``clock`` is injectable for
        deterministic tests.
        """
        from repro.obs.profile import ExecProfile

        mode = self._resolve_engine_mode(engine_mode)
        plan = self._plan_for(sql, cached=True, optimize=self._resolve_optimize(optimize))
        root = plan.root if isinstance(plan, PhysicalPlan) else plan
        profile = ExecProfile(clock) if clock is not None else ExecProfile()
        self._executor.set_profile(profile)
        self._vectorized.set_profile(profile)
        started = profile.clock()
        try:
            result = self._run_plan(root, mode)
        finally:
            total = profile.clock() - started
            self._executor.set_profile(None)
            self._vectorized.set_profile(None)
        return result, profile, total

    def explain_analyze(
        self,
        sql: str,
        optimize: Optional[bool] = None,
        engine_mode: Optional[str] = None,
        clock=None,
    ) -> str:
        """EXPLAIN ANALYZE: the plan rendering plus measured execution.

        Runs the statement through :meth:`profile_execute` and appends
        the per-operator table (actual rows and wall time, indented by
        subquery depth) to the regular :meth:`explain` output.  With an
        injectable ``clock`` the full rendering is deterministic, which
        is how the golden tests pin it for both executors.
        """
        from repro.obs.profile import render_analyze

        explain_text = self.explain(sql, optimize=optimize)
        result, profile, total = self.profile_execute(
            sql, optimize=optimize, engine_mode=engine_mode, clock=clock
        )
        mode = self._resolve_engine_mode(engine_mode)
        return render_analyze(explain_text, profile, mode, len(result.rows), total)

    # -- planning ----------------------------------------------------------------
    def _resolve_optimize(self, optimize: Optional[bool]) -> bool:
        return self.optimize if optimize is None else optimize

    def _resolve_engine_mode(self, engine_mode: Optional[str]) -> str:
        if engine_mode is None:
            return self.engine_mode
        if engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {ENGINE_MODES}, got {engine_mode!r}"
            )
        return engine_mode

    def _plan_for(
        self, sql: str, cached: bool, optimize: bool
    ) -> Union[PhysicalPlan, Any]:
        """Parsed (and possibly optimized) plan for ``sql``.

        Cache entries are either raw ASTs (written by ``optimize=False``
        misses) or :class:`PhysicalPlan` objects, which embed the raw
        AST as ``source`` — so toggling ``optimize`` never re-parses,
        and a stale stats epoch re-plans from the embedded source.
        """
        cache = self.plan_cache if cached else None
        entry = cache.get_plan(sql) if cache is not None else None
        if isinstance(entry, PhysicalPlan):
            if not optimize:
                return entry.source
            if entry.stats_epoch == self.stats.epoch():
                return entry
            plan = self._optimize(entry.source, replan=True)
            cache.put_plan(sql, plan)
            return plan
        if entry is not None:  # raw AST cached by an optimize=False miss
            if not optimize:
                return entry
            plan = self._optimize(entry)
            cache.put_plan(sql, plan)
            return plan
        ast = parse_sql(sql)
        if not optimize:
            if cache is not None:
                cache.put_plan(sql, ast)
            return ast
        plan = self._optimize(ast)
        if cache is not None:
            cache.put_plan(sql, plan)
        return plan

    def _optimize(self, ast, replan: bool = False) -> PhysicalPlan:
        start = time.perf_counter()
        plan = optimize_query(ast, self.schema, self.stats)
        elapsed = time.perf_counter() - start
        with self._optimizer_lock:
            self._optimizer_counters["optimizations"] += 1
            if replan:
                self._optimizer_counters["reoptimizations"] += 1
            self._optimizer_counters["optimize_seconds"] += elapsed
        return plan

    def optimizer_stats(self) -> Dict[str, Any]:
        """Optimizer observability: counts, time spent, stats state."""
        with self._optimizer_lock:
            counters = dict(self._optimizer_counters)
        counters.update(
            enabled=self.optimize,
            stats_builds=self.stats.builds,
            stats_epoch=self.stats.epoch(),
        )
        return counters

    def engine_mode_stats(self) -> Dict[str, Any]:
        """Execution-backend observability.

        ``row_statements`` counts statements pinned to the row
        executor (mode ``"row"``); ``vectorized_statements`` counts
        statements routed through the vectorized executor, whose
        ``vectorized_nodes`` / ``fallback_nodes`` split shows how many
        plan nodes actually ran columnar vs fell back to the row
        interpreter (the per-node contract of
        docs/ARCHITECTURE.md § "Vectorized execution").
        """
        with self._engine_mode_lock:
            row_statements = self._engine_mode_counters["row_statements"]
        counters = self._vectorized.counters()
        return {
            "mode": self.engine_mode,
            "row_statements": row_statements,
            "vectorized_statements": counters["statements"],
            "vectorized_nodes": counters["vectorized_nodes"],
            "fallback_nodes": counters["fallback_nodes"],
        }

    def column_store_stats(self) -> Dict[str, int]:
        """Columnar cache gauges (lazy builds, cached tables)."""
        return self._vectorized.store.stats()

    def data_epoch(self) -> int:
        """Monotonic mutation counter (see ``Storage.data_epoch``)."""
        return self.storage.data_epoch()

    def snapshot(self) -> "Database":
        """An epoch-pinned, point-in-time copy of this database.

        The returned database wraps :meth:`Storage.snapshot` — a
        row-set copy captured atomically under the storage mutation
        lock — so its ``data_epoch()`` is frozen at the capture point
        and every read against it is consistent even while *this*
        database keeps ingesting on other threads (``insert_many``
        batches are all-or-nothing from the snapshot's point of view).
        The snapshot carries its own executors, statistics and plan
        cache (cold; same capacity) and inherits ``engine_mode`` /
        ``optimize``; nothing is shared with the parent except the
        schema object and the immutable row tuples, so evaluating
        against it never races parent mutations.  This is the read
        surface the continuous-evaluation-under-ingestion driver
        (:mod:`repro.evaluation.ingestion`) pins every grid cell to.
        """
        clone = Database.__new__(Database)
        clone.schema = self.schema
        clone.tracer = self.tracer
        clone.storage = self.storage.snapshot()
        clone._executor = Executor(clone.storage)
        clone._vectorized = VectorizedExecutor(clone.storage, clone._executor)
        clone.engine_mode = self.engine_mode
        clone.optimize = self.optimize
        clone.stats = StatsManager(clone.storage)
        clone._optimizer_lock = threading.Lock()
        clone._optimizer_counters = {
            "optimizations": 0,
            "reoptimizations": 0,
            "optimize_seconds": 0.0,
        }
        clone._engine_mode_lock = threading.Lock()
        clone._engine_mode_counters = {"row_statements": 0}
        capacity = self.plan_cache.capacity if self.plan_cache is not None else 0
        clone.plan_cache = (
            PlanCache(capacity, scope=(self.schema.name, self.schema.version))
            if capacity
            else None
        )
        return clone

    def plan_cache_stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters (zeros when the cache is disabled)."""
        if self.plan_cache is None:
            return {
                "size": 0,
                "capacity": 0,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "hit_rate": 0.0,
            }
        return self.plan_cache.stats()

    # -- introspection ------------------------------------------------------------
    def row_count(self, table_name: Optional[str] = None) -> int:
        return self.storage.row_count(table_name)

    def table_data(self, table_name: str) -> TableData:
        return self.storage.data(table_name)

    def column_values(self, table_name: str, column: str) -> set:
        return self.storage.data(table_name).column_values(column)

    def sample_rows(self, table_name: str, limit: int = 3) -> List[tuple]:
        """First rows of a table — used by LLM prompt construction."""
        return self.storage.data(table_name).rows[:limit]


def make_column(name: str, type_name: str, primary_key: bool = False) -> Column:
    """Convenience constructor using textual type names."""
    mapping = {
        "int": SqlType.INTEGER,
        "integer": SqlType.INTEGER,
        "real": SqlType.REAL,
        "float": SqlType.REAL,
        "text": SqlType.TEXT,
        "varchar": SqlType.TEXT,
        "bool": SqlType.BOOLEAN,
        "boolean": SqlType.BOOLEAN,
    }
    return Column(name, mapping[type_name.lower()], primary_key)
