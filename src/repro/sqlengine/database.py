"""Database facade tying catalog, storage, parser and executor together.

This is the object the rest of the library passes around: loaders fill
it with FootballDB rows, Text-to-SQL systems read its schema and
content, and the evaluation harness executes gold/predicted SQL
against it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from .catalog import Column, Schema, Table
from .executor import Executor, Result
from .parser import parse_sql
from .plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache
from .storage import Storage, TableData
from .values import SqlType


class Database:
    """An in-memory relational database for one schema instance.

    Every database owns a :class:`PlanCache` (disable with
    ``plan_cache_size=0``): repeated SQL strings skip tokenize+parse,
    a fixed per-statement cost (~0.07–0.7 ms depending on query
    length, see docs/ARCHITECTURE.md) that matters most for the
    short, highly repetitive statements the evaluation harness and
    the deployed service issue; scan-bound analytics gain modestly.
    """

    def __init__(
        self,
        schema: Schema,
        enforce_foreign_keys: bool = True,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.schema = schema
        self.storage = Storage(schema, enforce_foreign_keys=enforce_foreign_keys)
        self._executor = Executor(self.storage)
        # Plans are keyed on (schema.name, schema.version, normalized SQL)
        # so a cache shared across schema variants (``plan_cache=``, used
        # by the morph fleets) never serves one version's plan for
        # another's identical SQL text.
        if plan_cache is not None:
            self.plan_cache: Optional[PlanCache] = plan_cache.for_scope(
                (schema.name, schema.version)
            )
        else:
            self.plan_cache = (
                PlanCache(plan_cache_size, scope=(schema.name, schema.version))
                if plan_cache_size
                else None
            )

    # -- data manipulation ---------------------------------------------------
    def insert(self, table_name: str, row: Sequence[Any]) -> None:
        self.storage.insert(table_name, row)

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.storage.insert_many(table_name, rows)

    def insert_dicts(self, table_name: str, records: Iterable[Dict[str, Any]]) -> int:
        """Insert mapping-shaped records; missing columns become NULL."""
        table = self.schema.table(table_name)
        count = 0
        for record in records:
            row = [record.get(column.name) for column in table.columns]
            self.storage.insert(table_name, row)
            count += 1
        return count

    # -- querying ---------------------------------------------------------------
    def execute(self, sql: str, cached: bool = True) -> Result:
        """Parse and execute a SQL string.

        ``cached=False`` bypasses the plan cache for this call (used by
        benchmarks and cache-equivalence tests); the storage-level join
        indexes are independent and controlled by
        :attr:`Executor.use_join_index`.
        """
        cache = self.plan_cache if cached else None
        return self._executor.execute(parse_sql(sql, cache=cache))

    def execute_many(self, statements: Iterable[str], cached: bool = True) -> List[Result]:
        """Batch entry point: execute statements in order.

        Repeats within the batch hit the plan cache, which is what
        makes the harness' gold-vs-predicted pairs and the service's
        ``ask_many`` fast.
        """
        return [self.execute(sql, cached=cached) for sql in statements]

    def execute_ast(self, query) -> Result:
        return self._executor.execute(query)

    def plan_cache_stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters (zeros when the cache is disabled)."""
        if self.plan_cache is None:
            return {
                "size": 0,
                "capacity": 0,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "hit_rate": 0.0,
            }
        return self.plan_cache.stats()

    # -- introspection ------------------------------------------------------------
    def row_count(self, table_name: Optional[str] = None) -> int:
        return self.storage.row_count(table_name)

    def table_data(self, table_name: str) -> TableData:
        return self.storage.data(table_name)

    def column_values(self, table_name: str, column: str) -> set:
        return self.storage.data(table_name).column_values(column)

    def sample_rows(self, table_name: str, limit: int = 3) -> List[tuple]:
        """First rows of a table — used by LLM prompt construction."""
        return self.storage.data(table_name).rows[:limit]


def make_column(name: str, type_name: str, primary_key: bool = False) -> Column:
    """Convenience constructor using textual type names."""
    mapping = {
        "int": SqlType.INTEGER,
        "integer": SqlType.INTEGER,
        "real": SqlType.REAL,
        "float": SqlType.REAL,
        "text": SqlType.TEXT,
        "varchar": SqlType.TEXT,
        "bool": SqlType.BOOLEAN,
        "boolean": SqlType.BOOLEAN,
    }
    return Column(name, mapping[type_name.lower()], primary_key)
