"""Recursive-descent parser for the engine's SQL dialect.

Supported surface (deliberately a superset of everything the FootballDB
gold queries use):

* ``SELECT [DISTINCT]`` with expressions, aliases, ``*`` and ``alias.*``
* ``FROM`` with table aliases and ``[INNER|LEFT [OUTER]|CROSS] JOIN … ON``
* ``WHERE`` with full boolean expressions, ``[NOT] LIKE`` / ``ILIKE``,
  ``[NOT] BETWEEN``, ``[NOT] IN (list | subquery)``, ``IS [NOT] NULL``,
  ``EXISTS (subquery)`` and scalar subqueries
* aggregates with ``DISTINCT``, ``GROUP BY``, ``HAVING``
* ``ORDER BY … [ASC|DESC]``, ``LIMIT``, ``OFFSET``
* ``UNION [ALL]`` / ``INTERSECT`` / ``EXCEPT`` chains
* ``CASE WHEN … THEN … [ELSE …] END`` and ``CAST(expr AS type)``
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    BetweenOp,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Conjunction,
    ExistsOp,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOperator,
    Star,
    TableRef,
    UnaryOp,
)
from .errors import ParseError
from .tokenizer import Token, TokenType, tokenize

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


def parse_sql(sql: str, cache=None) -> QueryNode:
    """Parse ``sql`` into a query AST (the module's main entry point).

    ``cache`` is an optional :class:`~repro.sqlengine.plan_cache.PlanCache`;
    when given, a hit returns the previously parsed AST without
    re-tokenizing, and successful parses are stored for the next call.
    Parse errors are never cached.
    """
    if cache is not None:
        plan = cache.get_plan(sql)
        if plan is not None:
            return plan
    parser = Parser(tokenize(sql))
    query = parser.parse_statement()
    if cache is not None:
        cache.put_plan(sql, query)
    return query


class Parser:
    """Single-statement SQL parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing ----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def _check_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept_keyword(self, *names: str) -> bool:
        if self._check_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> Token:
        if not self._check_keyword(name):
            raise ParseError(
                f"expected {name.upper()}, found {self._peek().value!r}",
                self._position,
            )
        return self._advance()

    def _accept_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise ParseError(
                f"expected {value!r}, found {self._peek().value!r}", self._position
            )

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(
                f"expected identifier, found {token.value!r}", self._position
            )
        self._advance()
        return token.value

    # -- statements ----------------------------------------------------------
    def parse_statement(self) -> QueryNode:
        query = self._parse_query_expression()
        self._accept_punct(";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(f"trailing input {token.value!r}", self._position)
        return query

    def _parse_query_expression(self) -> QueryNode:
        node: QueryNode = self._parse_select_core()
        while True:
            operator = self._accept_set_operator()
            if operator is None:
                break
            right = self._parse_select_core()
            node = SetOperation(operator, node, right)
        # ORDER BY / LIMIT bind to the whole compound.
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        if order_by or limit is not None or offset is not None:
            node.order_by = order_by
            node.limit = limit
            node.offset = offset
        return node

    def _accept_set_operator(self) -> Optional[SetOperator]:
        if self._accept_keyword("union"):
            if self._accept_keyword("all"):
                return SetOperator.UNION_ALL
            return SetOperator.UNION
        if self._accept_keyword("intersect"):
            return SetOperator.INTERSECT
        if self._accept_keyword("except"):
            return SetOperator.EXCEPT
        return None

    def _parse_select_core(self) -> SelectQuery:
        # Allow a parenthesized select core in compound position.
        if self._peek().type is TokenType.PUNCTUATION and self._peek().value == "(":
            if self._peek(1).is_keyword("select"):
                self._advance()
                inner = self._parse_query_expression()
                self._expect_punct(")")
                if isinstance(inner, SelectQuery):
                    return inner
                raise ParseError("parenthesized compound queries are not supported here")
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        if distinct is False:
            self._accept_keyword("all")
        projections = [self._parse_select_item()]
        while self._accept_punct(","):
            projections.append(self._parse_select_item())
        query = SelectQuery(projections=projections, distinct=distinct)
        if self._accept_keyword("from"):
            query.from_table = self._parse_table_ref()
            query.joins = self._parse_joins()
        if self._accept_keyword("where"):
            query.where = self._parse_expression()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            query.group_by = [self._parse_expression()]
            while self._accept_punct(","):
                query.group_by.append(self._parse_expression())
        if self._accept_keyword("having"):
            query.having = self._parse_expression()
        return query

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return SelectItem(Star())
        expr = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return SelectItem(expr, alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return TableRef(name, alias)

    def _parse_joins(self) -> List[Join]:
        joins: List[Join] = []
        while True:
            kind = self._accept_join_kind()
            if kind is None:
                break
            table = self._parse_table_ref()
            condition = None
            if kind is not JoinKind.CROSS:
                self._expect_keyword("on")
                condition = self._parse_expression()
            joins.append(Join(kind, table, condition))
        return joins

    def _accept_join_kind(self) -> Optional[JoinKind]:
        if self._accept_keyword("cross"):
            self._expect_keyword("join")
            return JoinKind.CROSS
        if self._accept_keyword("inner"):
            self._expect_keyword("join")
            return JoinKind.INNER
        if self._accept_keyword("left"):
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return JoinKind.LEFT
        if self._accept_keyword("join"):
            return JoinKind.INNER
        return None

    def _parse_order_by(self) -> List[OrderItem]:
        if not self._accept_keyword("order"):
            return []
        self._expect_keyword("by")
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, descending)

    def _parse_limit_offset(self) -> tuple:
        limit = offset = None
        if self._accept_keyword("limit"):
            limit = self._parse_integer("LIMIT")
        if self._accept_keyword("offset"):
            offset = self._parse_integer("OFFSET")
        return limit, offset

    def _parse_integer(self, clause: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise ParseError(f"{clause} expects an integer", self._position)
        self._advance()
        return int(token.value)

    # -- expressions ---------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        terms = [self._parse_and()]
        while self._accept_keyword("or"):
            terms.append(self._parse_and())
        if len(terms) == 1:
            return terms[0]
        return Conjunction("OR", tuple(terms))

    def _parse_and(self) -> Expression:
        terms = [self._parse_not()]
        while self._accept_keyword("and"):
            terms.append(self._parse_not())
        if len(terms) == 1:
            return terms[0]
        return Conjunction("AND", tuple(terms))

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            op = "<>" if token.value == "!=" else token.value
            return BinaryOp(op, left, right)
        negated = False
        if self._check_keyword("not") and self._peek(1).is_keyword(
            "like", "ilike", "between", "in"
        ):
            self._advance()
            negated = True
        if self._accept_keyword("like"):
            return LikeOp(left, self._parse_additive(), False, negated)
        if self._accept_keyword("ilike"):
            return LikeOp(left, self._parse_additive(), True, negated)
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return BetweenOp(left, low, high, negated)
        if self._accept_keyword("in"):
            return self._parse_in_tail(left, negated)
        if self._accept_keyword("is"):
            is_negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNullOp(left, is_negated)
        return left

    def _parse_in_tail(self, left: Expression, negated: bool) -> Expression:
        self._expect_punct("(")
        if self._check_keyword("select"):
            subquery = self._parse_query_expression()
            self._expect_punct(")")
            return InOp(left, subquery=subquery, negated=negated)
        options = [self._parse_expression()]
        while self._accept_punct(","):
            options.append(self._parse_expression())
        self._expect_punct(")")
        return InOp(left, options=tuple(options), negated=negated)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_keyword("cast"):
            return self._parse_cast()
        if token.is_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_query_expression()
            self._expect_punct(")")
            return ExistsOp(subquery)
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            if self._peek(1).is_keyword("select"):
                self._advance()
                subquery = self._parse_query_expression()
                self._expect_punct(")")
                return ScalarSubquery(subquery)
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise ParseError(f"unexpected token {token.value!r}", self._position)

    def _parse_identifier_expression(self) -> Expression:
        name = self._expect_identifier()
        # Function call?
        if self._peek().type is TokenType.PUNCTUATION and self._peek().value == "(":
            self._advance()
            return self._parse_function_tail(name)
        # Qualified reference: alias.column or alias.*
        if self._accept_punct("."):
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value == "*":
                self._advance()
                return Star(table=name)
            column = self._expect_identifier()
            return ColumnRef(column, table=name)
        return ColumnRef(name)

    def _parse_function_tail(self, name: str) -> Expression:
        distinct = self._accept_keyword("distinct")
        token = self._peek()
        args: List[Expression] = []
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            args.append(Star())
        elif not (token.type is TokenType.PUNCTUATION and token.value == ")"):
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
        self._expect_punct(")")
        return FunctionCall(name.lower(), tuple(args), distinct)

    def _parse_case(self) -> Expression:
        self._expect_keyword("case")
        whens = []
        while self._accept_keyword("when"):
            condition = self._parse_expression()
            self._expect_keyword("then")
            result = self._parse_expression()
            whens.append((condition, result))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self._position)
        default = None
        if self._accept_keyword("else"):
            default = self._parse_expression()
        self._expect_keyword("end")
        return CaseExpr(tuple(whens), default)

    def _parse_cast(self) -> Expression:
        self._expect_keyword("cast")
        self._expect_punct("(")
        expr = self._parse_expression()
        self._expect_keyword("as")
        type_name = self._expect_identifier()
        self._expect_punct(")")
        return FunctionCall("cast", (expr, Literal(type_name.lower())))
