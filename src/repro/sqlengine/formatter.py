"""AST → SQL text rendering.

The formatter produces canonical SQL that round-trips through the
parser.  It is used by the SemQL decoder (whose output *is* an AST), by
the gold-SQL compiler, and by the corruption operators — everything that
builds queries programmatically and must hand a string to a Text-to-SQL
pipeline or to the engine.
"""

from __future__ import annotations

from typing import List

from .ast_nodes import (
    BetweenOp,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Conjunction,
    ExistsOp,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    SetOperation,
    Star,
    TableRef,
    UnaryOp,
)
from .errors import EngineError

_PRECEDENCE_PARENS = (Conjunction, BinaryOp, UnaryOp, LikeOp, BetweenOp, InOp, IsNullOp)


def format_query(node: QueryNode) -> str:
    """Render a query AST as a single-line SQL string."""
    if isinstance(node, SetOperation):
        text = (
            f"{format_query(node.left)} {node.operator.value} "
            f"{format_query(node.right)}"
        )
        text += _format_tail(node.order_by, node.limit, node.offset)
        return text
    return _format_select(node)


def _format_select(query: SelectQuery) -> str:
    parts: List[str] = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_format_item(item) for item in query.projections))
    if query.from_table is not None:
        parts.append("FROM")
        parts.append(_format_table(query.from_table))
        for join in query.joins:
            parts.append(_format_join(join))
    if query.where is not None:
        parts.append("WHERE")
        parts.append(format_expression(query.where))
    if query.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(format_expression(expr) for expr in query.group_by))
    if query.having is not None:
        parts.append("HAVING")
        parts.append(format_expression(query.having))
    text = " ".join(parts)
    text += _format_tail(query.order_by, query.limit, query.offset)
    return text


def _format_tail(order_by: List[OrderItem], limit, offset) -> str:
    text = ""
    if order_by:
        rendered = ", ".join(
            format_expression(item.expr) + (" DESC" if item.descending else "")
            for item in order_by
        )
        text += f" ORDER BY {rendered}"
    if limit is not None:
        text += f" LIMIT {limit}"
    if offset is not None:
        text += f" OFFSET {offset}"
    return text


def _format_item(item: SelectItem) -> str:
    rendered = format_expression(item.expr)
    if item.alias:
        rendered += f" AS {item.alias}"
    return rendered


def _format_table(ref: TableRef) -> str:
    if ref.alias:
        return f"{ref.table} AS {ref.alias}"
    return ref.table


def _format_join(join: Join) -> str:
    if join.kind is JoinKind.CROSS:
        return f"CROSS JOIN {_format_table(join.table)}"
    rendered = f"{join.kind.value} {_format_table(join.table)}"
    if join.condition is not None:
        rendered += f" ON {format_expression(join.condition)}"
    return rendered


def format_expression(expr: Expression) -> str:
    """Render one expression node."""
    if isinstance(expr, Literal):
        return format_literal(expr.value)
    if isinstance(expr, ColumnRef):
        return expr.qualified
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, Conjunction):
        joined = f" {expr.op} ".join(
            _maybe_parenthesize(term, expr) for term in expr.terms
        )
        return joined
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return f"NOT {_maybe_parenthesize(expr.operand, expr)}"
        return f"-{_maybe_parenthesize(expr.operand, expr)}"
    if isinstance(expr, BinaryOp):
        left = _maybe_parenthesize(expr.left, expr)
        right = _maybe_parenthesize(expr.right, expr)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, LikeOp):
        keyword = "ILIKE" if expr.case_insensitive else "LIKE"
        if expr.negated:
            keyword = f"NOT {keyword}"
        return (
            f"{format_expression(expr.expr)} {keyword} "
            f"{format_expression(expr.pattern)}"
        )
    if isinstance(expr, BetweenOp):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{format_expression(expr.expr)} {keyword} "
            f"{format_expression(expr.low)} AND {format_expression(expr.high)}"
        )
    if isinstance(expr, IsNullOp):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{format_expression(expr.expr)} {keyword}"
    if isinstance(expr, InOp):
        keyword = "NOT IN" if expr.negated else "IN"
        if expr.subquery is not None:
            inner = format_query(expr.subquery)
        else:
            inner = ", ".join(format_expression(option) for option in expr.options or ())
        return f"{format_expression(expr.expr)} {keyword} ({inner})"
    if isinstance(expr, ExistsOp):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} ({format_query(expr.subquery)})"
    if isinstance(expr, ScalarSubquery):
        return f"({format_query(expr.subquery)})"
    if isinstance(expr, FunctionCall):
        if expr.name == "cast" and len(expr.args) == 2:
            value, type_name = expr.args
            if isinstance(type_name, Literal):
                return (
                    f"CAST({format_expression(value)} AS "
                    f"{str(type_name.value).upper()})"
                )
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(format_expression(arg) for arg in expr.args)
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {format_expression(condition)} THEN {format_expression(result)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {format_expression(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise EngineError(f"cannot format expression node {type(expr).__name__}")


def format_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _maybe_parenthesize(child: Expression, parent: Expression) -> str:
    rendered = format_expression(child)
    needs_parens = False
    if isinstance(parent, Conjunction) and isinstance(child, Conjunction):
        needs_parens = child.op != parent.op
    elif isinstance(parent, UnaryOp) and isinstance(child, (Conjunction, BinaryOp)):
        needs_parens = True
    elif isinstance(parent, BinaryOp) and isinstance(child, (Conjunction, BinaryOp)):
        needs_parens = True
    return f"({rendered})" if needs_parens else rendered
