"""Export an engine database into sqlite3 for differential verification.

The stdlib's SQLite serves as a semantics oracle in the differential
tests and in ``scripts/verify_morphs.py``: the same schema and rows are
loaded into both engines and result multisets must agree.  This module
is the single implementation of that export so the dialect decisions
stay in one place:

* BOOLEAN columns become TEXT storing ``'True'``/``'False'`` — the form
  the gold queries compare against (``goal = 'True'``), matching the
  engine's boolean/text alignment;
* ``case_sensitive_like=True`` mirrors the engine's case-sensitive
  ``LIKE``; leave it off when queries go through
  :func:`sqlite_dialect`'s ``ILIKE`` → ``LIKE`` rendering, because
  sqlite's default case-insensitive ``LIKE`` is what matches ``ILIKE``
  semantics.
"""

from __future__ import annotations

import sqlite3

from .database import Database
from .executor import Result
from .values import SqlType

_TYPE_NAMES = {
    SqlType.INTEGER: "INTEGER",
    SqlType.REAL: "REAL",
    SqlType.TEXT: "TEXT",
    SqlType.BOOLEAN: "TEXT",
}


def to_sqlite(
    database: Database, case_sensitive_like: bool = False
) -> sqlite3.Connection:
    """Load ``database``'s schema and rows into a fresh in-memory sqlite3."""
    conn = sqlite3.connect(":memory:")
    if case_sensitive_like:
        conn.execute("PRAGMA case_sensitive_like = ON")
    for table in database.schema.tables:
        columns = ", ".join(
            f'"{column.name}" {_TYPE_NAMES[column.sql_type]}'
            for column in table.columns
        )
        conn.execute(f'CREATE TABLE "{table.name}" ({columns})')
        rows = [
            tuple(str(value) if isinstance(value, bool) else value for value in row)
            for row in database.table_data(table.name).rows
        ]
        placeholders = ", ".join("?" * len(table.columns))
        conn.executemany(
            f'INSERT INTO "{table.name}" VALUES ({placeholders})', rows
        )
    return conn


def sqlite_dialect(sql: str) -> str:
    """Render engine SQL in sqlite's dialect.

    sqlite has no ``ILIKE``; its default ``LIKE`` is case-insensitive,
    which matches the engine's ``ILIKE`` semantics (so only use this
    with a connection created without ``case_sensitive_like``).  Gold
    literals never contain the token, making the textual swap safe.
    """
    return sql.replace(" ILIKE ", " LIKE ")


def sqlite_result(conn: sqlite3.Connection, sql: str) -> Result:
    """Execute ``sql`` on sqlite and wrap the rows as an engine Result."""
    cursor = conn.execute(sql)
    columns = (
        [description[0] for description in cursor.description]
        if cursor.description
        else []
    )
    return Result(columns, cursor.fetchall())
