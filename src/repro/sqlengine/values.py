"""SQL value domain: types, NULL semantics and coercion rules.

The engine stores plain Python objects (``int``, ``float``, ``str``,
``bool`` and ``None``) and implements SQL's three-valued logic on top of
them.  ``None`` plays the role of SQL ``NULL`` throughout: comparisons
involving ``NULL`` yield ``UNKNOWN`` (also represented as ``None`` at the
boolean level), and aggregate functions skip ``NULL`` inputs.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Optional

from .errors import TypeMismatchError


class SqlType(enum.Enum):
    """Column types supported by the engine catalog."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"

    @property
    def python_types(self) -> tuple[type, ...]:
        return _PYTHON_TYPES[self]


_PYTHON_TYPES = {
    SqlType.INTEGER: (int,),
    SqlType.REAL: (float, int),
    SqlType.TEXT: (str,),
    SqlType.BOOLEAN: (bool,),
}

#: comparison type classes: INTEGER and REAL share one class because
#: normalization folds integral floats.  Shared by the executor's
#: hash-compatibility check and the optimizer's error-freedom analysis,
#: which must agree for the optimized/unoptimized equivalence contract.
TYPE_CLASSES = {
    SqlType.INTEGER: "number",
    SqlType.REAL: "number",
    SqlType.TEXT: "text",
    SqlType.BOOLEAN: "bool",
}


def type_class(sql_type: SqlType) -> str:
    """The comparison type class of a catalog column type."""
    return TYPE_CLASSES[sql_type]


def sql_text(value: Any) -> str:
    """SQL string conversion (``||`` operands): booleans lowercase."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def coerce(value: Any, sql_type: SqlType) -> Any:
    """Coerce ``value`` into ``sql_type``, raising on impossible coercions.

    ``None`` (SQL NULL) passes through untouched.  Numeric strings are
    *not* silently converted — loose coercion hides data bugs, and the
    FootballDB loaders always insert properly typed rows.
    """
    if value is None:
        return None
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise TypeMismatchError(f"cannot store {value!r} in BOOLEAN column")
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            raise TypeMismatchError("cannot store boolean in INTEGER column")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeMismatchError(f"cannot store {value!r} in INTEGER column")
    if sql_type is SqlType.REAL:
        if isinstance(value, bool):
            raise TypeMismatchError("cannot store boolean in REAL column")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeMismatchError(f"cannot store {value!r} in REAL column")
    if sql_type is SqlType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"cannot store {value!r} in TEXT column")
    raise TypeMismatchError(f"unknown SQL type {sql_type!r}")


def is_null(value: Any) -> bool:
    return value is None


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL ``=``: NULL operands produce UNKNOWN (``None``)."""
    if left is None or right is None:
        return None
    left, right = _align(left, right)
    return left == right


def sql_compare(left: Any, right: Any) -> Optional[int]:
    """Three-way comparison used by ``<``/``>``/``ORDER BY``.

    Returns ``None`` for UNKNOWN, otherwise -1/0/1.
    """
    if left is None or right is None:
        return None
    left, right = _align(left, right)
    try:
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    except TypeError as exc:  # e.g. str < int
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        ) from exc


def _align(left: Any, right: Any) -> tuple[Any, Any]:
    """Align operand types for comparison.

    Numeric values compare cross-type (``1 = 1.0``).  Booleans compare
    with the text literals ``'True'``/``'False'`` because data model v3
    stores its ``winner``/``runner_up`` flags as booleans while user
    queries (and the paper's Listing 1) write ``T1.winner = 'True'``.
    Numbers and numeric-looking strings also align — gold SQL written by
    annotators frequently quotes years (``year = '2014'``).
    """
    if isinstance(left, bool) and isinstance(right, str):
        return ("true" if left else "false"), right.strip().lower()
    if isinstance(right, bool) and isinstance(left, str):
        aligned_right, aligned_left = _align(right, left)
        return aligned_left, aligned_right
    if isinstance(left, str) and isinstance(right, (int, float)) and not isinstance(right, bool):
        converted = _try_number(left)
        if converted is not None:
            return converted, right
    if isinstance(right, str) and isinstance(left, (int, float)) and not isinstance(left, bool):
        converted = _try_number(right)
        if converted is not None:
            return left, converted
    return left, right


def _try_number(text: str) -> Optional[float]:
    try:
        value = float(text)
    except ValueError:
        return None
    return value


def sql_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Optional[bool]) -> Optional[bool]:
    if value is None:
        return None
    return not value


_SORT_RANK = {type(None): 0, bool: 1, int: 2, float: 2, str: 3}


def sort_key(value: Any) -> tuple[int, Any]:
    """Total-order key so heterogeneous result columns can be sorted.

    NULLs sort first (matching PostgreSQL's ``NULLS FIRST`` for ASC with
    the engine's deterministic tie-breaking needs), then booleans,
    numbers and text.
    """
    rank = _SORT_RANK.get(type(value), 4)
    if value is None:
        return (rank, 0)
    if isinstance(value, bool):
        return (rank, int(value))
    return (rank, value)


def row_sort_key(row: Iterable[Any]) -> tuple:
    return tuple(sort_key(value) for value in row)


def normalize_for_comparison(value: Any) -> Any:
    """Canonicalize a cell for result-set comparison (the EX metric).

    Integral floats become ints so ``AVG`` vs ``SUM/COUNT`` round trips
    compare equal, and booleans normalize to their text form because the
    three data models disagree on the storage type of flags.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return round(value, 6)
    return value
