"""In-memory relational SQL engine.

The engine replaces the PostgreSQL instance of the paper's deployment
(Figure 2).  It provides:

* a catalog model (:class:`Schema`, :class:`Table`, :class:`Column`,
  :class:`ForeignKey`) that Text-to-SQL systems serialize into inputs;
* a SQL parser covering joins, aggregation, set operations, subqueries
  and PostgreSQL's ``ILIKE``;
* an executor with hash joins and SQL three-valued logic;
* a formatter so programmatically built ASTs round-trip to text.

Quick example::

    from repro.sqlengine import Database, Schema, make_column

    schema = Schema("demo")
    schema.create_table("t", [make_column("id", "int", primary_key=True),
                              make_column("name", "text")])
    db = Database(schema)
    db.insert("t", (1, "Zurich"))
    result = db.execute("SELECT name FROM t WHERE id = 1")
    assert result.rows == [("Zurich",)]
"""

from .ast_nodes import (
    BetweenOp,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Conjunction,
    ExistsOp,
    Expression,
    FunctionCall,
    InOp,
    IsNullOp,
    Join,
    JoinKind,
    LikeOp,
    Literal,
    OrderItem,
    QueryNode,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOperator,
    Star,
    TableRef,
    UnaryOp,
    contains_aggregate,
    is_aggregate_call,
    iter_subqueries,
)
from .catalog import Column, ForeignKey, Schema, Table
from .columnar import ColumnStore, VectorizedExecutor, analyze_select
from .database import ENGINE_MODES, Database, make_column
from .optimizer import (
    ColumnStats,
    PhysicalPlan,
    PlannedSelect,
    StatsManager,
    TableStats,
    explain_plan,
    optimize_query,
)
from .errors import (
    CatalogError,
    ConstraintError,
    EngineError,
    ExecutionError,
    ParseError,
    TokenizeError,
    TypeMismatchError,
)
from .executor import Executor, Result
from .formatter import format_expression, format_literal, format_query
from .parser import parse_sql
from .plan_cache import DEFAULT_PLAN_CACHE_SIZE, LRUCache, PlanCache, normalize_sql
from .sqlite_bridge import sqlite_dialect, sqlite_result, to_sqlite
from .tokenizer import Token, TokenType, tokenize
from .values import SqlType, normalize_for_comparison

__all__ = [
    "BetweenOp",
    "BinaryOp",
    "CaseExpr",
    "CatalogError",
    "Column",
    "ColumnRef",
    "ColumnStats",
    "ColumnStore",
    "Conjunction",
    "ConstraintError",
    "DEFAULT_PLAN_CACHE_SIZE",
    "Database",
    "ENGINE_MODES",
    "EngineError",
    "ExecutionError",
    "Executor",
    "ExistsOp",
    "Expression",
    "ForeignKey",
    "FunctionCall",
    "InOp",
    "IsNullOp",
    "Join",
    "JoinKind",
    "LRUCache",
    "LikeOp",
    "Literal",
    "OrderItem",
    "ParseError",
    "PhysicalPlan",
    "PlanCache",
    "PlannedSelect",
    "QueryNode",
    "Result",
    "ScalarSubquery",
    "Schema",
    "SelectItem",
    "SelectQuery",
    "SetOperation",
    "SetOperator",
    "SqlType",
    "Star",
    "StatsManager",
    "Table",
    "TableRef",
    "TableStats",
    "Token",
    "TokenType",
    "TokenizeError",
    "TypeMismatchError",
    "UnaryOp",
    "VectorizedExecutor",
    "analyze_select",
    "contains_aggregate",
    "explain_plan",
    "format_expression",
    "format_literal",
    "format_query",
    "is_aggregate_call",
    "iter_subqueries",
    "make_column",
    "normalize_for_comparison",
    "normalize_sql",
    "optimize_query",
    "parse_sql",
    "sqlite_dialect",
    "sqlite_result",
    "to_sqlite",
    "tokenize",
]
