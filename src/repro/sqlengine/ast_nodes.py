"""Typed AST for the SQL dialect the engine supports.

Two node families:

* expressions (:class:`Expression` subclasses) — column references,
  literals, operators, function calls and subquery expressions;
* query structure (:class:`SelectQuery`, :class:`SetOperation`) — a
  single SELECT core with FROM/JOIN/WHERE/GROUP BY/HAVING/ORDER BY/LIMIT,
  or a set-operation tree combining two query nodes.

The same AST is produced by the parser, consumed by the executor,
serialized back to text by :mod:`repro.sqlengine.formatter`, inspected by
the analysis toolkit, and *constructed programmatically* by the SemQL
decoder and the gold-SQL compiler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union


class Expression:
    """Marker base class for expression nodes."""

    def children(self) -> Sequence["Expression"]:
        return ()

    def walk(self):
        """Yield this node and all expression descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expression):
    value: Any  # int | float | str | bool | None


@dataclass(frozen=True)
class ColumnRef(Expression):
    column: str
    table: Optional[str] = None  # alias or table name; None = unqualified

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a projection or ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', '%', '||'
    left: Expression
    right: Expression

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # '-', 'NOT'
    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)


@dataclass(frozen=True)
class Conjunction(Expression):
    """N-ary AND/OR; keeps filter counting simple for the analyzer."""

    op: str  # 'AND' | 'OR'
    terms: tuple  # tuple[Expression, ...]

    def children(self) -> Sequence[Expression]:
        return self.terms


@dataclass(frozen=True)
class LikeOp(Expression):
    expr: Expression
    pattern: Expression
    case_insensitive: bool = False  # True => ILIKE
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr, self.pattern)


@dataclass(frozen=True)
class BetweenOp(Expression):
    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr, self.low, self.high)


@dataclass(frozen=True)
class IsNullOp(Expression):
    expr: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.expr,)


@dataclass(frozen=True)
class InOp(Expression):
    expr: Expression
    # Either a literal tuple of expressions or a subquery.
    options: Optional[tuple] = None  # tuple[Expression, ...]
    subquery: Optional["QueryNode"] = None
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        extra = tuple(self.options) if self.options else ()
        return (self.expr, *extra)


@dataclass(frozen=True)
class ExistsOp(Expression):
    subquery: "QueryNode"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    subquery: "QueryNode"


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str  # lower-cased
    args: tuple  # tuple[Expression, ...]
    distinct: bool = False

    def children(self) -> Sequence[Expression]:
        return self.args


@dataclass(frozen=True)
class CaseExpr(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: tuple  # tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression] = None

    def children(self) -> Sequence[Expression]:
        flat: List[Expression] = []
        for condition, result in self.whens:
            flat.extend((condition, result))
        if self.default is not None:
            flat.append(self.default)
        return tuple(flat)


AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate_call(expr: Expression) -> bool:
    return isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expression) -> bool:
    return any(is_aggregate_call(node) for node in expr.walk())


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


class JoinKind(enum.Enum):
    INNER = "JOIN"
    LEFT = "LEFT JOIN"
    CROSS = "CROSS JOIN"


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table instance: base table plus optional alias.

    Distinct aliases over the same base table are how SQL expresses the
    self-join pattern of Figure 4 (``national_team AS T2`` vs ``AS T3``)
    — the pattern the Spider parser cannot represent.
    """

    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this instance is addressable by in expressions."""
        return self.alias or self.table


@dataclass(frozen=True)
class Join:
    kind: JoinKind
    table: TableRef
    condition: Optional[Expression]  # None only for CROSS


@dataclass(frozen=True)
class SelectItem:
    expr: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expression
    descending: bool = False


@dataclass
class SelectQuery:
    """One SELECT core."""

    projections: List[SelectItem]
    from_table: Optional[TableRef] = None
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    # -- structural helpers used throughout the analysis toolkit ----------
    @property
    def table_refs(self) -> List[TableRef]:
        refs = [] if self.from_table is None else [self.from_table]
        refs.extend(join.table for join in self.joins)
        return refs

    def iter_expressions(self):
        for item in self.projections:
            yield item.expr
        for join in self.joins:
            if join.condition is not None:
                yield join.condition
        if self.where is not None:
            yield self.where
        yield from self.group_by
        if self.having is not None:
            yield self.having
        for item in self.order_by:
            yield item.expr

    def iter_selects(self):
        yield self


class SetOperator(enum.Enum):
    UNION = "UNION"
    UNION_ALL = "UNION ALL"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"


@dataclass
class SetOperation:
    """A set-operation tree node (left-associative chains from the parser)."""

    operator: SetOperator
    left: "QueryNode"
    right: "QueryNode"
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    def iter_selects(self):
        yield from self.left.iter_selects()
        yield from self.right.iter_selects()


QueryNode = Union[SelectQuery, SetOperation]


def iter_subqueries(node: QueryNode):
    """Yield every nested query node appearing in expressions of ``node``."""
    for select in node.iter_selects():
        for expr in select.iter_expressions():
            for part in expr.walk():
                nested = None
                if isinstance(part, InOp):
                    nested = part.subquery
                elif isinstance(part, ExistsOp):
                    nested = part.subquery
                elif isinstance(part, ScalarSubquery):
                    nested = part.subquery
                if nested is not None:
                    yield nested
                    yield from iter_subqueries(nested)
