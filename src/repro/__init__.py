"""repro — reproduction of the EDBT 2025 FootballDB data-model robustness study.

The package implements, from scratch and fully offline:

* :mod:`repro.sqlengine` — an in-memory relational engine (PostgreSQL stand-in);
* :mod:`repro.domains` — generated evaluation domains, the domain
  registry, the schema morpher and the grammar-based query fuzzer;
* :mod:`repro.footballdb` — the FootballDB dataset in three data models;
* :mod:`repro.workload` — the real-user question workload and gold SQL;
* :mod:`repro.nlp` — embedding/clustering/sampling substrate;
* :mod:`repro.analysis` — query characteristics and Spider hardness;
* :mod:`repro.systems` — the five evaluated Text-to-SQL systems;
* :mod:`repro.evaluation` — the execution-accuracy harness;
* :mod:`repro.benchmark` — benchmark packaging and dataset comparison;
* :mod:`repro.deployment` — the live-deployment service simulation.

See README.md for a quickstart and DESIGN.md for the architecture map.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
