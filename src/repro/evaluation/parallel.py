"""Concurrent grid evaluation: system x data model x budget x fold.

The paper's Table 5/6/7 sweeps are embarrassingly parallel — each
configuration (system class, data model version, training budget, fold)
is evaluated independently — yet the seed harness ran them serially.
:class:`ParallelHarness` fans a list of :class:`GridConfig` entries
across a ``concurrent.futures`` thread pool and returns the same
:class:`~repro.evaluation.harness.EvaluationResult` objects the serial
path produces, plus a :class:`GridSummary` with wall-clock/throughput
numbers.

Determinism guarantees (see docs/ARCHITECTURE.md):

* every configuration runs the unchanged ``Harness.evaluate`` code
  path, whose only randomness is ``random.Random(10_000 + 97*fold +
  shots)`` — a function of the configuration, never of scheduling;
* workers check exclusive :class:`Harness` clones out of a pool over
  the shared, read-only databases and dataset, so no two threads ever
  touch the same ``ExecutionEvaluator`` / ``GoldOracle`` caches, and
  those caches are pure memoization (they can never change a verdict,
  only skip a re-execution);
* results are returned in input order (``Executor.map`` semantics).

The pool is seeded with the calling harness and retained across
``run`` calls, and all clones share one EX-result cache per version,
so consecutive sweeps (Table 5, then Table 6, …) keep reusing warm
caches exactly as the serial seed code did — each distinct SQL string
executes once fleet-wide regardless of worker count.

Hence ``evaluate_grid(configs)`` is byte-identical to evaluating the
same configs in a plain loop, regardless of worker count.

A note on the GIL: the grid work is pure-Python CPU-bound, so on
standard CPython the thread pool provides structure and shared-cache
concurrency rather than a large wall-clock win; free-threaded builds
(PEP 703) parallelize it fully.  The process tier
(``src/repro/evaluation/procpool.py``) escapes the GIL on standard
builds by shipping picklable recipes instead of these live handles —
nothing in this module (harness clones, databases, shared caches)
ever crosses a process boundary.
"""

from __future__ import annotations

import os
import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.benchmark import BenchmarkDataset
from repro.domains import DomainInstance
from repro.systems import TextToSQLSystem

DEFAULT_MAX_WORKERS = 8


def default_worker_count(configs: int) -> int:
    """Pool size: bounded by CPUs, the grid size and a sane ceiling."""
    cpus = os.cpu_count() or 1
    return max(1, min(DEFAULT_MAX_WORKERS, cpus, configs))


@dataclass(frozen=True)
class GridConfig:
    """One cell of an evaluation sweep.

    ``system_kwargs`` is a sorted tuple of (name, value) pairs so the
    config stays hashable; build instances via :meth:`make`.
    """

    system_cls: Type[TextToSQLSystem]
    version: str
    train_size: Optional[int] = None
    shots: Optional[int] = None
    fold: int = 0
    system_kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        system_cls: Type[TextToSQLSystem],
        version: str,
        train_size: Optional[int] = None,
        shots: Optional[int] = None,
        fold: int = 0,
        **system_kwargs: Any,
    ) -> "GridConfig":
        return cls(
            system_cls=system_cls,
            version=version,
            train_size=train_size,
            shots=shots,
            fold=fold,
            system_kwargs=tuple(sorted(system_kwargs.items())),
        )

    def label(self) -> str:
        budget = f"shots={self.shots}" if self.shots is not None else f"train={self.train_size}"
        return f"{self.system_cls.spec.name}/{self.version}/{budget}/fold={self.fold}"


@dataclass(frozen=True)
class GridSummary:
    """Wall-clock accounting for one :meth:`ParallelHarness.run` call.

    ``engine`` carries the plan-cache and optimizer counters this run
    added — per-run deltas over :func:`engine_report` snapshots taken
    around the sweep (cache ``size`` is the current gauge) — so cache
    health and optimizer effect are observable straight off a sweep
    result.
    """

    configs: int
    questions: int
    wall_seconds: float
    workers: int
    engine: Optional[Dict[str, Any]] = None

    @property
    def configs_per_second(self) -> float:
        return self.configs / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def questions_per_second(self) -> float:
        return self.questions / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def describe(self) -> str:
        text = (
            f"{self.configs} configs / {self.questions} questions in "
            f"{self.wall_seconds:.2f}s on {self.workers} workers "
            f"({self.questions_per_second:.0f} q/s)"
        )
        if self.engine:
            cache = self.engine["plan_cache"]
            optimizer = self.engine["optimizer"]
            text += (
                f"; plan cache {cache['hits']}/{cache['hits'] + cache['misses']}"
                f" hits, optimizer {optimizer['optimizations']} plans in "
                f"{optimizer['optimize_seconds'] * 1000:.1f}ms"
            )
            modes = self.engine.get("engine_modes")
            if modes:
                text += (
                    f"; engine {modes['vectorized_nodes']} vectorized /"
                    f" {modes['fallback_nodes']} row-fallback nodes"
                )
        return text


def engine_report(
    domain: Optional[DomainInstance] = None,
    *,
    football: Optional[DomainInstance] = None,
) -> Dict[str, Any]:
    """Aggregate engine counters over every registered database.

    Plan-cache hit/miss/eviction totals, optimizer plan counts and
    planning time, plus the execution-backend split (row-pinned
    statements vs vectorized statements, and within the vectorized
    path how many plan nodes ran columnar vs fell back to the row
    interpreter) — the numbers `GridSummary.engine` and the service's
    ``metrics()`` expose so end-to-end cache health is observable.
    Counters are cumulative since database creation (``GridSummary``
    reports per-run deltas on top).  Aggregation goes through an
    ephemeral :class:`repro.obs.MetricsRegistry`: every database is
    bound via :func:`repro.obs.bind_database`, whose identity-keyed
    collector registration is what guarantees a cache shared across
    schema variants via ``PlanCache.for_scope`` is counted exactly
    once (keyed on its ``storage_token``) and a database bound twice
    is a no-op — the double counting that merging raw dicts invited.
    ``football=`` is the historical keyword alias of ``domain``.
    """
    if domain is None:
        domain = football
    if domain is None:
        raise TypeError("engine_report() missing required argument: 'domain'")
    from repro.obs import MetricsRegistry, bind_database

    registry = MetricsRegistry()
    for version in domain.versions:
        bind_database(registry, domain[version])
    snapshot = registry.snapshot()

    def total(family: str, integer: bool = True) -> Any:
        entry = snapshot.get(family)
        if entry is None:
            return 0 if integer else 0.0
        value = sum(sample["value"] for sample in entry["samples"])
        return int(value) if integer else value

    plan_cache = {
        "size": total("engine_plan_cache_size"),
        "hits": total("engine_plan_cache_hits"),
        "misses": total("engine_plan_cache_misses"),
        "evictions": total("engine_plan_cache_evictions"),
    }
    optimizer = {
        "optimizations": total("engine_optimizer_optimizations"),
        "reoptimizations": total("engine_optimizer_reoptimizations"),
        "optimize_seconds": total("engine_optimizer_optimize_seconds", integer=False),
        "stats_builds": total("engine_optimizer_stats_builds"),
    }
    engine_modes = {
        "row_statements": total("engine_mode_row_statements"),
        "vectorized_statements": total("engine_mode_vectorized_statements"),
        "vectorized_nodes": total("engine_mode_vectorized_nodes"),
        "fallback_nodes": total("engine_mode_fallback_nodes"),
    }
    lookups = plan_cache["hits"] + plan_cache["misses"]
    plan_cache["hit_rate"] = plan_cache["hits"] / lookups if lookups else 0.0
    return {
        "plan_cache": plan_cache,
        "optimizer": optimizer,
        "engine_modes": engine_modes,
    }


def engine_report_delta(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-run engine counters: ``after - before`` for the monotonic
    counters, current value for the gauges (cache ``size``)."""
    plan_cache = {
        key: after["plan_cache"][key] - before["plan_cache"][key]
        for key in ("hits", "misses", "evictions")
    }
    plan_cache["size"] = after["plan_cache"]["size"]
    lookups = plan_cache["hits"] + plan_cache["misses"]
    plan_cache["hit_rate"] = plan_cache["hits"] / lookups if lookups else 0.0
    optimizer = {
        key: after["optimizer"][key] - before["optimizer"][key]
        for key in after["optimizer"]
    }
    engine_modes = {
        key: after["engine_modes"][key] - before["engine_modes"].get(key, 0)
        for key in after.get("engine_modes", {})
    }
    return {
        "plan_cache": plan_cache,
        "optimizer": optimizer,
        "engine_modes": engine_modes,
    }


class ParallelHarness:
    """Fans configuration grids across a pool of harness clones.

    The databases and benchmark dataset are shared (read-only during
    evaluation); everything stateful — ``ExecutionEvaluator`` result
    caches, ``GoldOracle`` lookups, the systems themselves — lives in
    pooled :class:`Harness` clones that a worker checks out for one
    configuration at a time.  Exclusive checkout avoids lock
    contention and cache races; keeping the clones across ``run``
    calls preserves the seed code's cross-sweep cache reuse.
    """

    def __init__(
        self,
        domain: DomainInstance,
        dataset: BenchmarkDataset,
        max_workers: Optional[int] = None,
    ) -> None:
        self.domain = domain
        self.dataset = dataset
        self.max_workers = max_workers
        self._pool: List["Harness"] = []
        self._pool_lock = threading.Lock()
        # version -> shared EX-result dict: every clone's evaluators
        # memoize into the same mapping, so each distinct SQL string
        # executes once fleet-wide (as in the serial seed code), not
        # once per worker.
        self._result_caches: Dict[str, Dict[str, object]] = {}

    @property
    def football(self) -> DomainInstance:
        """Backward-compatible alias for :attr:`domain`."""
        return self.domain

    def seed_pool(self, harness: "Harness") -> None:
        """Lend an existing harness (and its warm caches) to the pool."""
        with self._pool_lock:
            for version, evaluator in harness._evaluators.items():
                self._result_caches.setdefault(version, evaluator._cache)
            if harness._result_caches is None:
                harness._result_caches = self._result_caches
            self._pool.append(harness)

    def _checkout(self) -> "Harness":
        from .harness import Harness  # local import: harness imports us

        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return Harness(self.domain, self.dataset, result_caches=self._result_caches)

    def _checkin(self, harness: "Harness") -> None:
        with self._pool_lock:
            self._pool.append(harness)

    def run(
        self,
        configs: Sequence[GridConfig],
        max_workers: Optional[int] = None,
    ) -> Tuple[List["EvaluationResult"], GridSummary]:
        """Evaluate every config; results come back in input order."""
        workers = (
            max_workers or self.max_workers or default_worker_count(len(configs))
        )

        def evaluate(config: GridConfig) -> "EvaluationResult":
            harness = self._checkout()
            try:
                return harness.evaluate(
                    config.system_cls,
                    config.version,
                    train_size=config.train_size,
                    shots=config.shots,
                    fold=config.fold,
                    **dict(config.system_kwargs),
                )
            finally:
                self._checkin(harness)

        engine_before = engine_report(self.domain)
        start = time.perf_counter()
        if workers <= 1 or len(configs) <= 1:
            results = [evaluate(config) for config in configs]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(evaluate, configs))
        wall = time.perf_counter() - start
        summary = GridSummary(
            configs=len(configs),
            questions=sum(len(result.outcomes) for result in results),
            wall_seconds=wall,
            workers=workers,
            engine=engine_report_delta(engine_before, engine_report(self.domain)),
        )
        return results, summary


def fold_statistics(results: Sequence["EvaluationResult"]) -> Tuple[float, float]:
    """(mean accuracy, population std-dev) over per-fold results."""
    accuracies = [result.accuracy for result in results]
    mean = statistics.fmean(accuracies)
    spread = statistics.pstdev(accuracies) if len(accuracies) > 1 else 0.0
    return mean, spread
