"""Experiment runner: system x data model x training budget x fold.

One :class:`Harness` owns the three databases, the benchmark dataset
and per-version EX evaluators; :meth:`Harness.evaluate` runs one
configuration end to end and returns per-question outcomes, so the
Table 5/6 sweeps, Figure 7/8 breakdowns and the Table 7 latency
aggregation all reuse the same machinery.

Concurrency contract: a ``Harness`` is a **live handle** — it holds
databases (with their locks), mutable evaluator/oracle caches, and
per-instance memos.  It is single-thread-use: concurrent callers must
each own a clone (``ParallelHarness`` checks clones out of a pool),
and it is never pickled — process workers rebuild one from a
:class:`~repro.evaluation.procpool.HarnessRecipe` instead.  The only
randomness in :meth:`Harness.evaluate` is seeded purely by the
configuration (``random.Random(10_000 + 97*fold + shots)``), which is
what makes every parallel tier byte-identical to the serial loop.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.benchmark import BenchmarkDataset, BenchmarkExample
from repro.domains import DomainInstance, MorphedModel
from repro.systems import GoldOracle, Prediction, TextToSQLSystem

from .execution import ExecutionEvaluator


@dataclass(frozen=True)
class QuestionOutcome:
    """One (system, question) evaluation record."""

    qid: str
    question: str
    hardness: str  # of this data model's gold query
    correct: bool
    produced_sql: bool
    failure: Optional[str]
    latency_seconds: float
    bucket_labels: Tuple[str, ...]  # Figure 8 buckets


@dataclass
class EvaluationResult:
    """All outcomes of one configuration."""

    system: str
    version: str
    train_size: int
    shots: Optional[int]
    fold: int
    outcomes: List[QuestionOutcome] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.correct) / len(self.outcomes)

    @property
    def generation_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.produced_sql) / len(self.outcomes)

    @property
    def mean_latency(self) -> float:
        if not self.outcomes:
            return 0.0
        return statistics.fmean(o.latency_seconds for o in self.outcomes)

    @property
    def latency_stdev(self) -> float:
        latencies = [o.latency_seconds for o in self.outcomes]
        return statistics.pstdev(latencies) if len(latencies) > 1 else 0.0

    def accuracy_by_hardness(self) -> Dict[str, Tuple[float, int]]:
        """hardness level -> (accuracy, count) — Figure 7 series."""
        buckets: Dict[str, List[bool]] = {}
        for outcome in self.outcomes:
            buckets.setdefault(outcome.hardness, []).append(outcome.correct)
        return {
            level: (sum(flags) / len(flags), len(flags))
            for level, flags in buckets.items()
        }

    def accuracy_by_bucket(self) -> Dict[str, Tuple[float, int]]:
        """Figure 8: characteristic bucket -> (accuracy, count)."""
        buckets: Dict[str, List[bool]] = {}
        for outcome in self.outcomes:
            for label in outcome.bucket_labels:
                buckets.setdefault(label, []).append(outcome.correct)
        return {
            label: (sum(flags) / len(flags), len(flags))
            for label, flags in buckets.items()
        }

    def failure_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.failure:
                counts[outcome.failure] = counts.get(outcome.failure, 0) + 1
        return counts


class Harness:
    """Runs evaluation configurations over one domain + benchmark.

    ``domain`` is any :class:`~repro.domains.instance.DomainInstance` —
    the paper's :class:`~repro.footballdb.FootballDB` or a generated
    domain from the registry; the attribute keeps its historical
    ``football`` name as an alias.  ``result_caches`` optionally maps
    version -> shared EX-result dict; the parallel harness passes one
    mapping to every worker clone so the expensive gold-query
    executions are shared fleet-wide.
    """

    def __init__(
        self,
        domain: DomainInstance,
        dataset: BenchmarkDataset,
        result_caches: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> None:
        self.domain = domain
        self.dataset = dataset
        self._evaluators: Dict[str, ExecutionEvaluator] = {}
        self._oracles: Dict[str, GoldOracle] = {}
        self._result_caches = result_caches
        self._grid_runner: Optional["ParallelHarness"] = None

    @property
    def football(self) -> DomainInstance:
        """Backward-compatible alias for :attr:`domain`."""
        return self.domain

    def evaluator(self, version: str) -> ExecutionEvaluator:
        if version not in self._evaluators:
            shared = (
                self._result_caches.setdefault(version, {})
                if self._result_caches is not None
                else None
            )
            self._evaluators[version] = ExecutionEvaluator(
                self.domain[version], cache=shared
            )
        return self._evaluators[version]

    def oracle(self, version: str) -> GoldOracle:
        if version not in self._oracles:
            self._oracles[version] = GoldOracle(self.dataset.gold_lookup(version))
        return self._oracles[version]

    # -- schema morphs -----------------------------------------------------------
    def install_morph(self, morph: "MorphedModel") -> str:
        """Register a morphed data model as an evaluation axis.

        Adds the morph's database to the shared domain instance and
        labels the benchmark with rewritten gold SQL, after which the
        morph's version string is a valid ``GridConfig.version`` like
        ``"v1"``/``"v2"``/``"v3"``.  Install morphs *before* launching a
        grid — the worker clones share this harness's domain/dataset
        objects by reference.
        """
        self.domain.register(morph.version, morph.database)
        self.dataset.add_version(morph.version, morph.base_version, morph.rewrite_sql)
        return morph.version

    def install_morphs(self, morphs: Sequence["MorphedModel"]) -> List[str]:
        """Register several morphed data models; returns their versions."""
        return [self.install_morph(morph) for morph in morphs]

    # -- configuration runners --------------------------------------------------
    def build_system(
        self,
        system_cls: Type[TextToSQLSystem],
        version: str,
        fold: int = 0,
        **system_kwargs,
    ) -> TextToSQLSystem:
        return system_cls(
            self.domain[version], self.oracle(version), fold=fold, **system_kwargs
        )

    def evaluate(
        self,
        system_cls: Type[TextToSQLSystem],
        version: str,
        train_size: Optional[int] = None,
        shots: Optional[int] = None,
        fold: int = 0,
        train_pairs: Optional[Sequence[Tuple[str, str]]] = None,
        examples: Optional[Sequence[BenchmarkExample]] = None,
        **system_kwargs,
    ) -> EvaluationResult:
        """Run one configuration.

        ``train_size`` truncates the benchmark train split (fine-tuned
        systems); ``shots`` draws a per-fold random sample from it
        (LLM systems, mirroring the paper's random-shot folds);
        ``train_pairs`` overrides both (used by the 895-sample
        extension experiment).
        """
        system = self.build_system(system_cls, version, fold, **system_kwargs)
        if train_pairs is not None:
            pairs = list(train_pairs)
        elif shots is not None:
            pool = self.dataset.train_pairs(version)
            rng = random.Random(10_000 + 97 * fold + shots)
            pairs = rng.sample(pool, min(shots, len(pool)))
        else:
            pairs = self.dataset.train_pairs(version, limit=train_size)
        system.fine_tune(pairs)
        evaluator = self.evaluator(version)
        result = EvaluationResult(
            system=system.spec.name,
            version=version,
            train_size=len(pairs) if shots is None else 0,
            shots=shots,
            fold=fold,
        )
        for example in examples if examples is not None else self.dataset.test_examples:
            gold = example.gold[version]
            prediction = system.predict(example.question)
            correct = evaluator.matches(prediction.sql, gold)
            result.outcomes.append(
                QuestionOutcome(
                    qid=example.qid,
                    question=example.question,
                    hardness=example.hardness(version).value,
                    correct=correct,
                    produced_sql=prediction.produced_sql,
                    failure=prediction.failure,
                    latency_seconds=prediction.latency_seconds,
                    bucket_labels=tuple(example.characteristics(version).bucket_labels()),
                )
            )
        return result

    def evaluate_grid(
        self,
        configs: Sequence["GridConfig"],
        max_workers: Optional[int] = None,
    ) -> Tuple[List[EvaluationResult], "GridSummary"]:
        """Evaluate a configuration grid concurrently.

        Fans ``configs`` across a thread pool of pooled harness clones
        (see :mod:`repro.evaluation.parallel`); results are
        byte-identical to a serial loop over :meth:`evaluate` and come
        back in input order, together with a wall-clock summary.
        ``max_workers=1`` forces the serial path.

        The runner is created once per harness and its clone pool is
        seeded with ``self``, so repeated sweeps keep reusing this
        harness's warm evaluator caches (a 1-worker grid is then
        exactly the historical serial loop).
        """
        from .parallel import ParallelHarness

        if self._grid_runner is None:
            self._grid_runner = ParallelHarness(self.domain, self.dataset)
            self._grid_runner.seed_pool(self)
        return self._grid_runner.run(configs, max_workers=max_workers)

    def evaluate_folds(
        self,
        system_cls: Type[TextToSQLSystem],
        version: str,
        shots: int,
        folds: int,
        max_workers: Optional[int] = None,
        **system_kwargs,
    ) -> Tuple[float, float, List[EvaluationResult]]:
        """Mean accuracy and population std-dev over ``folds`` runs.

        Folds are independent configurations, so they run through
        :meth:`evaluate_grid`; ``system_kwargs`` are forwarded to the
        system constructor (ablation switches).  ``train_pairs`` /
        ``examples`` overrides are not grid-able — call
        :meth:`evaluate` per fold for those.
        """
        from .parallel import GridConfig, fold_statistics

        for reserved in ("train_pairs", "examples"):
            if reserved in system_kwargs:
                raise TypeError(
                    f"evaluate_folds no longer forwards {reserved!r}; "
                    "call evaluate() per fold instead"
                )

        configs = [
            GridConfig.make(
                system_cls, version, shots=shots, fold=fold, **system_kwargs
            )
            for fold in range(folds)
        ]
        results, _ = self.evaluate_grid(configs, max_workers=max_workers)
        mean, spread = fold_statistics(results)
        return mean, spread, results
