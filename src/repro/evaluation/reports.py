"""ASCII renderers for the paper's tables and bar figures.

Every benchmark prints through these so the regenerated artifacts look
like the paper's rows/series and are directly comparable in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table rendering."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            columns[index].append(_format_cell(cell))
    widths = [max(len(value) for value in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row_index in range(len(rows)):
        lines.append(
            " | ".join(
                columns[col_index][row_index + 1].ljust(widths[col_index])
                for col_index in range(len(headers))
            )
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_percent(value: float, decimals: int = 2) -> str:
    return f"{value * 100:.{decimals}f}%"


def format_mean_std(mean: float, std: float, percent: bool = True) -> str:
    if percent:
        return f"{mean * 100:.2f}% (±{std * 100:.2f}%)"
    return f"{mean:.2f} ± {std:.2f}"


def render_bar_chart(
    series: Mapping[str, Mapping[str, Tuple[float, int]]],
    buckets: Sequence[str],
    title: str,
    width: int = 30,
) -> str:
    """Horizontal ASCII bars: one block per bucket, one bar per system.

    ``series`` maps system name -> bucket -> (accuracy, count); the
    bucket count is printed once per block (the "numbers on top of the
    bars" of Figures 7/8).
    """
    lines = [title]
    for bucket in buckets:
        count = 0
        for per_bucket in series.values():
            if bucket in per_bucket:
                count = per_bucket[bucket][1]
                break
        lines.append(f"\n  {bucket}  (n={count})")
        for system, per_bucket in series.items():
            if bucket not in per_bucket:
                lines.append(f"    {system:<16} {'-':>7}")
                continue
            accuracy, _ = per_bucket[bucket]
            bar = "#" * round(accuracy * width)
            lines.append(f"    {system:<16} {accuracy * 100:5.1f}% |{bar}")
    return "\n".join(lines)
