"""ASCII renderers for the paper's tables and bar figures.

Every benchmark prints through these so the regenerated artifacts look
like the paper's rows/series and are directly comparable in
EXPERIMENTS.md.

Concurrency contract: every function here is a pure formatter over
the plain data it is passed — no module state, no handles — and is
safe to call from any thread or process.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table rendering."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            columns[index].append(_format_cell(cell))
    widths = [max(len(value) for value in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row_index in range(len(rows)):
        lines.append(
            " | ".join(
                columns[col_index][row_index + 1].ljust(widths[col_index])
                for col_index in range(len(headers))
            )
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_percent(value: float, decimals: int = 2) -> str:
    return f"{value * 100:.{decimals}f}%"


def format_mean_std(mean: float, std: float, percent: bool = True) -> str:
    if percent:
        return f"{mean * 100:.2f}% (±{std * 100:.2f}%)"
    return f"{mean:.2f} ± {std:.2f}"


def robustness_points(results) -> Dict[str, Dict[str, float]]:
    """system -> version -> EX accuracy, from evaluation results.

    Accepts any iterable of objects exposing ``system``, ``version`` and
    ``accuracy`` (i.e. :class:`~repro.evaluation.harness.EvaluationResult`);
    repeated (system, version) cells — e.g. shot folds — are averaged.
    """
    sums: Dict[str, Dict[str, List[float]]] = {}
    for result in results:
        sums.setdefault(result.system, {}).setdefault(result.version, []).append(
            result.accuracy
        )
    return {
        system: {
            version: sum(values) / len(values) for version, values in per_version.items()
        }
        for system, per_version in sums.items()
    }


def robustness_curve(
    series: Mapping[str, Mapping[str, float]],
    distances: Mapping[str, int],
    title: str = "EX accuracy vs. morph distance",
    width: int = 30,
) -> str:
    """ASCII plot of EX accuracy against data-model morph distance.

    ``series`` maps system name -> version -> accuracy (see
    :func:`robustness_points`); ``distances`` maps version -> morph
    distance (hand-written models sit at distance 0).  Versions are
    plotted left to right by increasing distance, one block per version,
    one bar per system — the N-point generalization of the paper's
    three-model robustness comparison.
    """
    versions: List[str] = sorted(
        {version for per_version in series.values() for version in per_version},
        key=lambda version: (distances.get(version, 0), version),
    )
    lines = [title]
    for version in versions:
        distance = distances.get(version, 0)
        lines.append(f"\n  d={distance}  {version}")
        for system in series:
            per_version = series[system]
            if version not in per_version:
                lines.append(f"    {system:<16} {'-':>7}")
                continue
            accuracy = per_version[version]
            bar = "#" * round(accuracy * width)
            lines.append(f"    {system:<16} {accuracy * 100:5.1f}% |{bar}")
    spreads = []
    for system, per_version in series.items():
        if per_version:
            values = list(per_version.values())
            spreads.append(f"{system} spread={100 * (max(values) - min(values)):.1f}pp")
    if spreads:
        lines.append("\n  " + "; ".join(spreads))
    return "\n".join(lines)


def render_bar_chart(
    series: Mapping[str, Mapping[str, Tuple[float, int]]],
    buckets: Sequence[str],
    title: str,
    width: int = 30,
) -> str:
    """Horizontal ASCII bars: one block per bucket, one bar per system.

    ``series`` maps system name -> bucket -> (accuracy, count); the
    bucket count is printed once per block (the "numbers on top of the
    bars" of Figures 7/8).
    """
    lines = [title]
    for bucket in buckets:
        count = 0
        for per_bucket in series.values():
            if bucket in per_bucket:
                count = per_bucket[bucket][1]
                break
        lines.append(f"\n  {bucket}  (n={count})")
        for system, per_bucket in series.items():
            if bucket not in per_bucket:
                lines.append(f"    {system:<16} {'-':>7}")
                continue
            accuracy, _ = per_bucket[bucket]
            bar = "#" * round(accuracy * width)
            lines.append(f"    {system:<16} {accuracy * 100:5.1f}% |{bar}")
    return "\n".join(lines)
