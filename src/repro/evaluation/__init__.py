"""Evaluation harness: EX metric, experiment runner, canned experiments."""

from .execution import EXECUTION_ERROR, ExecutionEvaluator
from .harness import EvaluationResult, Harness, QuestionOutcome
from .parallel import (
    GridConfig,
    GridSummary,
    ParallelHarness,
    default_worker_count,
    fold_statistics,
)
from .experiments import (
    GPT_FOLDS,
    GPT_SHOTS,
    LLAMA_FOLDS,
    LLAMA_SHOTS,
    TRAIN_SIZES,
    figure7,
    figure8,
    keys_ablation,
    natsql_ablation,
    picard_ablation,
    table5,
    table6,
    table7,
    value_finder_ablation,
    valuenet_pool_extension,
)
from .reports import (
    format_mean_std,
    format_percent,
    render_bar_chart,
    render_table,
    robustness_curve,
    robustness_points,
)
from .test_suite import TestSuiteEvaluator, TestSuiteVerdict, perturb_events

__all__ = [
    "EXECUTION_ERROR",
    "EvaluationResult",
    "ExecutionEvaluator",
    "GPT_FOLDS",
    "GPT_SHOTS",
    "GridConfig",
    "GridSummary",
    "Harness",
    "LLAMA_FOLDS",
    "LLAMA_SHOTS",
    "ParallelHarness",
    "QuestionOutcome",
    "TRAIN_SIZES",
    "TestSuiteEvaluator",
    "TestSuiteVerdict",
    "default_worker_count",
    "figure7",
    "figure8",
    "fold_statistics",
    "format_mean_std",
    "format_percent",
    "keys_ablation",
    "natsql_ablation",
    "perturb_events",
    "picard_ablation",
    "render_bar_chart",
    "render_table",
    "robustness_curve",
    "robustness_points",
    "table5",
    "table6",
    "table7",
    "value_finder_ablation",
    "valuenet_pool_extension",
]
