"""Canned experiment configurations for every table and figure.

Each function takes a :class:`repro.evaluation.harness.Harness` and
returns plain data structures (dicts keyed by the paper's row/column
labels) so the benchmark scripts and EXPERIMENTS.md generation share
one source of truth.

Concurrency contract: these functions drive one live harness from the
calling thread (fan-out happens inside ``evaluate_grid``); they keep
no module-level mutable state.  The figures' best-config memo hangs
off the harness instance itself — a module dict keyed on
``id(harness)`` was a bug (id reuse after GC, and forked workers
inheriting the parent's cache); see ``_best_config_results``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.systems import (
    GPT35,
    Llama2,
    T5Picard,
    T5PicardKeys,
    ValueNet,
)

from .harness import EvaluationResult, Harness
from .parallel import GridConfig, fold_statistics

#: the paper's three hand-written FootballDB data models — the default
#: sweep axis; pass ``versions=`` to run the same experiment over any
#: other domain's registered versions
VERSIONS = ("v1", "v2", "v3")

TRAIN_SIZES = (0, 100, 200, 300)
GPT_SHOTS = (0, 10, 20, 30)
LLAMA_SHOTS = (0, 2, 4, 8)
GPT_FOLDS = 3
LLAMA_FOLDS = 4

FINE_TUNED = (ValueNet, T5Picard, T5PicardKeys)
LLMS = ((GPT35, GPT_SHOTS, GPT_FOLDS), (Llama2, LLAMA_SHOTS, LLAMA_FOLDS))


# -- Table 5: fine-tuned systems ------------------------------------------------


def table5(
    harness: Harness,
    versions: Sequence[str] = VERSIONS,
    train_sizes: Sequence[int] = TRAIN_SIZES,
    max_workers: Optional[int] = None,
) -> Dict[Tuple[str, int, str], float]:
    """(version, train_size, system name) -> execution accuracy."""
    grid = [
        GridConfig.make(system_cls, version, train_size=train_size)
        for version in versions
        for train_size in train_sizes
        for system_cls in FINE_TUNED
    ]
    results, _ = harness.evaluate_grid(grid, max_workers=max_workers)
    return {
        (config.version, config.train_size, result.system): result.accuracy
        for config, result in zip(grid, results)
    }


# -- Table 6: LLMs with shot folds -------------------------------------------------


def table6(
    harness: Harness,
    versions: Sequence[str] = VERSIONS,
    max_workers: Optional[int] = None,
) -> Dict[Tuple[str, int, str], Tuple[float, float]]:
    """(version, shots, system name) -> (mean accuracy, std over folds).

    All (system, version, shots, fold) cells go through one
    ``evaluate_grid`` call; folds of the same cell are then aggregated.
    Zero-shot rows have a single fold, whose spread is 0.0 by
    definition — identical to the serial formulation.
    """
    grid: List[GridConfig] = []
    for system_cls, shot_grid, folds in LLMS:
        for version in versions:
            for shots in shot_grid:
                fold_count = 1 if shots == 0 else folds
                grid.extend(
                    GridConfig.make(system_cls, version, shots=shots, fold=fold)
                    for fold in range(fold_count)
                )
    results, _ = harness.evaluate_grid(grid, max_workers=max_workers)
    grouped: Dict[Tuple[str, int, str], List[EvaluationResult]] = {}
    for config, result in zip(grid, results):
        key = (config.version, config.shots, result.system)
        grouped.setdefault(key, []).append(result)
    return {key: fold_statistics(folds) for key, folds in grouped.items()}


# -- Table 7: inference time ---------------------------------------------------------


def table7(
    harness: Harness, version: str = "v1", max_workers: Optional[int] = None
) -> Dict[str, Tuple[float, float]]:
    """system name -> (mean latency, std) at full training budget."""
    grid = [
        GridConfig.make(system_cls, version, train_size=300)
        for system_cls in FINE_TUNED
    ] + [
        GridConfig.make(system_cls, version, shots=shot_grid[-1], fold=0)
        for system_cls, shot_grid, _ in LLMS
    ]
    results, _ = harness.evaluate_grid(grid, max_workers=max_workers)
    return {
        result.system: (result.mean_latency, result.latency_stdev)
        for result in results
    }


# -- Figures 7 and 8 --------------------------------------------------------------------


def _best_config_results(harness: Harness, versions: Sequence[str]) -> Dict[str, List[EvaluationResult]]:
    """Max-budget run of every system per version (the figures' setting).

    Memoized *on the harness instance*: Figures 7 and 8 (and Table 7
    consumers) share the same expensive sweep.  A module-level dict
    keyed on ``id(harness)`` — the historical implementation — served
    a *different* harness's results whenever the original was
    garbage-collected and CPython reused its id, and under ``fork``
    every worker inherited (and grew) the parent's dict.  Hanging the
    memo off the instance ties its lifetime to the harness and keeps
    it out of shared module state.
    """
    cache_key = tuple(versions)
    memo: Dict[Tuple[str, ...], Dict[str, List[EvaluationResult]]]
    memo = getattr(harness, "_best_config_cache", None) or {}
    if cache_key in memo:
        return memo[cache_key]
    per_version: Dict[str, List[EvaluationResult]] = {}
    for version in versions:
        rows: List[EvaluationResult] = []
        for system_cls in FINE_TUNED:
            rows.append(harness.evaluate(system_cls, version, train_size=300))
        rows.append(harness.evaluate(GPT35, version, shots=30, fold=0))
        rows.append(harness.evaluate(Llama2, version, shots=8, fold=0))
        per_version[version] = rows
    memo[cache_key] = per_version
    harness._best_config_cache = memo
    return per_version


def figure7(
    harness: Harness, versions: Sequence[str] = VERSIONS
) -> Dict[str, Dict[str, Dict[str, Tuple[float, int]]]]:
    """version -> system -> hardness level -> (accuracy, count)."""
    report: Dict[str, Dict[str, Dict[str, Tuple[float, int]]]] = {}
    for version, results in _best_config_results(harness, versions).items():
        report[version] = {
            result.system: result.accuracy_by_hardness() for result in results
        }
    return report


def figure8(
    harness: Harness, versions: Sequence[str] = VERSIONS
) -> Dict[str, Dict[str, Dict[str, Tuple[float, int]]]]:
    """version -> system -> characteristic bucket -> (accuracy, count)."""
    report: Dict[str, Dict[str, Dict[str, Tuple[float, int]]]] = {}
    for version, results in _best_config_results(harness, versions).items():
        report[version] = {
            result.system: result.accuracy_by_bucket() for result in results
        }
    return report


# -- Section 6.2 extension: ValueNet on the ~1K pool -----------------------------------


def valuenet_pool_extension(harness: Harness) -> Dict[str, float]:
    """ValueNet v3 with 300 vs all usable pool samples (~895 of 1K).

    The paper: tripling the training data lifts ValueNet from 25% to
    ~29% — diminishing returns that motivate the data-model work.
    """
    baseline = harness.evaluate(ValueNet, "v3", train_size=300)
    pool_pairs = harness.dataset.pool_pairs("v3")
    probe = harness.build_system(ValueNet, "v3")
    usable = [pair for pair in pool_pairs if probe.trainable(pair[1])]
    extended = harness.evaluate(ValueNet, "v3", train_pairs=usable)
    return {
        "300_samples": baseline.accuracy,
        "pool_samples": extended.accuracy,
        "pool_size": len(usable),
        "pool_total": len(pool_pairs),
    }


# -- ablations (A1-A3 in DESIGN.md) ------------------------------------------------------


def keys_ablation(harness: Harness) -> Dict[str, Dict[str, float]]:
    """T5-Picard with vs without PK/FK input, per data model."""
    report: Dict[str, Dict[str, float]] = {}
    for version in VERSIONS:
        without = harness.evaluate(T5Picard, version, train_size=300)
        with_keys = harness.evaluate(T5PicardKeys, version, train_size=300)
        report[version] = {
            "without_keys": without.accuracy,
            "with_keys": with_keys.accuracy,
            "gain": with_keys.accuracy - without.accuracy,
        }
    return report


def picard_ablation(harness: Harness, version: str = "v3") -> Dict[str, float]:
    """Constrained decoding on/off: invalid-SQL rate and accuracy."""
    constrained = harness.evaluate(T5Picard, version, train_size=300)
    unconstrained = harness.evaluate(
        T5Picard, version, train_size=300, use_picard=False
    )
    return {
        "picard_accuracy": constrained.accuracy,
        "picard_generation_rate": constrained.generation_rate,
        "unconstrained_accuracy": unconstrained.accuracy,
        "unconstrained_generation_rate": unconstrained.generation_rate,
    }


def natsql_ablation(harness: Harness) -> Dict[str, Dict[str, float]]:
    """A4: ValueNet's IR — SemQL vs NatSQL, per data model.

    NatSQL's wider coverage (repeated table instances, recorded join
    conditions, set operations) removes the v1 post-processing failures
    that motivated the schema redesign.
    """
    from repro.systems import ValueNetNatSQL

    report: Dict[str, Dict[str, float]] = {}
    for version in VERSIONS:
        semql = harness.evaluate(ValueNet, version, train_size=300)
        natsql = harness.evaluate(ValueNetNatSQL, version, train_size=300)
        report[version] = {
            "semql_accuracy": semql.accuracy,
            "semql_generation_rate": semql.generation_rate,
            "natsql_accuracy": natsql.accuracy,
            "natsql_generation_rate": natsql.generation_rate,
        }
    return report


def value_finder_ablation(harness: Harness, version: str = "v3") -> Dict[str, float]:
    """ValueNet with vs without the value finder (typo recovery)."""
    with_finder = harness.evaluate(ValueNet, version, train_size=300)
    without = harness.evaluate(
        ValueNet, version, train_size=300, use_value_finder=False
    )
    return {
        "with_value_finder": with_finder.accuracy,
        "without_value_finder": without.accuracy,
    }
