"""Distilled test-suite evaluation (Zhong, Yu & Klein 2020).

The paper *wanted* to use "Semantic Evaluation for Text-to-SQL with
Test Suites" but could not — its parser rejects FootballDB queries — so
it fell back to single-database execution accuracy (EX).  EX has a
known blind spot: a wrong query can coincidentally return the right
result on one database state (a count that happens to match, an empty
set meeting another empty set).

This module implements the test-suite idea natively and
domain-generically: the same schema is populated with several
*perturbed* variants of the world (identical entity identities;
re-randomized facts) and a prediction counts as correct only if it
matches the gold result on **every** variant.  Coincidental matches on
the primary database are exposed as false positives.

Variants come from the domain's
:meth:`~repro.domains.instance.DomainInstance.variant_database`
contract: FootballDB re-randomizes match events
(:mod:`repro.footballdb.perturb`), generated domains re-draw attribute
values and FK assignments (:mod:`repro.domains.generator`).

Concurrency contract: a ``TestSuiteEvaluator`` holds live ``Database``
handles (primary + variants) and a mutable result cache — one thread
at a time, never pickled.  Variants are pure functions of
``(domain, variant seed)``, so a process worker can rebuild an
identical suite from those scalars, the same
recipes-not-handles rule the grid tiers follow
(``src/repro/evaluation/procpool.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.domains import DomainInstance
from repro.sqlengine import Database

from .execution import ExecutionEvaluator


def perturb_events(universe, seed: int):
    """Backward-compatible alias of
    :func:`repro.footballdb.perturb.perturb_events` (the implementation
    moved next to the universe it perturbs; imported lazily so this
    module stays football-free)."""
    from repro.footballdb.perturb import perturb_events as _impl

    return _impl(universe, seed)


@dataclass
class TestSuiteVerdict:
    """Per-question outcome of the suite evaluation."""

    matches_primary: bool  # plain EX on the primary database
    matches_suite: bool  # EX on every suite instance

    @property
    def false_positive(self) -> bool:
        return self.matches_primary and not self.matches_suite


class TestSuiteEvaluator:
    """EX over a distilled suite of database variants."""

    __test__ = False  # not a pytest test class despite the name

    DEFAULT_VARIANT_SEEDS = (7_001, 7_002)

    def __init__(self, primary: Database, variants: Sequence[Database]) -> None:
        self.evaluators = [ExecutionEvaluator(primary)] + [
            ExecutionEvaluator(database) for database in variants
        ]

    @classmethod
    def build(
        cls,
        universe,
        version: str,
        primary: Database,
        variant_seeds: Sequence[int] = DEFAULT_VARIANT_SEEDS,
    ) -> "TestSuiteEvaluator":
        """Historical football entry point (kept for compatibility):
        perturbs a FootballDB ``Universe`` directly."""
        from repro.footballdb import load_version

        variants = [
            load_version(perturb_events(universe, seed), version)
            for seed in variant_seeds
        ]
        return cls(primary, variants)

    @classmethod
    def for_domain(
        cls,
        domain: DomainInstance,
        version: Optional[str] = None,
        variant_seeds: Sequence[int] = DEFAULT_VARIANT_SEEDS,
    ) -> "TestSuiteEvaluator":
        """Suite evaluator for any registered domain instance."""
        version = version or domain.base_version
        variants = [
            domain.variant_database(version, seed) for seed in variant_seeds
        ]
        return cls(domain[version], variants)

    def verdict(self, predicted_sql: Optional[str], gold_sql: str) -> TestSuiteVerdict:
        primary = self.evaluators[0].matches(predicted_sql, gold_sql)
        if not primary:
            return TestSuiteVerdict(False, False)
        suite = all(
            evaluator.matches(predicted_sql, gold_sql)
            for evaluator in self.evaluators[1:]
        )
        return TestSuiteVerdict(True, suite)

    def matches(self, predicted_sql: Optional[str], gold_sql: str) -> bool:
        return self.verdict(predicted_sql, gold_sql).matches_suite
