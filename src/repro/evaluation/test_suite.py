"""Distilled test-suite evaluation (Zhong, Yu & Klein 2020).

The paper *wanted* to use "Semantic Evaluation for Text-to-SQL with
Test Suites" but could not — its parser rejects FootballDB queries — so
it fell back to single-database execution accuracy (EX).  EX has a
known blind spot: a wrong query can coincidentally return the right
result on one database state (a count that happens to match, an empty
set meeting another empty set).

This module implements the test-suite idea natively: the same schema is
populated with several *event-perturbed* variants of the universe
(identical entities, teams, squads and fixtures; re-randomized scores,
goal scorers and cards), and a prediction counts as correct only if it
matches the gold result on **every** variant.  Coincidental matches on
the primary database are exposed as false positives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.footballdb import Universe, load_version
from repro.footballdb.universe import (
    Match,
    MatchEvent,
    SquadMember,
    _card_count,
    _group_goals,
    _knockout_goals,
)
from repro.sqlengine import Database

from .execution import ExecutionEvaluator


def perturb_events(universe: Universe, seed: int) -> Universe:
    """A universe variant with the same world but different match events.

    Shared (by reference — all frozen dataclasses): teams, players,
    clubs, leagues, coaches, stadiums, world cups, squads' identities
    and the complete fixture list (pairings, stages, stadiums).
    Re-randomized: scores (group games freely; knockout games keep the
    bracket winner winning), goal/card events, attendance, and the
    squad statistics derived from them.
    """
    rng = random.Random(seed)
    variant = Universe(seed=seed)
    variant.teams = universe.teams
    variant.leagues = universe.leagues
    variant.clubs = universe.clubs
    variant.coaches = universe.coaches
    variant.players = universe.players
    variant.stadiums = universe.stadiums
    variant.world_cups = universe.world_cups
    variant.player_club_spells = universe.player_club_spells
    variant.coach_club_spells = universe.coach_club_spells
    variant.club_seasons = universe.club_seasons
    variant.matches = [_rescore(match, rng) for match in universe.matches]
    variant.squads = list(universe.squads)
    variant.reindex()
    _regenerate_events(variant, rng)
    _rederive_squad_statistics(variant, rng)
    variant.reindex()
    return variant


def _rescore(match: Match, rng: random.Random) -> Match:
    if match.stage == "group":
        home_goals = _group_goals(rng)
        away_goals = _group_goals(rng)
    else:
        # Knockout: preserve the bracket — the home side (the seeded
        # winner in the generator's scheduling) must still win.
        home_goals, away_goals = _knockout_goals(rng)
    return Match(
        match_id=match.match_id,
        year=match.year,
        stage=match.stage,
        group_name=match.group_name,
        stadium_id=match.stadium_id,
        home_team_id=match.home_team_id,
        away_team_id=match.away_team_id,
        home_goals=home_goals,
        away_goals=away_goals,
        attendance=rng.randrange(18_000, 99_000, 250),
    )


def _regenerate_events(variant: Universe, rng: random.Random) -> None:
    squads_by_key: Dict[tuple, List[SquadMember]] = {}
    for member in variant.squads:
        squads_by_key.setdefault((member.year, member.team_id), []).append(member)

    def scorers(year: int, team_id: int) -> List[int]:
        members = squads_by_key[(year, team_id)]
        weighted: List[int] = []
        for member in members:
            player = variant.player(member.player_id)
            weight = {"forward": 6, "midfielder": 3, "defender": 1, "goalkeeper": 0}[
                player.position
            ]
            weighted.extend([member.player_id] * weight)
        return weighted or [members[0].player_id]

    def any_player(year: int, team_id: int) -> int:
        return rng.choice(squads_by_key[(year, team_id)]).player_id

    events: List[MatchEvent] = []
    event_id = 0
    for match in variant.matches:
        minutes_used = set()

        def fresh_minute() -> int:
            while True:
                minute = rng.randint(1, 90)
                if minute not in minutes_used:
                    minutes_used.add(minute)
                    return minute

        for team_id, opponent_id, goals in (
            (match.home_team_id, match.away_team_id, match.home_goals),
            (match.away_team_id, match.home_team_id, match.away_goals),
        ):
            pool = scorers(match.year, team_id)
            for _ in range(goals):
                event_id += 1
                roll = rng.random()
                if roll < 0.04:
                    event_type, player = "own_goal", any_player(match.year, opponent_id)
                elif roll < 0.12:
                    event_type, player = "penalty", rng.choice(pool)
                else:
                    event_type, player = "goal", rng.choice(pool)
                events.append(
                    MatchEvent(event_id, match.match_id, player, team_id,
                               fresh_minute(), event_type)
                )
        for _ in range(_card_count(rng)):
            event_id += 1
            team_id = rng.choice((match.home_team_id, match.away_team_id))
            events.append(
                MatchEvent(
                    event_id, match.match_id, any_player(match.year, team_id),
                    team_id, fresh_minute(),
                    "red_card" if rng.random() < 0.07 else "yellow_card",
                )
            )
    variant.events = events


def _rederive_squad_statistics(variant: Universe, rng: random.Random) -> None:
    goals: Dict[tuple, int] = {}
    for event in variant.events:
        if event.event_type in ("goal", "penalty"):
            match = variant.matches[event.match_id - 1]
            key = (match.year, event.player_id)
            goals[key] = goals.get(key, 0) + 1
    games: Dict[tuple, int] = {}
    for match in variant.matches:
        for team_id in (match.home_team_id, match.away_team_id):
            games[(match.year, team_id)] = games.get((match.year, team_id), 0) + 1
    variant.squads = [
        SquadMember(
            year=member.year,
            team_id=member.team_id,
            player_id=member.player_id,
            coach_id=member.coach_id,
            shirt_number=member.shirt_number,
            games_played=max(0, games.get((member.year, member.team_id), 0) - rng.randint(0, 3)),
            goals=goals.get((member.year, member.player_id), 0),
        )
        for member in variant.squads
    ]


@dataclass
class TestSuiteVerdict:
    """Per-question outcome of the suite evaluation."""

    matches_primary: bool  # plain EX on the primary database
    matches_suite: bool  # EX on every suite instance

    @property
    def false_positive(self) -> bool:
        return self.matches_primary and not self.matches_suite


class TestSuiteEvaluator:
    """EX over a distilled suite of database variants."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, primary: Database, variants: Sequence[Database]) -> None:
        self.evaluators = [ExecutionEvaluator(primary)] + [
            ExecutionEvaluator(database) for database in variants
        ]

    @classmethod
    def build(
        cls,
        universe: Universe,
        version: str,
        primary: Database,
        variant_seeds: Sequence[int] = (7_001, 7_002),
    ) -> "TestSuiteEvaluator":
        variants = [
            load_version(perturb_events(universe, seed), version)
            for seed in variant_seeds
        ]
        return cls(primary, variants)

    def verdict(self, predicted_sql: Optional[str], gold_sql: str) -> TestSuiteVerdict:
        primary = self.evaluators[0].matches(predicted_sql, gold_sql)
        if not primary:
            return TestSuiteVerdict(False, False)
        suite = all(
            evaluator.matches(predicted_sql, gold_sql)
            for evaluator in self.evaluators[1:]
        )
        return TestSuiteVerdict(True, suite)

    def matches(self, predicted_sql: Optional[str], gold_sql: str) -> bool:
        return self.verdict(predicted_sql, gold_sql).matches_suite
