"""Multiprocess grid evaluation: real CPU parallelism for the sweep.

:class:`ParallelHarness` fans grid cells over threads, which on
standard CPython only overlaps the (tiny) I/O slices of a pure-Python
CPU-bound workload — the cross-domain sweep is GIL-bound.  This module
moves the same grid to a ``ProcessPoolExecutor`` without ever pickling
a live :class:`~repro.sqlengine.database.Database` (databases hold
``threading`` locks and megabytes of rows; they are *live handles*,
not messages).

Process-safety contract (what crosses the pickle boundary):

* **In** — a :class:`HarnessRecipe` (frozen dataclass of strings and
  ints: domain name, seed, morph chain parameters, engine mode) passed
  once to the worker initializer, and per-cell
  :class:`~repro.evaluation.parallel.GridConfig` entries (system
  *classes* pickle by reference, kwargs are ints/strings).  This is
  the same recipe-not-handle pattern as
  :class:`repro.serving.shards.DomainSpec`.
* **Out** — :class:`~repro.evaluation.harness.EvaluationResult` /
  ``QuestionOutcome``: plain dataclasses of primitives.
* **Never** — databases, harnesses, evaluators, oracles, systems,
  locks, or any object holding them.

Each worker process rebuilds its whole evaluation stack once in the
pool initializer (:func:`build_harness`): registry domain → benchmark
dataset → seeded morph chains → :class:`Harness`, stored in the
module-global ``_WORKER_HARNESS``.  Because every stage is a pure
function of the recipe (domain generation seeds per entity,
``SchemaMorpher`` chains are functions of ``(seed, base, count,
steps)``, and ``Harness.evaluate``'s only randomness is ``Random(10_000
+ 97*fold + shots)``), a worker-built harness evaluates any grid cell
to **byte-identical** :class:`EvaluationResult` fingerprints as the
serial parent — regardless of which worker runs which cell, in what
order, or how many workers exist.  ``tests/evaluation/test_procpool.py``
locks this with a serial vs thread vs process equality test.

On platforms whose default start method is ``fork`` (Linux), pass
``inherit_from=harness`` to share the parent's already-built databases
copy-on-write instead of rebuilding per worker — page sharing gives
the "shared read-only columnar snapshot" for free.  Only safe while
the parent's databases are quiescent at pool-creation time (forking
duplicates held locks); the portable recipe rebuild is the default.

``GridSummary.engine`` is ``None`` for process runs: engine counters
live in worker-local databases, and summing them into the parent's
would double-count against the parent's own report.  Fleet-wide
counters are instead exposed via :meth:`ProcessGridExecutor.stats`
(bound to the metrics registry by :func:`repro.obs.bind_process_grid`).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .harness import EvaluationResult, Harness
from .parallel import GridConfig, GridSummary, default_worker_count


@dataclass(frozen=True)
class HarnessRecipe:
    """Picklable recipe for one evaluation harness.

    Strings and ints only — the worker initializer turns it into a
    live :class:`Harness` on its side of the process boundary.  Two
    harnesses built from equal recipes evaluate any
    :class:`GridConfig` identically (see module docstring).
    """

    domain: str
    seed: int = 2022
    morph_count: int = 0
    morph_steps: int = 3
    engine_mode: str = "auto"
    test_fraction: float = 0.25

    def describe(self) -> str:
        return (
            f"{self.domain}/seed={self.seed}/morphs={self.morph_count}"
            f"x{self.morph_steps}/{self.engine_mode}"
        )


def build_harness(recipe: HarnessRecipe) -> Harness:
    """Materialize a recipe into a live harness (registry domain +
    benchmark + installed morph chains, engine mode pinned).

    Mirrors :func:`repro.evaluation.crossdomain.sweep_domain` setup
    exactly, so a worker-side harness exposes the same version axis
    (``base`` + ``<base>~m1`` …) as a parent that ran ``sweep_domain``
    with the same parameters.
    """
    from repro.benchmark import BenchmarkDataset
    from repro.domains import SchemaMorpher, load_domain

    instance = load_domain(recipe.domain, seed=recipe.seed)
    dataset = BenchmarkDataset.from_domain(
        instance, seed=recipe.seed, test_fraction=recipe.test_fraction
    )
    harness = Harness(instance, dataset)
    if recipe.morph_count:
        morpher = SchemaMorpher(seed=recipe.seed)
        harness.install_morphs(
            morpher.derive(
                instance[instance.base_version],
                count=recipe.morph_count,
                steps=recipe.morph_steps,
            )
        )
    instance.set_engine_mode(recipe.engine_mode)
    return harness


def grid_versions(recipe: HarnessRecipe) -> List[str]:
    """The version axis a recipe-built harness exposes (``base`` +
    morph versions).  Builds one throwaway harness in this process to
    enumerate it — call once per sweep, not per cell."""
    return list(build_harness(recipe).domain.versions)


# -- worker side ---------------------------------------------------------------
# Module-level state, mirroring serving/shards.py: the pool initializer
# builds (or inherits) one harness per worker process; the evaluate
# entry point closes over nothing, so submitted work pickles trivially.

_WORKER_HARNESS: Optional[Harness] = None

# Set in the *parent* before pool creation when inherit_from= is used;
# fork-started workers see it through copy-on-write page sharing.
_PARENT_HARNESS: Optional[Harness] = None


def _init_worker(recipe: Optional[HarnessRecipe]) -> None:
    global _WORKER_HARNESS
    if recipe is None:
        if _PARENT_HARNESS is None:
            raise RuntimeError(
                "process worker started without a recipe and without a "
                "fork-inherited parent harness"
            )
        _WORKER_HARNESS = _PARENT_HARNESS
    else:
        _WORKER_HARNESS = build_harness(recipe)


def _worker_evaluate(config: GridConfig) -> EvaluationResult:
    assert _WORKER_HARNESS is not None, "worker initializer did not run"
    return _WORKER_HARNESS.evaluate(
        config.system_cls,
        config.version,
        train_size=config.train_size,
        shots=config.shots,
        fold=config.fold,
        **dict(config.system_kwargs),
    )


class ProcessGridExecutor:
    """Fans a configuration grid across worker *processes*.

    The worker pool is lazy (first :meth:`run`) and persistent across
    runs, so consecutive sweeps reuse warm worker-side caches exactly
    like the thread pool's clone pool does.  Results come back in
    input order and are byte-identical to the serial harness (see
    module docstring); ``GridSummary.engine`` is ``None`` because the
    engine counters live worker-side.

    ``inherit_from`` (fork platforms only) shares the parent harness's
    databases with workers copy-on-write instead of rebuilding them
    from the recipe — cheaper startup, one shared read-only snapshot.
    """

    def __init__(
        self,
        recipe: Optional[HarnessRecipe] = None,
        max_workers: Optional[int] = None,
        inherit_from: Optional[Harness] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if recipe is None and inherit_from is None:
            raise ValueError("need a HarnessRecipe or an inherit_from harness")
        self.recipe = recipe
        self.max_workers = max_workers
        self._inherit_from = inherit_from
        context = multiprocessing.get_context(mp_context)
        if inherit_from is not None and context.get_start_method() != "fork":
            raise ValueError(
                "inherit_from= requires the fork start method; pass a "
                "recipe for spawn/forkserver platforms"
            )
        self._context = context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 0
        # fleet counters for the metrics registry (bind_process_grid)
        self._stats: Dict[str, float] = {
            "runs": 0,
            "cells_completed": 0,
            "questions_evaluated": 0,
            "wall_seconds_total": 0.0,
        }

    def _ensure_pool(self, configs: int) -> ProcessPoolExecutor:
        if self._pool is None:
            global _PARENT_HARNESS
            self._workers = self.max_workers or default_worker_count(configs)
            initarg: Optional[HarnessRecipe] = self.recipe
            if self._inherit_from is not None:
                initarg = None
                _PARENT_HARNESS = self._inherit_from
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=self._context,
                    initializer=_init_worker,
                    initargs=(initarg,),
                )
            finally:
                # workers have forked (lazily per-submit at worst); the
                # parent-global is only needed at fork time, but fork is
                # lazy in ProcessPoolExecutor, so keep it referenced for
                # the executor's lifetime instead of clearing here.
                pass
        return self._pool

    def run(
        self, configs: Sequence[GridConfig]
    ) -> Tuple[List[EvaluationResult], GridSummary]:
        """Evaluate every config; results in input order."""
        pool = self._ensure_pool(len(configs))
        start = time.perf_counter()
        chunksize = max(1, len(configs) // (self._workers * 4) or 1)
        results = list(pool.map(_worker_evaluate, configs, chunksize=chunksize))
        wall = time.perf_counter() - start
        summary = GridSummary(
            configs=len(configs),
            questions=sum(len(result.outcomes) for result in results),
            wall_seconds=wall,
            workers=self._workers,
            engine=None,
        )
        self._stats["runs"] += 1
        self._stats["cells_completed"] += summary.configs
        self._stats["questions_evaluated"] += summary.questions
        self._stats["wall_seconds_total"] += wall
        return results, summary

    def stats(self) -> Dict[str, float]:
        """Fleet counters (for :func:`repro.obs.bind_process_grid`)."""
        return dict(self._stats, workers=self._workers)

    def close(self) -> None:
        global _PARENT_HARNESS
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._inherit_from is not None and _PARENT_HARNESS is self._inherit_from:
            _PARENT_HARNESS = None

    def __enter__(self) -> "ProcessGridExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def evaluate_grid_in_processes(
    recipe: HarnessRecipe,
    configs: Sequence[GridConfig],
    max_workers: Optional[int] = None,
) -> Tuple[List[EvaluationResult], GridSummary]:
    """One-shot convenience wrapper around :class:`ProcessGridExecutor`."""
    with ProcessGridExecutor(recipe, max_workers=max_workers) as executor:
        return executor.run(configs)
