"""Cross-domain robustness sweeps: (domain × morph chain × system × engine mode).

The paper's robustness claim rests on one domain; this module runs the
same experiment over every registered domain.  For each ``(domain,
engine_mode)`` cell a fresh instance is loaded through the registry,
its benchmark built via :meth:`BenchmarkDataset.from_domain`, seeded
morph chains installed as extra data-model versions, and a full
(system × version) grid evaluated through the parallel harness.  The
results aggregate into one cross-domain robustness curve whose x-axis
is morph distance and whose version labels are ``domain/version``.

Concurrency contract: ``cross_domain_sweep`` is called from one
thread; intra-cell parallelism comes from the thread-pooled harness it
delegates to.  Everything it builds (instances, morphs, harnesses) is
a live handle local to one cell and is dropped when the cell finishes
— nothing here is shared across threads or pickled to workers.  A
cell is a pure function of ``(domain, seed, morph chain, engine
mode)``, so sweeps are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.benchmark import BenchmarkDataset
from repro.domains import DomainInstance, SchemaMorpher, load_domain
from repro.systems import TextToSQLSystem

from .harness import EvaluationResult, Harness
from .parallel import GridConfig, GridSummary


@dataclass(frozen=True)
class CrossDomainCell:
    """One evaluated configuration of the cross-domain grid."""

    domain: str
    version: str
    distance: int  # morph distance (0 for hand-written/base models)
    engine_mode: str
    system: str
    result: EvaluationResult

    @property
    def label(self) -> str:
        return f"{self.domain}/{self.version}"


@dataclass
class CrossDomainReport:
    """All cells of one sweep plus wall-clock summaries per domain."""

    seed: int
    cells: List[CrossDomainCell] = field(default_factory=list)
    summaries: Dict[Tuple[str, str], GridSummary] = field(default_factory=dict)
    morph_chains: Dict[str, List[str]] = field(default_factory=dict)

    def points(self) -> Dict[str, Dict[str, float]]:
        """system -> "domain/version" -> mean accuracy (folds averaged)."""
        sums: Dict[str, Dict[str, List[float]]] = {}
        for cell in self.cells:
            sums.setdefault(cell.system, {}).setdefault(cell.label, []).append(
                cell.result.accuracy
            )
        return {
            system: {
                label: sum(values) / len(values)
                for label, values in per_label.items()
            }
            for system, per_label in sums.items()
        }

    def distances(self) -> Dict[str, int]:
        """"domain/version" -> morph distance (for the robustness curve)."""
        return {cell.label: cell.distance for cell in self.cells}

    def curve(self, title: str = "Cross-domain EX accuracy vs. morph distance") -> str:
        """ASCII robustness curve over every ``domain/version`` point."""
        from .reports import robustness_curve

        return robustness_curve(self.points(), self.distances(), title=title)

    def domain_spreads(self) -> Dict[Tuple[str, str], float]:
        """(system, domain) -> accuracy spread across that domain's versions."""
        per: Dict[Tuple[str, str], List[float]] = {}
        for cell in self.cells:
            per.setdefault((cell.system, cell.domain), []).append(
                cell.result.accuracy
            )
        return {
            key: max(values) - min(values) for key, values in per.items()
        }


def sweep_domain(
    domain: DomainInstance,
    systems: Sequence[Type[TextToSQLSystem]],
    seed: int = 2022,
    morph_count: int = 2,
    morph_steps: int = 3,
    engine_mode: str = "auto",
    shots: int = 8,
    train_size: int = 40,
    max_workers: Optional[int] = None,
    dataset: Optional[BenchmarkDataset] = None,
) -> Tuple[List[CrossDomainCell], GridSummary, List[str]]:
    """Evaluate one loaded domain: base versions + seeded morph chains.

    Every database of the instance is pinned to ``engine_mode`` for the
    sweep.  LLM-style systems (``spec.scale == "large"``) are budgeted
    with ``shots``, fine-tuned systems with ``train_size`` (capped to
    the domain's train split).
    """
    dataset = dataset or BenchmarkDataset.from_domain(domain, seed=seed)
    harness = Harness(domain, dataset)
    distances = {version: 0 for version in domain.versions}
    morpher = SchemaMorpher(seed=seed)
    morphs = morpher.derive(
        domain[domain.base_version], count=morph_count, steps=morph_steps
    )
    chains = []
    for morph in morphs:
        harness.install_morph(morph)
        distances[morph.version] = morph.distance
        chains.append(morph.describe())
    # after morph installation, so the derived databases are pinned too
    domain.set_engine_mode(engine_mode)
    budget = min(train_size, len(dataset.train_examples))
    configs: List[GridConfig] = []
    for version in distances:
        for system_cls in systems:
            if system_cls.spec.scale == "large":
                configs.append(GridConfig.make(system_cls, version, shots=shots))
            else:
                configs.append(
                    GridConfig.make(system_cls, version, train_size=budget)
                )
    results, summary = harness.evaluate_grid(configs, max_workers=max_workers)
    cells = [
        CrossDomainCell(
            domain=domain.name,
            version=config.version,
            distance=distances[config.version],
            engine_mode=engine_mode,
            system=result.system,
            result=result,
        )
        for config, result in zip(configs, results)
    ]
    return cells, summary, chains


def cross_domain_sweep(
    domains: Sequence[str],
    systems: Sequence[Type[TextToSQLSystem]],
    seed: int = 2022,
    morph_count: int = 2,
    morph_steps: int = 3,
    engine_modes: Sequence[str] = ("auto",),
    max_workers: Optional[int] = None,
    **budgets,
) -> CrossDomainReport:
    """The full grid: every domain × engine mode × system × data model.

    Each ``(domain, engine_mode)`` cell loads a fresh instance so the
    execution backends never share caches — the engine-mode axis is a
    genuine re-execution, not a memoized replay.
    """
    report = CrossDomainReport(seed=seed)
    for name in domains:
        for engine_mode in engine_modes:
            instance = load_domain(name, seed=seed)
            cells, summary, chains = sweep_domain(
                instance,
                systems,
                seed=seed,
                morph_count=morph_count,
                morph_steps=morph_steps,
                engine_mode=engine_mode,
                max_workers=max_workers,
                **budgets,
            )
            report.cells.extend(cells)
            report.summaries[(name, engine_mode)] = summary
            report.morph_chains.setdefault(name, chains)
    return report
