"""Execution accuracy (EX) — the paper's evaluation metric.

"EX denotes the fraction of questions within the evaluation set, where
the outcomes of both the predicted and ground-truth queries yield
identical results" (Section 6.1).  Identity is multiset equality of
normalized rows (column order matters, row order does not — ORDER BY
queries produce the same multiset either way, and the engine's
normalization folds int/float and boolean/text representation
differences).

Results are cached per SQL text: across systems and train sizes most
predictions are the gold query itself, so caching makes the full
Table 5/6 sweeps tractable.

Concurrency contract: the cache dict may be handed to several
evaluators (``ParallelHarness`` shares one per version across its
whole clone fleet) — entries are pure memoization keyed on exact SQL
text against one frozen database state, so a racing double-compute is
wasted work, never a wrong verdict.  The cache is valid only for the
``data_epoch`` it was filled under: evaluation against a new snapshot
(see ``src/repro/evaluation/ingestion.py``) must use a fresh
evaluator.  Evaluators hold live ``Database`` handles and are never
pickled.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sqlengine import Database, EngineError

#: hashable canonical form of a result set
ResultKey = Tuple[Tuple[tuple, int], ...]

#: sentinel for "execution failed"
EXECUTION_ERROR = ("__execution_error__",)


class ExecutionEvaluator:
    """EX comparisons against one database, with a result cache.

    ``cache`` lets callers share one result mapping between evaluator
    instances (the parallel harness hands every worker clone the same
    per-version dict, so gold queries execute once fleet-wide, not once
    per worker).  Values are immutable and keys are SQL strings, so
    plain dict get/set is safe under concurrent CPython access; a
    racing duplicate execution only wastes work, never changes a
    verdict.
    """

    def __init__(
        self, database: Database, cache: Optional[Dict[str, object]] = None
    ) -> None:
        self.database = database
        self._cache: Dict[str, object] = cache if cache is not None else {}
        self.executed = 0
        self.cache_hits = 0

    def result_key(self, sql: str) -> object:
        """Canonical result of ``sql`` (or the error sentinel)."""
        cached = self._cache.get(sql)
        if cached is not None:
            self.cache_hits += 1
            return cached
        try:
            result = self.database.execute(sql)
            key: object = tuple(sorted(result.normalized_multiset().items()))
        except (EngineError, RecursionError) as exc:
            key = (EXECUTION_ERROR, type(exc).__name__)
        self.executed += 1
        self._cache[sql] = key
        return key

    def matches(self, predicted_sql: Optional[str], gold_sql: str) -> bool:
        """EX verdict for one prediction.

        A missing prediction or a failing execution never matches, even
        if the gold query also fails (the paper's systems are graded on
        producing a *working* answer).
        """
        if predicted_sql is None:
            return False
        predicted = self.result_key(predicted_sql)
        if isinstance(predicted, tuple) and predicted and predicted[0] == EXECUTION_ERROR:
            return False
        gold = self.result_key(gold_sql)
        return predicted == gold
