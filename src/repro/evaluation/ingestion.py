"""Continuous evaluation under ingestion: robustness vs. write rate.

Every grid result so far was measured against frozen databases.  This
module opens the scenario the paper's deployment actually lives in:
user traffic keeps arriving *while* new facts are ingested.  A seeded
multi-domain user-log stream (:func:`repro.domains.synthesize_logs`
over :mod:`repro.workload.logs` records) is replayed into live
databases by paced ingestor threads — each replayed log event queues
one seeded, FK-closed growth row
(:func:`repro.domains.generate_growth_rows`), flushed in fixed-size
``insert_many`` batches — while the evaluation loop keeps sweeping a
(system × version) grid and reporting EX accuracy and latency
percentiles per round.

Consistency model (the ``data_epoch`` pinning contract):

* every evaluation round pins one :meth:`Database.snapshot` per
  domain — a row-set copy captured atomically under the storage
  mutation lock — and evaluates **every** cell of that round against
  it, so all cells of a round observe the same frozen ``data_epoch``;
* ``insert_many`` holds the same lock for the whole batch and the
  driver only ever flushes *full* batches, so a snapshot's epoch
  delta from the freshly-loaded base is always a whole multiple of
  ``ReplayConfig.batch_size`` — a torn (mid-batch) epoch is
  structurally impossible, and ``IngestionRound.epoch`` makes the
  invariant testable with a fake clock (see
  ``tests/evaluation/test_ingestion.py``);
* growth rows are FK-valid and PK-fresh by construction, so no insert
  ever rolls back and the epoch delta equals exactly the rows
  ingested.

Thread/process-safety contract: the driver, its ingestor threads and
the per-round grid all run in *this* process — snapshots are live
handles (they hold locks) and are never pickled.  True multiprocess
parallelism for static grids lives in
:mod:`repro.evaluation.procpool`; here the grid is the thread-pooled
:class:`~repro.evaluation.parallel.ParallelHarness` via a fresh
per-round :class:`Harness` (fresh EX caches — mandatory, because a
result memoized against epoch N would be wrong at epoch N+k).

The clock and sleep functions are injectable, so tests replay
deterministically on a fake clock; :func:`repro.obs.bind_ingestion`
exposes the driver's counters and ``tracer=`` spans the replay
batches and evaluation rounds.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.benchmark import BenchmarkDataset
from repro.domains import (
    DomainInstance,
    generate_growth_rows,
    growable_entities,
    load_domain,
    synthesize_logs,
)
from repro.systems import ALL_SYSTEMS, TextToSQLSystem

from .harness import EvaluationResult, Harness
from .parallel import GridConfig


def _system_classes(names: Sequence[str]) -> List[Type[TextToSQLSystem]]:
    by_name = {cls.spec.name: cls for cls in ALL_SYSTEMS}
    try:
        return [by_name[name] for name in names]
    except KeyError as exc:
        known = ", ".join(sorted(by_name))
        raise ValueError(f"unknown system {exc} (available: {known})") from None


@dataclass(frozen=True)
class ReplayConfig:
    """One continuous-evaluation run: which domains, how fast, how long.

    ``rate`` is log events per second per domain; each event queues one
    growth row, flushed every ``batch_size`` events in one atomic
    ``insert_many``.  ``rounds`` evaluation rounds run concurrently
    with the replay; each round snapshots every domain and evaluates a
    (system × base version) grid against the pinned copy.
    """

    domains: Tuple[str, ...] = ("hospital",)
    systems: Tuple[str, ...] = ("GPT-3.5",)
    seed: int = 2022
    rate: float = 50.0  # log events / second / domain
    batch_size: int = 8  # growth rows per atomic insert_many
    max_events: int = 400  # replay length per domain
    rounds: int = 3
    shots: int = 8  # budget for spec.scale == "large" systems
    train_size: int = 24  # budget for fine-tuned systems
    engine_mode: str = "auto"
    grid_workers: int = 1  # thread workers per evaluation round


@dataclass(frozen=True)
class IngestionRound:
    """One (round, domain) cell of the report."""

    round_index: int
    domain: str
    epoch: int  # pinned data_epoch every cell of the round saw
    rows_ingested: int  # epoch delta from the freshly-loaded base
    accuracy: float  # mean EX accuracy over the round's grid cells
    latency_p50: float
    latency_p95: float
    latency_p99: float
    cells: int
    wall_seconds: float


@dataclass
class IngestionReport:
    """Everything one :meth:`IngestionReplayDriver.run` produced."""

    config: ReplayConfig
    rounds: List[IngestionRound] = field(default_factory=list)
    events_replayed: int = 0
    rows_inserted: int = 0
    wall_seconds: float = 0.0

    @property
    def achieved_rate(self) -> float:
        """Replayed events per second per domain, over the whole run."""
        domains = max(1, len(self.config.domains))
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_replayed / self.wall_seconds / domains

    def accuracy_curve(self) -> List[Tuple[int, float]]:
        """(rows ingested, accuracy) points, replay order."""
        return [(r.rows_ingested, r.accuracy) for r in self.rounds]

    def summary(self) -> Dict[str, Any]:
        """JSON-shaped digest (the bench artifact's per-rate record)."""
        accuracies = [r.accuracy for r in self.rounds]
        return {
            "rate_target": self.config.rate,
            "rate_achieved": round(self.achieved_rate, 2),
            "events_replayed": self.events_replayed,
            "rows_inserted": self.rows_inserted,
            "rounds": len(self.rounds),
            "accuracy_mean": (
                round(sum(accuracies) / len(accuracies), 4) if accuracies else 0.0
            ),
            "accuracy_min": round(min(accuracies), 4) if accuracies else 0.0,
            "latency_p50_ms": round(
                max((r.latency_p50 for r in self.rounds), default=0.0) * 1000, 3
            ),
            "latency_p99_ms": round(
                max((r.latency_p99 for r in self.rounds), default=0.0) * 1000, 3
            ),
        }


class _DomainState:
    """Live per-domain replay state (one ingestor thread owns writes)."""

    def __init__(self, instance: DomainInstance, config: ReplayConfig) -> None:
        self.instance = instance
        self.database = instance[instance.base_version]
        self.dataset = BenchmarkDataset.from_domain(instance, seed=config.seed)
        self.base_epoch = self.database.data_epoch()
        if instance.spec is None:
            raise ValueError(
                f"domain {instance.name!r} has no spec; ingestion replay "
                "needs a generated domain to draw growth rows from"
            )
        self.entities = growable_entities(instance.spec)
        self.next_pk = {
            name: instance.spec.entity(name).rows + 1 for name in self.entities
        }
        self.logs = synthesize_logs(
            instance.name, instance.examples, config.max_events, seed=config.seed
        )
        self.events = 0
        self.rows = 0
        self.pending: List[Tuple[str, tuple]] = []


class IngestionReplayDriver:
    """Replays user logs into live databases while the grid evaluates.

    ``clock``/``sleep`` default to real time and are injectable for
    deterministic tests.  ``tracer`` (optional) spans every flushed
    batch and every evaluation round; :meth:`stats` feeds
    :func:`repro.obs.bind_ingestion`.
    """

    def __init__(
        self,
        config: ReplayConfig,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        tracer: Optional[Any] = None,
    ) -> None:
        if config.rate <= 0:
            raise ValueError(f"rate must be positive, got {config.rate}")
        if config.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {config.batch_size}")
        self.config = config
        self._clock = clock
        self._sleep = sleep
        self._tracer = tracer
        self._stop = threading.Event()
        self._states: List[_DomainState] = []
        self._stats_lock = threading.Lock()
        self._stats: Dict[str, float] = {
            "events_replayed": 0,
            "rows_inserted": 0,
            "batches_flushed": 0,
            "snapshots_taken": 0,
            "rounds_completed": 0,
        }

    # -- observability --------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        with self._stats_lock:
            return dict(self._stats)

    def _bump(self, key: str, amount: float = 1) -> None:
        with self._stats_lock:
            self._stats[key] += amount

    def _span(self, name: str, **labels: Any):
        if self._tracer is None:
            return nullcontext()
        return self._tracer.span(name, **labels)

    # -- write side -----------------------------------------------------------
    def _replay_event(self, state: _DomainState) -> None:
        """One log event: queue one growth row, flush on a full batch.

        The log record itself is what paces and shapes the stream (its
        synthesis is the seeded user-traffic model); the durable effect
        of replaying it is one new fact row in the domain, assigned
        round-robin over the growable (leaf) entities.
        """
        record = state.logs[state.events % len(state.logs)]
        entity = state.entities[record.log_id % len(state.entities)]
        row = generate_growth_rows(
            state.instance.spec,
            self.config.seed,
            entity,
            state.next_pk[entity],
            1,
        )[0]
        state.next_pk[entity] += 1
        state.pending.append((entity, row))
        state.events += 1
        self._bump("events_replayed")
        if len(state.pending) >= self.config.batch_size:
            self._flush(state)

    def _flush(self, state: _DomainState) -> None:
        """Insert the pending batch atomically.

        Rows may target different entities, but every table of a
        domain shares one :class:`Storage`, so one storage-wide
        critical section covers the whole event batch: the mutation
        lock is re-entrant (the nested ``insert_many`` re-acquisitions
        are free) and a concurrent snapshot sees none-or-all of the
        flush — exactly ``batch_size`` rows, never a torn prefix.
        """
        storage = state.database.storage
        by_entity: Dict[str, List[tuple]] = {}
        for entity, row in state.pending:
            by_entity.setdefault(entity, []).append(row)
        with self._span("ingestion.flush", domain=state.instance.name,
                        rows=len(state.pending)):
            with storage._mutation_lock:
                for entity, rows in by_entity.items():
                    state.database.insert_many(entity, rows)
        flushed = len(state.pending)
        state.rows += flushed
        state.pending.clear()
        self._bump("rows_inserted", flushed)
        self._bump("batches_flushed")

    def _ingest_loop(self, state: _DomainState) -> None:
        interval = 1.0 / self.config.rate
        next_deadline = self._clock()
        while not self._stop.is_set() and state.events < self.config.max_events:
            now = self._clock()
            if now < next_deadline:
                self._sleep(min(interval, next_deadline - now))
                continue
            next_deadline += interval
            self._replay_event(state)
        # leftover partial batch is deliberately dropped: only full
        # batches ever reach the database (the torn-epoch invariant)

    # -- read side ------------------------------------------------------------
    def _evaluate_round(
        self, round_index: int, state: _DomainState
    ) -> IngestionRound:
        snapshot = state.database.snapshot()
        self._bump("snapshots_taken")
        epoch = snapshot.data_epoch()
        shadow = DomainInstance(
            name=state.instance.name,
            databases={
                **state.instance.databases,
                state.instance.base_version: snapshot,
            },
            examples=state.instance.examples,
            universe=state.instance.universe,
            variant_loader=state.instance.variant_loader,
            spec=state.instance.spec,
        )
        # fresh harness per round: EX-result caches memoize against one
        # epoch and must not leak across snapshots
        harness = Harness(shadow, state.dataset)
        budget = min(self.config.train_size, len(state.dataset.train_examples))
        configs = []
        for system_cls in _system_classes(self.config.systems):
            if system_cls.spec.scale == "large":
                configs.append(
                    GridConfig.make(
                        system_cls, shadow.base_version, shots=self.config.shots
                    )
                )
            else:
                configs.append(
                    GridConfig.make(
                        system_cls, shadow.base_version, train_size=budget
                    )
                )
        start = time.perf_counter()
        results, _ = harness.evaluate_grid(
            configs, max_workers=self.config.grid_workers
        )
        wall = time.perf_counter() - start
        return self._round_record(round_index, state, epoch, results, wall)

    def _round_record(
        self,
        round_index: int,
        state: _DomainState,
        epoch: int,
        results: Sequence[EvaluationResult],
        wall: float,
    ) -> IngestionRound:
        from repro.obs import percentile

        latencies = sorted(
            outcome.latency_seconds
            for result in results
            for outcome in result.outcomes
        )
        accuracies = [result.accuracy for result in results]
        return IngestionRound(
            round_index=round_index,
            domain=state.instance.name,
            epoch=epoch,
            rows_ingested=epoch - state.base_epoch,
            accuracy=sum(accuracies) / len(accuracies) if accuracies else 0.0,
            latency_p50=percentile(latencies, 0.50),
            latency_p95=percentile(latencies, 0.95),
            latency_p99=percentile(latencies, 0.99),
            cells=len(results),
            wall_seconds=wall,
        )

    # -- orchestration --------------------------------------------------------
    def run(self) -> IngestionReport:
        """Replay + evaluate; returns the full report.

        Ingestor threads (one per domain) pace the log replay; the
        calling thread runs the evaluation rounds against epoch-pinned
        snapshots while writes continue underneath.
        """
        config = self.config
        self._states = [
            _DomainState(load_domain(name, seed=config.seed), config)
            for name in config.domains
        ]
        for state in self._states:
            state.instance.set_engine_mode(config.engine_mode)
        report = IngestionReport(config=config)
        threads = [
            threading.Thread(
                target=self._ingest_loop, args=(state,), daemon=True,
                name=f"ingest-{state.instance.name}",
            )
            for state in self._states
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        try:
            for round_index in range(config.rounds):
                for state in self._states:
                    with self._span(
                        "ingestion.round",
                        round=round_index,
                        domain=state.instance.name,
                    ):
                        report.rounds.append(
                            self._evaluate_round(round_index, state)
                        )
                    self._bump("rounds_completed")
        finally:
            self._stop.set()
            for thread in threads:
                thread.join(timeout=30)
        report.wall_seconds = time.perf_counter() - start
        report.events_replayed = int(self.stats()["events_replayed"])
        report.rows_inserted = int(self.stats()["rows_inserted"])
        return report


def replay_rate_sweep(
    rates: Sequence[float],
    base_config: Optional[ReplayConfig] = None,
    **overrides: Any,
) -> Dict[str, Any]:
    """Run the driver once per ingestion rate; JSON-shaped curve.

    The bench artifact's payload: one :meth:`IngestionReport.summary`
    per rate, so robustness (EX accuracy) and latency percentiles are
    reported *as a function of ingestion rate*.
    """
    base = base_config or ReplayConfig()
    points = []
    for rate in rates:
        config = dataclasses.replace(base, rate=rate, **overrides)
        report = IngestionReplayDriver(config).run()
        points.append(report.summary())
    return {"points": points}
