"""Identifier styles and name vocabulary shared by every domain.

The schema morpher (:mod:`repro.domains.morph`) re-renders table and
column identifiers in the naming styles observed across real
deployments; the domain generator (:mod:`repro.domains.generator`)
draws row-level display names from the small vocabularies below.  All
base schemas are snake_case; the style functions derive the other
styles deterministically so a morphed schema is a pure function of its
seed.

This module deliberately imports nothing from the rest of the library —
it sits at the bottom of the dependency graph (``repro.footballdb.naming``
re-exports the style table for backward compatibility).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List


def _capitalize(text: str) -> str:
    return text[:1].upper() + text[1:]


_VOWELS = frozenset("aeiou")


def camel_identifier(name: str) -> str:
    """``national_team`` -> ``nationalTeam`` (lowerCamelCase)."""
    head, *tail = name.split("_")
    return head + "".join(_capitalize(part) for part in tail)


def pascal_identifier(name: str) -> str:
    """``national_team`` -> ``NationalTeam`` (UpperCamelCase)."""
    return "".join(_capitalize(part) for part in name.split("_"))


def abbreviate_identifier(name: str) -> str:
    """``national_team`` -> ``ntnl_team`` (DBA-style vowel-dropping).

    Words of up to four characters are kept; longer words keep their
    first letter plus up to three following consonants — mimicking the
    terse legacy identifiers (``cust_addr``, ``qty_ordd``) that make
    schema linking hard for Text-to-SQL systems.
    """
    parts = []
    for part in name.split("_"):
        if len(part) <= 4:
            parts.append(part)
        else:
            consonants = "".join(ch for ch in part[1:] if ch not in _VOWELS)
            parts.append(part[0] + consonants[:3])
    return "_".join(parts)


IDENTIFIER_STYLES: Dict[str, Callable[[str], str]] = {
    "camel": camel_identifier,
    "pascal": pascal_identifier,
    "abbrev": abbreviate_identifier,
}


# -- row-level display names ----------------------------------------------------
#
# Every generated entity carries one human-readable *name* column (the
# value NL questions anchor on), drawn from these syllable pools.  The
# pools are intentionally small — collisions are resolved with numeric
# suffixes, which keeps names unique per entity.  Names are NOT
# substring-free (``Orley`` ⊂ ``Yorley``), so gold-SQL name filters
# must anchor on the whole value (see questions._name_filter).

_NAME_HEADS = [
    "Al", "Bel", "Cor", "Dan", "El", "Fer", "Gal", "Hart", "Iris", "Jas",
    "Kel", "Lor", "Mar", "Nor", "Or", "Pel", "Quin", "Ros", "Sil", "Tor",
    "Ul", "Ver", "Wil", "Xan", "Yor", "Zel",
]

_NAME_TAILS = [
    "ba", "dale", "den", "field", "gate", "ham", "kin", "ley", "mont",
    "nor", "ona", "port", "rick", "son", "stone", "ton", "vale", "wick",
]


def display_name(rng: random.Random) -> str:
    """A two-syllable proper name, e.g. ``Marton`` or ``Quinvale``."""
    return rng.choice(_NAME_HEADS) + rng.choice(_NAME_TAILS)


def unique_display_names(rng: random.Random, count: int, prefix: str = "") -> List[str]:
    """``count`` distinct display names (numeric suffixes on collision).

    ``prefix`` (e.g. ``"Dr. "`` or ``"Hotel "``) is prepended to every
    name so different entities of one domain stay lexically distinct —
    that keeps cross-entity ``ILIKE`` value filters unambiguous.
    """
    seen: Dict[str, int] = {}
    names: List[str] = []
    for _ in range(count):
        name = prefix + display_name(rng)
        occurrences = seen.get(name, 0)
        seen[name] = occurrences + 1
        if occurrences:
            name = f"{name} {occurrences + 1}"
        names.append(name)
    return names
