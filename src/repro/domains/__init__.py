"""Multi-domain scenario generation: domains as a robustness grid axis.

The paper reproduces its finding — Text-to-SQL accuracy degrades across
alternative data models — on a single football database.  This package
makes *domains themselves* generated artifacts:

* :mod:`spec` — declarative :class:`DomainSpec` (entities, relationships,
  value generators);
* :mod:`generator` — spec → catalog-validated schema + referentially
  consistent seeded data;
* :mod:`questions` — templated gold SQL with NL paraphrases;
* :mod:`logs` — synthetic user-query logs (Table 1 analogue);
* :mod:`instance` / :mod:`registry` — loaded domains behind one
  registry; FootballDB registers through the same API;
* :mod:`morph` — the (domain-generic) schema morpher;
* :mod:`fuzz` — grammar-based differential query fuzzing.

Quickstart::

    from repro.domains import available_domains, load_domain

    hospital = load_domain("hospital", seed=2022)
    hospital["base"].execute("SELECT count(*) FROM doctor")
"""

from .naming import IDENTIFIER_STYLES
from .spec import (
    DomainSpec,
    EntitySpec,
    FieldSpec,
    Relationship,
    SpecError,
    attr,
    fk,
    name_field,
    pk,
)
from .generator import (
    build_schema,
    generate_growth_rows,
    generate_tables,
    growable_entities,
    load_database,
)
from .instance import DomainInstance
from .questions import DomainExample, generate_examples, question_id
from .logs import synthesize_logs
from .morph import (
    DEFAULT_OPERATORS,
    MorphError,
    MorphOperator,
    MorphStep,
    MorphedModel,
    SchemaMorpher,
    result_signature,
    verify_morph,
)
from .fuzz import (
    ENGINE_CONFIGS,
    FuzzDivergence,
    FuzzReport,
    GrammarQueryFuzzer,
    differential_fuzz,
)
from .builtins import BUILTIN_SPECS, FLIGHTS, HOSPITAL, RETAIL, random_domain
from .registry import (
    DEFAULT_SEED,
    DomainRecord,
    UnknownDomainError,
    available_domains,
    get_domain,
    instance_from_spec,
    load_domain,
    load_random_domain,
    register_domain,
    register_spec,
)

__all__ = [
    "BUILTIN_SPECS",
    "DEFAULT_OPERATORS",
    "DEFAULT_SEED",
    "DomainExample",
    "DomainInstance",
    "DomainRecord",
    "DomainSpec",
    "ENGINE_CONFIGS",
    "EntitySpec",
    "FLIGHTS",
    "FieldSpec",
    "FuzzDivergence",
    "FuzzReport",
    "GrammarQueryFuzzer",
    "HOSPITAL",
    "IDENTIFIER_STYLES",
    "MorphError",
    "MorphOperator",
    "MorphStep",
    "MorphedModel",
    "RETAIL",
    "Relationship",
    "SchemaMorpher",
    "SpecError",
    "UnknownDomainError",
    "attr",
    "available_domains",
    "build_schema",
    "differential_fuzz",
    "fk",
    "generate_examples",
    "generate_growth_rows",
    "generate_tables",
    "get_domain",
    "growable_entities",
    "instance_from_spec",
    "load_database",
    "load_domain",
    "load_random_domain",
    "name_field",
    "pk",
    "question_id",
    "random_domain",
    "register_domain",
    "register_spec",
    "result_signature",
    "synthesize_logs",
    "verify_morph",
]
